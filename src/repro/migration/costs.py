"""Migration overhead model (Sections III-D3 and IV-C).

Three costs are charged for every migrated page:

1. **Shootdown work on the initiating core** -- with DiDi-style hardware
   TLB shootdowns, victim cores pay nothing, but the initiating core
   spends ~3k cycles per page orchestrating the shootdown and waiting for
   completion.
2. **Page-copy traffic** -- 4 KB moves from the source to the destination
   over the interconnect, charged to the links by the timing model.
3. **In-flight stalls** -- accesses to a page whose migration is in flight
   stall until it completes; the expected stall depends on how long a
   page is in flight and how hot it is.

The dedicated OS core that scans the metadata region is accounted as a
fixed core-count overhead (0.2% of a 448-core system), reported but not
charged to AMAT.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import SystemConfig, units
from repro.config.parameters import PAGE_SIZE_BYTES
from repro.migration.records import MigrationBatch


@dataclass(frozen=True)
class MigrationCosts:
    """Aggregate overheads of one phase's migrations."""

    pages_migrated: int
    shootdown_cycles: float
    copy_bytes: float
    #: Expected total stall time imposed on accesses that hit in-flight
    #: pages this phase, nanoseconds (summed over all stalled accesses).
    stall_ns_total: float


class MigrationCostModel:
    """Computes per-phase migration overheads for the timing model."""

    def __init__(self, system: SystemConfig):
        self.system = system
        self.migration = system.migration

    def per_page_in_flight_ns(self) -> float:
        """Time one page migration keeps its page inaccessible.

        The copy of a 4 KB page is bottlenecked by the slowest leg of its
        path; we bound it with the NUMALink bandwidth (the slowest coherent
        link) and add the initiating core's shootdown latency.
        """
        copy_ns = units.transfer_time_ns(
            PAGE_SIZE_BYTES, self.system.bandwidth.numalink_gbps
        )
        shootdown_ns = self.system.core.cycles_to_ns(
            self.migration.shootdown_cycles_per_page
        )
        return copy_ns + shootdown_ns

    def costs_for(self, batch: MigrationBatch, page_counts: np.ndarray,
                  phase_duration_ns: float) -> MigrationCosts:
        """Total overheads of ``batch`` given this phase's access counts.

        ``page_counts`` has shape ``(n_sockets, n_pages)``. Accesses to a
        migrating page arriving inside its in-flight window stall for half
        the window on average.
        """
        if phase_duration_ns <= 0:
            raise ValueError("phase duration must be positive")
        pages = batch.all_pages()
        n_pages = int(pages.size)
        if n_pages == 0:
            return MigrationCosts(0, 0.0, 0.0, 0.0)

        in_flight_ns = self.per_page_in_flight_ns()
        accesses_to_moved = float(page_counts[:, pages].sum())
        # Fraction of the phase during which each moved page is in flight,
        # times its accesses, gives the expected number of stalled
        # accesses; each waits in_flight/2 on average.
        in_flight_fraction = min(1.0, in_flight_ns / phase_duration_ns)
        stalled_accesses = accesses_to_moved * in_flight_fraction
        stall_ns_total = stalled_accesses * (in_flight_ns / 2.0)

        return MigrationCosts(
            pages_migrated=n_pages,
            shootdown_cycles=float(
                n_pages * self.migration.shootdown_cycles_per_page
            ),
            copy_bytes=float(n_pages * PAGE_SIZE_BYTES),
            stall_ns_total=stall_ns_total,
        )

    def scan_core_overhead(self) -> float:
        """Fraction of the system's cores dedicated to metadata scanning."""
        return 1.0 / self.system.n_cores
