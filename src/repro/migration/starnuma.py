"""StarNUMA's migration policy: Algorithm 1 of the paper.

Once per migration phase, a single pass over the region trackers selects
regions whose access count exceeds the HI threshold (for T_16) or whose
sharer count reaches the T_0 sharer threshold. A selected region migrates
to the memory pool when shared by ``pool_sharer_threshold`` (8) or more
sockets, otherwise to a random sharer. If the pool is out of usable
capacity, a pool-resident victim with accesses at or below the LO
threshold is first evicted to a random sharer of its own. Regions that
ping-pong (migrated more than a quarter of the elapsed phases) are left
alone, and the per-phase migration budget caps total movement.

Thresholds adapt each phase as a simple function of how the candidate
count compares to the migration limit, as described in Section IV-C.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.config import MigrationConfig, TrackerKind
from repro.migration.records import MigrationBatch, RegionMove
from repro.migration.regions import RegionTable
from repro.obs import OBS
from repro.placement.capacity import PoolCapacityManager
from repro.placement.pagemap import PageMap
from repro.tracking.tracker import RegionTrackerArray
from repro.topology.model import POOL_LOCATION


def location_label(location: int) -> object:
    """JSON-friendly location: the socket index, or ``"pool"``."""
    return "pool" if location == POOL_LOCATION else int(location)


class StarNumaPolicy:
    """Algorithm 1, with adaptive HI/LO thresholds and ping-pong control."""

    def __init__(self, config: MigrationConfig, regions: RegionTable,
                 capacity: PoolCapacityManager,
                 rng: Optional[np.random.Generator] = None):
        config.validate()
        self.config = config
        self.regions = regions
        self.capacity = capacity
        self.rng = rng or np.random.default_rng(0)
        self.hi_threshold = float(config.hi_threshold_init)
        self.lo_threshold = float(config.lo_threshold_init)
        self.migration_counts = np.zeros(regions.n_regions, dtype=np.int64)
        self.phases_run = 0

    # -- policy ------------------------------------------------------------

    def decide(self, tracker: RegionTrackerArray,
               region_locations: np.ndarray,
               page_map: PageMap) -> MigrationBatch:
        """Run one Algorithm 1 scan; mutate ``page_map`` with the moves."""
        self.phases_run += 1
        phase = self.phases_run
        batch = MigrationBatch(phase=phase)

        sharer_counts = tracker.sharer_counts()
        accesses = tracker.accesses()
        candidates = self._candidate_mask(accesses, sharer_counts)
        region_sizes = self.regions.region_sizes()

        budget = self.config.migration_limit_pages
        victim_search_failures = 0
        locations = region_locations.copy()

        for region in np.flatnonzero(candidates):
            if batch.n_pages >= budget:
                break
            sharers = tracker.sharers_of(region)
            if sharers.size == 0:
                continue
            pool_bound = (sharer_counts[region]
                          >= self.config.pool_sharer_threshold)
            best_location = int(self.rng.choice(sharers))
            if pool_bound:
                best_location = POOL_LOCATION
            current = int(locations[region])
            if best_location == current:
                continue
            if self._is_ping_ponging(region, phase):
                OBS.counter("migration.pingpong_skips")
                continue

            size = int(region_sizes[region])
            if best_location == POOL_LOCATION:
                # Regions vary slightly in size (the last chunk of each
                # socket is short), so one victim may not free enough.
                evictions = 0
                while not self.capacity.can_fit(size) and evictions < 4:
                    victim = self._find_victim(accesses, sharer_counts,
                                               locations, size)
                    if victim is None:
                        break
                    self._evict_victim(victim, tracker, locations, page_map,
                                       batch)
                    evictions += 1
                if not self.capacity.can_fit(size):
                    victim_search_failures += 1
                    continue
                self.capacity.allocate(size)
            if current == POOL_LOCATION:
                self.capacity.release(size)

            self._move(region, current, best_location, locations, page_map,
                       batch)
            if OBS.enabled:
                # Decision provenance: enough to answer "why did this
                # region go there?" -- its score, the threshold that
                # fired, and the rule that picked the destination.
                OBS.counter("migration.decisions")
                OBS.counter("migration.pages_moved", size)
                OBS.event(
                    "migration.decision", policy="starnuma", phase=phase,
                    region=int(region), pages=size,
                    source=location_label(current),
                    destination=location_label(best_location),
                    accesses=float(accesses[region]),
                    sharers=int(sharer_counts[region]),
                    rule="pool-sharers" if pool_bound else "hot-region",
                    tracker=self.config.tracker.name,
                    hi_threshold=self.hi_threshold,
                    pool_sharer_threshold=(
                        self.config.pool_sharer_threshold
                    ),
                )

        self._adapt_thresholds(accesses, candidates, sharer_counts,
                               locations, region_sizes,
                               victim_search_failures)
        return batch

    # -- internals -----------------------------------------------------------

    def _candidate_mask(self, accesses: np.ndarray,
                        sharer_counts: np.ndarray) -> np.ndarray:
        if self.config.tracker is TrackerKind.T0:
            # T_0 cannot rank hotness: only the sharer bits exist, and the
            # fixed threshold selects regions touched by (almost) all
            # sockets.
            return sharer_counts >= self.config.t0_sharer_threshold
        return accesses >= self.hi_threshold

    def _is_ping_ponging(self, region: int, phase: int) -> bool:
        return self.migration_counts[region] > phase / 4.0

    def _find_victim(self, accesses: np.ndarray, sharer_counts: np.ndarray,
                     locations: np.ndarray,
                     needed_pages: int) -> Optional[int]:
        """First pool-resident region cold enough to evict (single pass).

        Under T_16, "cold" means accesses at or below the LO threshold.
        T_0 has no counters -- every entry reads zero -- so LO would match
        every resident and churn the pool; the only coldness signal T_0's
        sharer bits offer is that a resident stopped being widely touched
        this phase, which is therefore its victim criterion.
        """
        pool_resident = np.flatnonzero(locations == POOL_LOCATION)
        if self.config.tracker is TrackerKind.T0:
            for region in pool_resident:
                if sharer_counts[region] < self.config.t0_sharer_threshold:
                    return int(region)
            return None
        for region in pool_resident:
            if accesses[region] <= self.lo_threshold:
                return int(region)
        return None

    def _evict_victim(self, victim: int, tracker: RegionTrackerArray,
                      locations: np.ndarray, page_map: PageMap,
                      batch: MigrationBatch) -> None:
        sharers = tracker.sharers_of(victim)
        if sharers.size:
            destination = int(self.rng.choice(sharers))
        else:
            destination = int(self.rng.integers(0, page_map.n_sockets))
        size = int(self.regions.pages_of(victim).size)
        self.capacity.release(size)
        self._move(victim, POOL_LOCATION, destination, locations, page_map,
                   batch)
        if OBS.enabled:
            OBS.counter("migration.evictions")
            OBS.event(
                "migration.evict", policy="starnuma",
                phase=self.phases_run, region=int(victim), pages=size,
                destination=location_label(destination),
                lo_threshold=self.lo_threshold,
                tracker=self.config.tracker.name,
            )

    def _move(self, region: int, source: int, destination: int,
              locations: np.ndarray, page_map: PageMap,
              batch: MigrationBatch) -> None:
        pages = self.regions.pages_of(region)
        page_map.move(pages, destination)
        locations[region] = destination
        self.migration_counts[region] += 1
        batch.add(RegionMove(pages=pages, source=source,
                             destination=destination))

    def _adapt_thresholds(self, accesses: np.ndarray, candidates: np.ndarray,
                          sharer_counts: np.ndarray, locations: np.ndarray,
                          region_sizes: np.ndarray,
                          victim_search_failures: int) -> None:
        config = self.config
        if config.tracker is TrackerKind.T0:
            return  # T_0 uses the fixed sharer threshold only.
        # Only *actionable* candidates count toward the limit comparison:
        # a hot region already sitting at its preferred destination (a
        # widely shared region already in the pool) consumes no migration
        # budget, so it must not prop the threshold up.
        settled = ((sharer_counts >= config.pool_sharer_threshold)
                   & (locations == POOL_LOCATION))
        actionable = candidates & ~settled
        candidate_pages = int(region_sizes[actionable].sum())
        limit = max(1, config.migration_limit_pages)
        if candidate_pages > 2 * limit:
            self.hi_threshold = min(self.hi_threshold * 2.0,
                                    float(config.hi_threshold_max))
        elif candidate_pages == 0:
            # Nothing qualified at all: the workload's region densities sit
            # far below the threshold -- converge fast rather than waste
            # migration phases.
            self.hi_threshold = max(self.hi_threshold / 4.0,
                                    float(config.hi_threshold_min))
        elif candidate_pages < limit / 2:
            self.hi_threshold = max(self.hi_threshold / 2.0,
                                    float(config.hi_threshold_min))
        if victim_search_failures:
            self.lo_threshold = min(self.lo_threshold * 2.0,
                                    float(config.lo_threshold_max))
        else:
            self.lo_threshold = max(self.lo_threshold * 0.9,
                                    float(config.lo_threshold_init))
        OBS.detail(
            "migration.thresholds", policy="starnuma",
            phase=self.phases_run, hi_threshold=self.hi_threshold,
            lo_threshold=self.lo_threshold,
            candidate_pages=candidate_pages,
            victim_search_failures=victim_search_failures,
        )
