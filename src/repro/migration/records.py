"""Migration decision records shared by all policies."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.topology.model import POOL_LOCATION


@dataclass(frozen=True)
class RegionMove:
    """One migration decision: a group of pages moving to a destination."""

    pages: np.ndarray
    source: int
    destination: int

    @property
    def n_pages(self) -> int:
        return int(self.pages.size)

    @property
    def to_pool(self) -> bool:
        return self.destination == POOL_LOCATION

    @property
    def from_pool(self) -> bool:
        return self.source == POOL_LOCATION


@dataclass
class MigrationBatch:
    """All migrations decided for one phase."""

    phase: int
    moves: List[RegionMove] = field(default_factory=list)

    def add(self, move: RegionMove) -> None:
        self.moves.append(move)

    @property
    def n_pages(self) -> int:
        return sum(move.n_pages for move in self.moves)

    @property
    def pages_to_pool(self) -> int:
        return sum(move.n_pages for move in self.moves if move.to_pool)

    @property
    def pages_from_pool(self) -> int:
        return sum(move.n_pages for move in self.moves if move.from_pool)

    def pool_fraction(self) -> float:
        """Fraction of migrated pages whose destination is the pool.

        This is Table IV's metric when accumulated over a whole run
        (victim evictions out of the pool are excluded from the
        denominator, since Table IV reports destination shares of
        demand-driven migrations).
        """
        demand_pages = sum(
            move.n_pages for move in self.moves if not move.from_pool
        )
        if demand_pages == 0:
            return 0.0
        to_pool = sum(
            move.n_pages for move in self.moves
            if move.to_pool and not move.from_pool
        )
        return to_pool / demand_pages

    def all_pages(self) -> np.ndarray:
        if not self.moves:
            return np.empty(0, dtype=np.int64)
        return np.concatenate([move.pages for move in self.moves])
