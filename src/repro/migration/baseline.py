"""The idealized baseline migration policy (Section IV-C).

To isolate the contribution of the pool as an architectural block from
the specific migration policy, the paper favors the baseline with
*zero-cost, per-socket knowledge of all accesses to every 4 KB page* each
phase. Decisions are free; only the migration itself (shootdowns, copies,
stalls) is charged.

With full knowledge the obvious policy is: home every sufficiently hot
page at the socket that accesses it most, provided the move is clearly
profitable. A hysteresis margin prevents oscillation on evenly shared
pages -- exactly the vagabond pages the baseline architecturally has no
good answer for.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.config import MigrationConfig
from repro.migration.records import MigrationBatch, RegionMove
from repro.obs import OBS
from repro.placement.pagemap import PageMap


class BaselinePolicy:
    """Per-page, perfect-knowledge migration toward the dominant accessor."""

    def __init__(self, config: MigrationConfig,
                 min_accesses_per_page: int = 64,
                 hysteresis: float = 1.25,
                 rng: Optional[np.random.Generator] = None):
        if min_accesses_per_page < 1:
            raise ValueError("min_accesses_per_page must be >= 1")
        if hysteresis < 1.0:
            raise ValueError(f"hysteresis must be >= 1, got {hysteresis}")
        self.config = config
        self.min_accesses = min_accesses_per_page
        self.hysteresis = hysteresis
        self.rng = rng or np.random.default_rng(0)
        self.phases_run = 0

    def decide(self, page_counts: np.ndarray,
               page_map: PageMap) -> MigrationBatch:
        """Choose and apply this phase's migrations.

        ``page_counts`` has shape ``(n_sockets, n_pages)`` and holds the
        oracle per-socket access counts of the ending phase.
        """
        self.phases_run += 1
        batch = MigrationBatch(phase=self.phases_run)
        n_sockets, n_pages = page_counts.shape
        if n_pages != page_map.n_pages:
            raise ValueError(
                f"count matrix covers {n_pages} pages, map has "
                f"{page_map.n_pages}"
            )

        totals = page_counts.sum(axis=0)
        best_count = page_counts.max(axis=0)
        current = page_map.locations.astype(np.int64)
        # Count of accesses served locally if the page stays put. Pages on
        # the pool never occur in the baseline (no pool), but guard anyway.
        on_socket = current >= 0
        current_count = np.zeros(n_pages, dtype=page_counts.dtype)
        cols = np.flatnonzero(on_socket)
        current_count[cols] = page_counts[current[cols], cols]

        profitable = (
            (totals >= self.min_accesses)
            & (best_count.astype(np.float64)
               > current_count.astype(np.float64) * self.hysteresis)
        )
        candidates = np.flatnonzero(profitable)
        if candidates.size == 0:
            return batch

        # Hottest pages first: with a page budget, perfect knowledge spends
        # it where it pays most.
        candidates = candidates[np.argsort(totals[candidates])[::-1]]

        # Perfect knowledge also balances: among sockets whose access
        # counts are near-tied for a page, the rational destination is the
        # one serving the least *remote* traffic -- the home socket's
        # coherent links carry every fill it serves to other sockets, so a
        # zero-cost oracle balances that, not total DRAM load.
        remote_served = np.zeros(n_sockets, dtype=np.float64)
        np.add.at(remote_served, current[cols],
                  (totals[cols] - current_count[cols]).astype(np.float64))

        # The destination scan is sequential (each move shifts
        # ``remote_served`` for later tie-breaks), but the tie structure
        # is not: precompute, per candidate, which sockets are within 10%
        # of its peak count. Pages with a single clear winner -- the
        # common case -- take the precomputed argmax without touching
        # ``remote_served``, leaving the per-page flatnonzero/argmin work
        # to the genuinely tied pages only.
        cand_counts = page_counts[:, candidates]
        tied = cand_counts >= (cand_counts.max(axis=0) * 0.9)[None, :]
        tie_degree = tied.sum(axis=0)
        clear_winner = cand_counts.argmax(axis=0)

        budget = self.config.migration_limit_pages
        moved_pages = []
        moved_dest = []
        for rank, page in enumerate(candidates):
            if len(moved_pages) >= budget:
                break
            if tie_degree[rank] == 1:
                destination = int(clear_winner[rank])
            else:
                near_tied = np.flatnonzero(tied[:, rank])
                destination = int(
                    near_tied[np.argmin(remote_served[near_tied])]
                )
            source = int(current[page])
            if destination == source:
                continue
            counts = page_counts[:, page]
            total = float(totals[page])
            remote_served[source] -= total - float(counts[source])
            remote_served[destination] += total - float(counts[destination])
            moved_pages.append(int(page))
            moved_dest.append(destination)
            if OBS.enabled:
                OBS.counter("migration.decisions")
                OBS.counter("migration.pages_moved")
                # Per-page provenance is detail-level: the baseline moves
                # thousands of pages per phase under a scaled budget.
                OBS.detail(
                    "migration.decision", policy="baseline",
                    phase=self.phases_run, page=int(page), pages=1,
                    source=source, destination=destination,
                    accesses=total,
                    current_accesses=float(current_count[page]),
                    best_accesses=float(best_count[page]),
                    rule=("dominant-accessor" if tie_degree[rank] == 1
                          else "tie-balance"),
                    hysteresis=self.hysteresis,
                )

        if not moved_pages:
            return batch
        OBS.event("migration.batch", policy="baseline",
                  phase=self.phases_run, pages=len(moved_pages))
        pages = np.array(moved_pages, dtype=np.int64)
        destinations = np.array(moved_dest, dtype=np.int64)
        for destination in np.unique(destinations):
            group = pages[destinations == destination]
            sources = current[group]
            for source in np.unique(sources):
                subset = group[sources == source]
                batch.add(RegionMove(pages=subset, source=int(source),
                                     destination=int(destination)))
            page_map.move(group, int(destination))
        return batch
