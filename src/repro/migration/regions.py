"""Grouping of pages into physically contiguous migration regions.

Physical frames are allocated on the first-touching socket, so a 512 KB
physical region contains pages first-touched by the same socket. We
reproduce that by grouping pages per initial home (in page-id order) into
``pages_per_region`` chunks. Region composition is then fixed for the run:
a region's pages migrate together, exactly as a physical region would.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.placement.pagemap import PageMap


class RegionTable:
    """Static page<->region mapping derived from the initial placement."""

    def __init__(self, initial_map: PageMap, pages_per_region: int):
        if pages_per_region < 1:
            raise ValueError(
                f"pages per region must be >= 1, got {pages_per_region}"
            )
        self.pages_per_region = pages_per_region
        self.n_pages = initial_map.n_pages

        region_pages: List[np.ndarray] = []
        page_to_region = np.empty(self.n_pages, dtype=np.int64)
        for socket in range(initial_map.n_sockets):
            pages = initial_map.pages_at(socket)
            for start in range(0, pages.size, pages_per_region):
                chunk = pages[start:start + pages_per_region]
                page_to_region[chunk] = len(region_pages)
                region_pages.append(chunk)
        # Pool-resident pages at t=0 would be a modeling error (first touch
        # never targets the pool), so any leftover unassigned page is a bug.
        self._region_pages = region_pages
        self.page_to_region = page_to_region
        self.n_regions = len(region_pages)

    def pages_of(self, region: int) -> np.ndarray:
        """Page ids belonging to ``region``."""
        if not 0 <= region < self.n_regions:
            raise ValueError(f"region {region} out of range")
        return self._region_pages[region]

    def region_of(self, page: int) -> int:
        if not 0 <= page < self.n_pages:
            raise ValueError(f"page {page} out of range")
        return int(self.page_to_region[page])

    def region_sizes(self) -> np.ndarray:
        return np.array([pages.size for pages in self._region_pages],
                        dtype=np.int64)

    def aggregate_page_counts(self, counts_by_page: np.ndarray) -> np.ndarray:
        """Sum per-(socket, page) counts into per-(socket, region) counts.

        ``counts_by_page`` has shape ``(n_sockets, n_pages)``; the result
        has shape ``(n_sockets, n_regions)``.
        """
        if counts_by_page.shape[-1] != self.n_pages:
            raise ValueError(
                f"expected {self.n_pages} page columns, "
                f"got {counts_by_page.shape[-1]}"
            )
        n_sockets = counts_by_page.shape[0]
        out = np.zeros((n_sockets, self.n_regions), dtype=counts_by_page.dtype)
        for socket in range(n_sockets):
            np.add.at(out[socket], self.page_to_region, counts_by_page[socket])
        return out

    def region_locations(self, page_map: PageMap) -> np.ndarray:
        """Current location of every region (location of its first page).

        Pages of a region always move together, so any member page is
        representative.
        """
        firsts = np.array([pages[0] for pages in self._region_pages],
                          dtype=np.int64)
        return page_map.locations[firsts].astype(np.int64)
