"""Oracular static initial placement (Fig. 9, Section V-B).

Given a-priori knowledge of each workload's whole-run access pattern, the
static placements eliminate runtime migration entirely:

* On the **baseline**, every page is homed at its dominant accessor.
* On **StarNUMA**, pages shared by ``pool_sharer_threshold``-or-more
  sockets go to the pool, hottest first, until the pool's usable capacity
  is exhausted; every other page is homed at its dominant accessor.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.placement.capacity import PoolCapacityManager
from repro.placement.pagemap import PageMap
from repro.topology.model import POOL_LOCATION


#: Sockets whose access count is within this factor of the page's maximum
#: are near-ties the oracle may pick among for load balance.
TIE_TOLERANCE = 0.9


def _balanced_argmax(total_counts: np.ndarray) -> np.ndarray:
    """Dominant-accessor placement with load-balanced tie breaking.

    For vagabond pages the per-socket counts are near-uniform, so a naive
    argmax funnels them all onto whichever socket enjoys a small
    systematic sampling bias, creating a DRAM/link hotspot no real oracle
    would choose. Pages are therefore assigned hottest-first, and among
    sockets within :data:`TIE_TOLERANCE` of the page's maximum the one
    serving the least accumulated *remote* traffic wins -- the home's
    coherent links carry every fill it serves to other sockets, so that
    is the quantity an oracle balances.
    """
    n_sockets, n_pages = total_counts.shape
    totals = total_counts.sum(axis=0)
    order = np.argsort(totals)[::-1]
    remote_served = np.zeros(n_sockets, dtype=np.float64)
    locations = np.empty(n_pages, dtype=np.int16)
    for page in order:
        counts = total_counts[:, page]
        threshold = counts.max() * TIE_TOLERANCE
        candidates = np.flatnonzero(counts >= threshold)
        chosen = candidates[np.argmin(remote_served[candidates])]
        locations[page] = chosen
        remote_served[chosen] += float(totals[page]) - float(counts[chosen])
    return locations


def oracular_static_placement(total_counts: np.ndarray,
                              sharer_counts: np.ndarray,
                              has_pool: bool,
                              capacity: Optional[PoolCapacityManager] = None,
                              pool_sharer_threshold: int = 8) -> PageMap:
    """Compute a static page map from whole-run access counts.

    Parameters
    ----------
    total_counts:
        Shape ``(n_sockets, n_pages)``: per-socket access counts over the
        entire run.
    sharer_counts:
        Shape ``(n_pages,)``: number of sockets that ever access each page.
    has_pool:
        Whether the target architecture has a memory pool.
    capacity:
        Pool capacity manager; required when ``has_pool``.
    pool_sharer_threshold:
        Sharing degree at which a page is considered a vagabond.
    """
    n_sockets, n_pages = total_counts.shape
    if sharer_counts.shape != (n_pages,):
        raise ValueError("sharer_counts must align with total_counts pages")
    if has_pool and capacity is None:
        raise ValueError("a pool placement needs a capacity manager")

    locations = _balanced_argmax(total_counts)

    if has_pool:
        totals = total_counts.sum(axis=0)
        vagabonds = np.flatnonzero(sharer_counts >= pool_sharer_threshold)
        # Hottest vagabonds claim the limited pool capacity first -- that
        # is what makes the placement oracular.
        vagabonds = vagabonds[np.argsort(totals[vagabonds])[::-1]]
        fit = min(vagabonds.size, capacity.free_pages)
        chosen = vagabonds[:fit]
        if chosen.size:
            capacity.allocate(int(chosen.size))
            locations[chosen] = POOL_LOCATION

    return PageMap(locations, n_sockets, has_pool)
