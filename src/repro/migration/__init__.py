"""Page/region migration policies and overhead model (Section III-D).

* :class:`RegionTable` groups first-touched pages into physically
  contiguous 128-page regions per home socket, reflecting that physical
  frames are allocated on the toucher's socket.
* :class:`StarNumaPolicy` implements Algorithm 1: threshold-based region
  selection with adaptive HI/LO thresholds, pool placement for regions
  shared by 8+ sockets, victim eviction when the pool is full, ping-pong
  suppression, and a per-phase migration limit.
* :class:`BaselinePolicy` is the idealized comparator the paper favors the
  baseline with: zero-cost, per-4KB-page knowledge of all accesses, with
  only the migration itself charged.
* :func:`oracular_static_placement` computes the Fig. 9 static placements
  from whole-run access knowledge.
* :class:`MigrationCostModel` charges TLB-shootdown cycles, page-copy
  traffic, and in-flight access stalls.
"""

from repro.migration.records import MigrationBatch, RegionMove
from repro.migration.regions import RegionTable
from repro.migration.starnuma import StarNumaPolicy
from repro.migration.baseline import BaselinePolicy
from repro.migration.oracle import oracular_static_placement
from repro.migration.costs import MigrationCostModel

__all__ = [
    "BaselinePolicy",
    "MigrationBatch",
    "MigrationCostModel",
    "RegionMove",
    "RegionTable",
    "StarNumaPolicy",
    "oracular_static_placement",
]
