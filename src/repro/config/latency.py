"""Unloaded latency parameters of the baseline system and the memory pool.

All values are nanoseconds and come straight from the paper (Sections II-A,
II-C, III-B, III-C and Fig. 1's latency table):

* A local memory access takes 80 ns end to end.
* An intra-chassis (single UPI hop) access adds 50 ns, for 130 ns.
* An inter-chassis (two-hop) access adds 280 ns, for 360 ns.
* A memory-pool access adds 100 ns of CXL path overhead, for 180 ns
  (25 ns per CXL port x2, 20 ns retimer, ~10 ns flight, 20 ns on-MHD
  network/arbitration/directory, 5 ns coherence margin).
* Coherence block transfers cost 413 ns via the socket path (the average
  3-hop cache-to-cache transfer: 333 ns of network plus 80 ns of memory
  access and directory lookup) and 280 ns via the pool path (200 ns of
  network for two CXL round trips plus the same 80 ns).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

#: Latency added by one CXL switch level when scaling past 16 sockets
#: (Section III-B / Fig. 10): 90 ns round trip, bringing the pool access
#: penalty from 100 ns to 190 ns.
CXL_SWITCH_PENALTY_NS = 90.0


@dataclass(frozen=True)
class LatencyConfig:
    """Unloaded memory access latencies, in nanoseconds.

    The ``*_ns`` attributes are *end-to-end* latencies as observed by a
    load that missed the LLC; penalties relative to a local access can be
    derived via the ``*_penalty_ns`` properties.
    """

    local_ns: float = 80.0
    intra_chassis_ns: float = 130.0
    inter_chassis_ns: float = 360.0
    pool_ns: float = 180.0
    #: DRAM array-access share of ``local_ns`` (row activation + column
    #: read of an open-page hit). The record-level replay subtracts this
    #: nominal share before substituting the functional DRAM channel's
    #: actual service time.
    local_dram_service_ns: float = 40.0
    #: Average 3-hop (requester -> home -> owner -> requester) block
    #: transfer, socket home (Section III-C).
    block_transfer_socket_ns: float = 413.0
    #: 4-hop block transfer via the pool home (Section III-C).
    block_transfer_pool_ns: float = 280.0

    @property
    def intra_chassis_penalty_ns(self) -> float:
        """UPI-hop penalty over a local access (50 ns in the paper)."""
        return self.intra_chassis_ns - self.local_ns

    @property
    def inter_chassis_penalty_ns(self) -> float:
        """Two-hop penalty over a local access (280 ns in the paper)."""
        return self.inter_chassis_ns - self.local_ns

    @property
    def pool_penalty_ns(self) -> float:
        """CXL path penalty over a local access (100 ns in the paper)."""
        return self.pool_ns - self.local_ns

    def with_pool_penalty(self, penalty_ns: float) -> "LatencyConfig":
        """Return a copy with a different pool access penalty.

        Used by the Fig. 10 sensitivity study (a 190 ns penalty models an
        intermediate CXL switch). The pool-path block transfer latency
        scales with the penalty because it traverses the CXL path twice.
        """
        if penalty_ns < 0:
            raise ValueError(f"pool penalty must be >= 0, got {penalty_ns}")
        delta = penalty_ns - self.pool_penalty_ns
        return replace(
            self,
            pool_ns=self.local_ns + penalty_ns,
            block_transfer_pool_ns=self.block_transfer_pool_ns + 2 * delta,
        )

    def validate(self) -> None:
        """Raise ``ValueError`` if the latency ordering is nonsensical."""
        if not (0 < self.local_ns <= self.intra_chassis_ns <= self.inter_chassis_ns):
            raise ValueError(
                "expected local <= intra-chassis <= inter-chassis latency, got "
                f"{self.local_ns} / {self.intra_chassis_ns} / {self.inter_chassis_ns}"
            )
        if self.pool_ns < self.local_ns:
            raise ValueError(
                f"pool latency {self.pool_ns} ns cannot be below local "
                f"latency {self.local_ns} ns"
            )
        if not 0 < self.local_dram_service_ns <= self.local_ns:
            raise ValueError(
                f"DRAM service share {self.local_dram_service_ns} ns must "
                f"be positive and within the {self.local_ns} ns local "
                f"latency"
            )
        if self.block_transfer_socket_ns <= 0 or self.block_transfer_pool_ns <= 0:
            raise ValueError("block transfer latencies must be positive")
