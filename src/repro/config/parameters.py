"""Top-level system parameter dataclasses (Tables I and II)."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.config import units
from repro.config.bandwidth import BandwidthConfig
from repro.config.latency import LatencyConfig

#: Size of an OS page, bytes.
PAGE_SIZE_BYTES = 4096
#: Size of a cache block, bytes.
CACHE_BLOCK_BYTES = 64
#: Default migration/tracking region: 512 KB = 128 4-KB pages (Section IV-C).
DEFAULT_REGION_BYTES = 512 * 1024


class TrackerKind(enum.Enum):
    """Region access tracker designs evaluated in the paper (Section III-D).

    ``T16`` tracks a 16-bit access counter plus one sharer bit per socket;
    ``T0`` tracks only the sharer bits, so it can identify widely shared
    regions but cannot rank their hotness.
    """

    T0 = 0
    T16 = 16

    @property
    def counter_bits(self) -> int:
        return self.value

    @property
    def counts_accesses(self) -> bool:
        return self.value > 0


@dataclass(frozen=True)
class CoreConfig:
    """Per-core microarchitectural parameters (Table I)."""

    frequency_ghz: float = 2.4
    issue_width: int = 4
    rob_entries: int = 256
    l1_kb: int = 32
    l2_kb: int = 1024
    llc_kb_per_core: int = 2048
    llc_ways: int = 16
    llc_latency_cycles: int = 30

    @property
    def cycle_ns(self) -> float:
        """Duration of one core clock cycle in nanoseconds."""
        return units.cycles_to_ns(1.0, self.frequency_ghz)

    def ns_to_cycles(self, ns: float) -> float:
        return units.ns_to_cycles(ns, self.frequency_ghz)

    def cycles_to_ns(self, cycles: float) -> float:
        return units.cycles_to_ns(cycles, self.frequency_ghz)


@dataclass(frozen=True)
class PoolConfig:
    """Memory pool (CXL type-3 MHD) parameters (Section III-A)."""

    enabled: bool = True
    #: Fraction of each workload's footprint allowed on the pool.
    #: 20% models a chassis-equivalent pool; 1/17 a socket-equivalent one
    #: (Section IV-D and Fig. 12).
    capacity_fraction: float = 0.20
    #: Extra latency margin for the MHD coherence directory, already folded
    #: into LatencyConfig.pool_ns; kept for documentation/reporting.
    directory_margin_ns: float = 5.0

    def validate(self) -> None:
        if not 0.0 < self.capacity_fraction <= 1.0:
            raise ValueError(
                f"capacity_fraction must be in (0, 1], got {self.capacity_fraction}"
            )


@dataclass(frozen=True)
class MigrationConfig:
    """Page monitoring and migration parameters (Sections III-D and IV-C)."""

    tracker: TrackerKind = TrackerKind.T16
    region_bytes: int = DEFAULT_REGION_BYTES
    #: Initial HI threshold (region accesses per phase) for T16; adapted
    #: each phase within [hi_threshold_min, hi_threshold_max].
    hi_threshold_init: int = 20_000
    hi_threshold_min: int = 1_000
    hi_threshold_max: int = 400_000
    #: Initial and maximum LO (eviction) thresholds. The paper quotes 1K
    #: adapted up to 10K for its trace densities; the ceiling here is
    #: higher so that adaptation can always unfreeze a pool packed with
    #: lukewarm regions when hotter candidates appear.
    lo_threshold_init: int = 1_000
    lo_threshold_max: int = 50_000
    #: T0's fixed sharer-count threshold ("touched by all sockets").
    t0_sharer_threshold: int = 16
    #: Sharing degree at or above which the pool is the migration target
    #: (Algorithm 1 line 8).
    pool_sharer_threshold: int = 8
    #: Per-phase migration limit, in 4-KB pages. The paper sweeps 0..256K
    #: and picks the best per workload/system; 256K is a robust default.
    migration_limit_pages: int = 262_144
    #: When set, used verbatim as the per-phase page budget -- no footprint
    #: scaling, no floor. For the migration-limit ablation sweep.
    migration_limit_override_pages: Optional[int] = None
    #: Cycles charged to the initiating core per migrated page for the
    #: hardware-assisted TLB shootdown (DiDi).
    shootdown_cycles_per_page: int = 3_000
    #: Length of one migration phase, instructions per thread.
    phase_instructions: int = 1_000_000_000

    @property
    def pages_per_region(self) -> int:
        return self.region_bytes // PAGE_SIZE_BYTES

    def validate(self) -> None:
        if self.region_bytes % PAGE_SIZE_BYTES:
            raise ValueError("region_bytes must be a multiple of the page size")
        if self.region_bytes < PAGE_SIZE_BYTES:
            raise ValueError("region must hold at least one page")
        if self.hi_threshold_min > self.hi_threshold_max:
            raise ValueError("hi_threshold_min must be <= hi_threshold_max")
        if self.migration_limit_pages < 0:
            raise ValueError("migration_limit_pages must be >= 0")
        if not 1 <= self.pool_sharer_threshold:
            raise ValueError("pool_sharer_threshold must be >= 1")


@dataclass(frozen=True)
class SystemConfig:
    """A complete simulated system: topology scale, latencies, bandwidths.

    ``name`` labels the configuration in reports (e.g. ``"baseline"`` or
    ``"starnuma"``). A configuration with ``pool.enabled`` False is a
    conventional multi-socket NUMA machine.
    """

    name: str = "starnuma"
    n_chassis: int = 4
    sockets_per_chassis: int = 4
    cores_per_socket: int = 28
    core: CoreConfig = field(default_factory=CoreConfig)
    latency: LatencyConfig = field(default_factory=LatencyConfig)
    bandwidth: BandwidthConfig = field(default_factory=BandwidthConfig)
    pool: PoolConfig = field(default_factory=PoolConfig)
    migration: MigrationConfig = field(default_factory=MigrationConfig)
    #: Per-socket DRAM capacity, GB (full scale: 6 channels x 32 GB).
    memory_per_socket_gb: float = 192.0
    #: Pool DRAM capacity, GB (full scale: 16 channels x 48 GB).
    pool_memory_gb: float = 768.0

    @property
    def n_sockets(self) -> int:
        return self.n_chassis * self.sockets_per_chassis

    @property
    def n_cores(self) -> int:
        return self.n_sockets * self.cores_per_socket

    @property
    def total_memory_gb(self) -> float:
        total = self.memory_per_socket_gb * self.n_sockets
        if self.pool.enabled:
            total += self.pool_memory_gb
        return total

    def rename(self, name: str) -> "SystemConfig":
        return replace(self, name=name)

    def without_pool(self, name: Optional[str] = None) -> "SystemConfig":
        """Return the conventional-NUMA counterpart of this system."""
        return replace(
            self,
            name=name or "baseline",
            pool=replace(self.pool, enabled=False),
        )

    def validate(self) -> None:
        """Validate every nested configuration; raise ``ValueError`` on error."""
        if self.n_chassis < 1 or self.sockets_per_chassis < 1:
            raise ValueError("need at least one chassis and one socket per chassis")
        if self.cores_per_socket < 1:
            raise ValueError("need at least one core per socket")
        if self.memory_per_socket_gb <= 0:
            raise ValueError("memory_per_socket_gb must be positive")
        self.latency.validate()
        self.bandwidth.validate()
        self.pool.validate()
        self.migration.validate()
