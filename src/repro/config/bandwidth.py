"""Bandwidth parameters for links and memory channels.

Values are per direction, in GB/s, and follow Tables I and II of the
paper. The full-scale system uses 20.8 GB/s UPI links (four per socket),
13 GB/s NUMALinks (twelve per chassis), 40 GB/s effective CXL bandwidth to
the pool per socket, and DDR5-4800 channels. The scaled-down simulation
configuration uses 3 GB/s coherent links, one DDR5 channel per socket, and
6 GB/s CXL per socket to a two-channel pool.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

#: Peak transfer rate of a single DDR5-4800 channel, GB/s.
DDR5_4800_CHANNEL_GBPS = 38.4


@dataclass(frozen=True)
class BandwidthConfig:
    """Link and memory bandwidths (GB/s per direction)."""

    upi_link_gbps: float = 20.8
    numalink_gbps: float = 13.0
    cxl_per_socket_gbps: float = 40.0
    dram_channel_gbps: float = DDR5_4800_CHANNEL_GBPS
    channels_per_socket: int = 6
    pool_channels: int = 16
    upi_links_per_socket: int = 4
    numalinks_per_chassis: int = 12
    #: Fraction of a coherent link's raw bandwidth realized as goodput
    #: (headers, CRC, credits, snoop traffic). The CXL figure above is
    #: already an effective rate (40 of 64 GB/s raw, ~62%), so the same
    #: class of derating is applied to UPI/NUMALinks when links are built.
    coherent_link_efficiency: float = 0.70

    @property
    def upi_effective_gbps(self) -> float:
        return self.upi_link_gbps * self.coherent_link_efficiency

    @property
    def numalink_effective_gbps(self) -> float:
        return self.numalink_gbps * self.coherent_link_efficiency

    @property
    def local_memory_gbps(self) -> float:
        """Aggregate local DRAM bandwidth of one socket."""
        return self.dram_channel_gbps * self.channels_per_socket

    @property
    def pool_memory_gbps(self) -> float:
        """Aggregate DRAM bandwidth of the memory pool's MHD."""
        return self.dram_channel_gbps * self.pool_channels

    def scaled(self, link_gbps: float, channels_per_socket: int,
               pool_channels: int, cxl_per_socket_gbps: float) -> "BandwidthConfig":
        """Return the Table II scaled-down variant of this configuration.

        Table II's link rates are the bandwidths the simulator should
        realize, so no further protocol derating is applied to them.
        """
        return replace(
            self,
            upi_link_gbps=link_gbps,
            numalink_gbps=link_gbps,
            cxl_per_socket_gbps=cxl_per_socket_gbps,
            channels_per_socket=channels_per_socket,
            pool_channels=pool_channels,
            coherent_link_efficiency=1.0,
        )

    def with_iso_bandwidth(self) -> "BandwidthConfig":
        """Baseline ISO-BW variant of Fig. 11.

        The coherent links absorb the 640 GB/s of aggregate effective
        bandwidth StarNUMA's sixteen CXL links would add, pro-rated on
        each link type's base bandwidth. For the full-scale numbers this
        yields 26.4 GB/s UPI and 17 GB/s NUMALink; for any other base the
        same ~1.27x pro-rating factor is applied.
        """
        factor = 26.4 / 20.8
        return replace(
            self,
            upi_link_gbps=self.upi_link_gbps * factor,
            numalink_gbps=self.numalink_gbps * (17.0 / 13.0),
        )

    def with_double_coherent_links(self) -> "BandwidthConfig":
        """Baseline 2xBW variant of Fig. 11: double every coherent link."""
        return replace(
            self,
            upi_link_gbps=self.upi_link_gbps * 2,
            numalink_gbps=self.numalink_gbps * 2,
        )

    def with_half_cxl(self) -> "BandwidthConfig":
        """StarNUMA Half-BW variant of Fig. 11: x4 instead of x8 CXL."""
        return replace(self, cxl_per_socket_gbps=self.cxl_per_socket_gbps / 2)

    def validate(self) -> None:
        """Raise ``ValueError`` on non-positive bandwidths or counts."""
        for name in ("upi_link_gbps", "numalink_gbps", "cxl_per_socket_gbps",
                     "dram_channel_gbps"):
            value = getattr(self, name)
            if value <= 0:
                raise ValueError(f"{name} must be positive, got {value}")
        for name in ("channels_per_socket", "pool_channels",
                     "upi_links_per_socket", "numalinks_per_chassis"):
            value = getattr(self, name)
            if value < 1:
                raise ValueError(f"{name} must be >= 1, got {value}")
        if not 0.0 < self.coherent_link_efficiency <= 1.0:
            raise ValueError(
                "coherent_link_efficiency must be in (0, 1], got "
                f"{self.coherent_link_efficiency}"
            )
