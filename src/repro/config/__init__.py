"""System configuration for the StarNUMA reproduction.

This package provides the parameter sets of the paper's Table I (full-scale
16-socket HPE Superdome FLEX class machine plus the CXL memory pool) and
Table II (the scaled-down simulation configuration), together with the
configuration variants used throughout the evaluation section:

* ``baseline_config`` / ``starnuma_config`` -- the two architectures of
  Fig. 8 (Section V-A).
* ``with_iso_bandwidth`` / ``with_double_bandwidth`` /
  ``with_half_pool_bandwidth`` -- the bandwidth-provisioning variants of
  Fig. 11 (Section V-D).
* ``with_pool_latency_penalty`` -- the CXL-switch latency variant of
  Fig. 10 (Section V-C).
* ``with_pool_capacity_fraction`` -- the pool-capacity variants of Fig. 12
  (Section V-E).
"""

from repro.config.cxl import CxlPathModel
from repro.config.latency import LatencyConfig
from repro.config.bandwidth import BandwidthConfig
from repro.config.parameters import (
    CoreConfig,
    MigrationConfig,
    PoolConfig,
    SystemConfig,
    TrackerKind,
)
from repro.config.presets import (
    baseline_config,
    full_scale_config,
    scaled_config,
    starnuma_config,
    with_double_bandwidth,
    with_half_pool_bandwidth,
    with_iso_bandwidth,
    with_pool_capacity_fraction,
    with_pool_latency_penalty,
    with_scale_factor,
)

__all__ = [
    "BandwidthConfig",
    "CxlPathModel",
    "CoreConfig",
    "LatencyConfig",
    "MigrationConfig",
    "PoolConfig",
    "SystemConfig",
    "TrackerKind",
    "baseline_config",
    "full_scale_config",
    "scaled_config",
    "starnuma_config",
    "with_double_bandwidth",
    "with_half_pool_bandwidth",
    "with_iso_bandwidth",
    "with_pool_capacity_fraction",
    "with_pool_latency_penalty",
    "with_scale_factor",
]
