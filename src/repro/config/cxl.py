"""CXL pool access-path latency, built up from Fig. 3's components.

The paper derives the 100 ns pool-access penalty (180 ns end to end) from
Pond's measured CXL MHD breakdown: 25 ns of round-trip overhead at each
of the two CXL ports (processor side and MHD side), a 20 ns retimer
(needed to span a 16-socket rack), ~5 ns of flight time per direction,
and 20 ns of on-MHD network/arbitration/directory -- Pond's 15 ns plus
the paper's conservative 5 ns margin for multi-headed coherence. Scaling past 16 sockets inserts CXL
switch levels at 90 ns round trip each (Section III-B).

This module makes that derivation executable so configurations stay
consistent with their physical story: latency variants are expressed as
path changes (add a retimer, add a switch) rather than magic numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.config.latency import LatencyConfig


@dataclass(frozen=True)
class CxlPathModel:
    """Round-trip components of one pool access, nanoseconds."""

    processor_port_ns: float = 25.0
    mhd_port_ns: float = 25.0
    retimers: int = 1
    retimer_ns: float = 20.0
    flight_ns_per_direction: float = 5.0
    mhd_internal_ns: float = 15.0
    coherence_margin_ns: float = 5.0
    switch_levels: int = 0
    switch_ns: float = 90.0

    def __post_init__(self) -> None:
        if self.retimers < 0 or self.switch_levels < 0:
            raise ValueError("retimers and switch levels must be >= 0")
        for name in ("processor_port_ns", "mhd_port_ns", "retimer_ns",
                     "flight_ns_per_direction", "mhd_internal_ns",
                     "coherence_margin_ns", "switch_ns"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")

    @property
    def penalty_ns(self) -> float:
        """Pool-access penalty over a local access (100 ns by default)."""
        return (self.processor_port_ns
                + self.mhd_port_ns
                + self.retimers * self.retimer_ns
                + 2 * self.flight_ns_per_direction
                + self.mhd_internal_ns
                + self.coherence_margin_ns
                + self.switch_levels * self.switch_ns)

    def end_to_end_ns(self, local_ns: float = 80.0) -> float:
        """Unloaded pool access latency including DRAM and on-chip time."""
        if local_ns <= 0:
            raise ValueError(f"local latency must be positive, got {local_ns}")
        return local_ns + self.penalty_ns

    def with_switches(self, levels: int) -> "CxlPathModel":
        """Insert CXL switch levels (scaling beyond 16 sockets)."""
        return replace(self, switch_levels=levels)

    def with_retimers(self, count: int) -> "CxlPathModel":
        """Change the retimer chain length (physical distance)."""
        return replace(self, retimers=count)

    def apply_to(self, latency: LatencyConfig) -> LatencyConfig:
        """Return ``latency`` with this path's pool penalty applied."""
        return latency.with_pool_penalty(self.penalty_ns)

    def breakdown(self) -> dict:
        """Component map, for reporting (sums to :attr:`penalty_ns`)."""
        return {
            "processor_port": self.processor_port_ns,
            "mhd_port": self.mhd_port_ns,
            "retimers": self.retimers * self.retimer_ns,
            "flight": 2 * self.flight_ns_per_direction,
            "mhd_internal": self.mhd_internal_ns,
            "coherence_margin": self.coherence_margin_ns,
            "switches": self.switch_levels * self.switch_ns,
        }
