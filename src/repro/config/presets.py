"""Factory functions for the configurations used in the paper's evaluation."""

from __future__ import annotations

from dataclasses import replace

from repro.config.bandwidth import BandwidthConfig
from repro.config.parameters import (
    SystemConfig,
    TrackerKind,
)


def full_scale_config(name: str = "starnuma-full") -> SystemConfig:
    """Table I: the full-scale 16-socket system with the memory pool."""
    config = SystemConfig(name=name)
    config.validate()
    return config


def scaled_config(name: str = "starnuma", *, scale: int = 1) -> SystemConfig:
    """Table II: the scaled-down simulation configuration.

    Four cores per socket, one DDR5 channel per socket, 3 GB/s coherent
    links, and a two-channel pool at 6 GB/s per socket. ``scale`` doubles
    (or more) the per-socket core count and the memory/link bandwidths,
    which is exactly the SC3 configuration of Fig. 14 when ``scale=2``.
    """
    if scale < 1:
        raise ValueError(f"scale must be >= 1, got {scale}")
    bandwidth = BandwidthConfig().scaled(
        link_gbps=3.0 * scale,
        channels_per_socket=1 * scale,
        pool_channels=2 * scale,
        cxl_per_socket_gbps=6.0 * scale,
    )
    config = SystemConfig(
        name=name,
        cores_per_socket=4 * scale,
        bandwidth=bandwidth,
        memory_per_socket_gb=32.0 * scale,
        pool_memory_gb=96.0 * scale,
    )
    config.validate()
    return config


def starnuma_config(*, tracker: TrackerKind = TrackerKind.T16,
                    scale: int = 1) -> SystemConfig:
    """The default StarNUMA system under the scaled simulation parameters."""
    config = scaled_config(name=f"starnuma-{tracker.name.lower()}", scale=scale)
    return replace(config, migration=replace(config.migration, tracker=tracker))


def baseline_config(*, scale: int = 1) -> SystemConfig:
    """The baseline multi-socket system (no pool, perfect-knowledge policy)."""
    return scaled_config(scale=scale).without_pool("baseline")


def with_iso_bandwidth(config: SystemConfig) -> SystemConfig:
    """Baseline ISO-BW (Fig. 11): pool bandwidth folded into coherent links."""
    return replace(
        config,
        name=f"{config.name}-iso-bw",
        bandwidth=config.bandwidth.with_iso_bandwidth(),
    )


def with_double_bandwidth(config: SystemConfig) -> SystemConfig:
    """Baseline 2xBW (Fig. 11): every coherent link doubled."""
    return replace(
        config,
        name=f"{config.name}-2x-bw",
        bandwidth=config.bandwidth.with_double_coherent_links(),
    )


def with_half_pool_bandwidth(config: SystemConfig) -> SystemConfig:
    """StarNUMA Half-BW (Fig. 11): x4 CXL links instead of x8."""
    if not config.pool.enabled:
        raise ValueError("half-pool-bandwidth variant requires an enabled pool")
    return replace(
        config,
        name=f"{config.name}-half-bw",
        bandwidth=config.bandwidth.with_half_cxl(),
    )


def with_pool_latency_penalty(config: SystemConfig,
                              penalty_ns: float) -> SystemConfig:
    """Fig. 10 variant: change the unloaded pool access penalty.

    The paper's default is 100 ns; 190 ns models an intermediate CXL
    switch on the path to the pool.
    """
    if not config.pool.enabled:
        raise ValueError("pool latency variant requires an enabled pool")
    return replace(
        config,
        name=f"{config.name}-pool{int(penalty_ns)}ns",
        latency=config.latency.with_pool_penalty(penalty_ns),
    )


def with_pool_capacity_fraction(config: SystemConfig,
                                fraction: float) -> SystemConfig:
    """Fig. 12 variant: limit pool capacity to ``fraction`` of the footprint."""
    if not config.pool.enabled:
        raise ValueError("pool capacity variant requires an enabled pool")
    pool = replace(config.pool, capacity_fraction=fraction)
    pool.validate()
    return replace(config, name=f"{config.name}-cap{fraction:.3f}", pool=pool)


def with_scale_factor(config: SystemConfig, scale: int) -> SystemConfig:
    """Fig. 14 SC3 helper: rebuild the config at a different scale factor."""
    rebuilt = scaled_config(name=config.name, scale=scale)
    rebuilt = replace(rebuilt, migration=config.migration, pool=config.pool,
                      latency=config.latency)
    if not config.pool.enabled:
        rebuilt = rebuilt.without_pool(config.name)
    rebuilt.validate()
    return rebuilt
