"""Canonical unit conversions -- the one module allowed to mix units.

Quantities throughout the reproduction carry their unit in the
identifier suffix (``_ns``, ``_cycles``, ``_gbps``, ``_bytes``,
``_gb``); the ``starnuma lint`` units rule flags any cross-unit
arithmetic outside this module. Every conversion therefore goes through
these helpers (directly, or via the :class:`~repro.config.CoreConfig`
wrappers that bind the core frequency).

Conventions:

* **GB are decimal** (1e9 bytes), matching the link-rate convention of
  Tables I/II -- a 40 GB/s link moves 40 bytes per nanosecond.
* **1 GB/s == 1 byte/ns**, so transfer times divide bytes by GB/s.
"""

from __future__ import annotations

#: Bytes per (decimal) gigabyte.
BYTES_PER_GB = 1e9


def ns_to_cycles(latency_ns: float, frequency_ghz: float) -> float:
    """Nanoseconds -> core clock cycles at ``frequency_ghz``."""
    return latency_ns * frequency_ghz


def cycles_to_ns(cycles: float, frequency_ghz: float) -> float:
    """Core clock cycles at ``frequency_ghz`` -> nanoseconds."""
    return cycles / frequency_ghz


def gb_to_bytes(capacity_gb: float) -> float:
    """Decimal gigabytes -> bytes."""
    return capacity_gb * BYTES_PER_GB


def bytes_to_gb(size_bytes: float) -> float:
    """Bytes -> decimal gigabytes."""
    return size_bytes / BYTES_PER_GB


def transfer_time_ns(size_bytes: float, rate_gbps: float) -> float:
    """Time to move ``size_bytes`` at ``rate_gbps`` (GB/s per direction).

    1 GB/s moves one byte per nanosecond, so this is ``bytes / GBps``.
    """
    if rate_gbps <= 0:
        raise ValueError(f"rate must be positive, got {rate_gbps}")
    return size_bytes / rate_gbps


def bytes_in_window(rate_gbps: float, window_ns: float) -> float:
    """Bytes a ``rate_gbps`` link moves in a ``window_ns`` interval."""
    return rate_gbps * window_ns


def offered_gbps(traffic_bytes: float, window_ns: float) -> float:
    """Offered bandwidth of ``traffic_bytes`` spread over ``window_ns``."""
    if window_ns <= 0:
        raise ValueError(f"window must be positive, got {window_ns}")
    return traffic_bytes / window_ns
