"""Command-line interface: ``starnuma`` / ``python -m repro``.

Examples::

    starnuma list                      # available experiments & workloads
    starnuma run fig8                  # reproduce the main results
    starnuma run all --seed 2          # every table/figure, fresh seed
    starnuma run fig10 --workloads bfs tc
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments import EXPERIMENTS, ExperimentContext
from repro.workloads import WORKLOADS

#: Committed baseline of accepted lint findings, at the repo root.
DEFAULT_BASELINE = "lint-baseline.json"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="starnuma",
        description="StarNUMA (MICRO 2024) reproduction harness",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiments and workloads")

    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment",
                     choices=sorted(EXPERIMENTS) + ["all"],
                     help="experiment id, or 'all'")
    run.add_argument("--seed", type=int, default=1,
                     help="RNG seed for trace synthesis (default 1)")
    run.add_argument("--phases", type=int, default=12,
                     help="simulated phases per run (default 12)")
    run.add_argument("--warmup", type=int, default=4,
                     help="phases excluded from aggregates (default 4)")
    run.add_argument("--workloads", nargs="+", metavar="NAME",
                     help="restrict to these workloads")
    run.add_argument("--resume", metavar="DIR",
                     help="checkpoint directory: skip experiments already "
                          "completed there, record new completions")
    run.add_argument("--jobs", type=int, default=1, metavar="N",
                     help="run up to N experiments in parallel worker "
                          "processes (default 1: sequential)")

    export = sub.add_parser("export",
                            help="run experiments and write JSON/CSV")
    export.add_argument("--out", metavar="DIR",
                        help="output directory")
    export.add_argument("--experiments", nargs="+", metavar="ID",
                        help="subset of experiment ids (default: all)")
    export.add_argument("--seed", type=int, default=1)
    export.add_argument("--phases", type=int, default=12)
    export.add_argument("--warmup", type=int, default=4)
    export.add_argument("--workloads", nargs="+", metavar="NAME")
    export.add_argument("--resume", metavar="DIR",
                        help="resume a partially completed export in DIR "
                             "(implies --out DIR)")
    export.add_argument("--retries", type=int, default=2, metavar="N",
                        help="retry budget for transient failures "
                             "(default 2)")
    export.add_argument("--run-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="per-experiment wall-clock limit")
    export.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="run up to N experiments in parallel worker "
                             "processes (default 1: sequential)")

    describe = sub.add_parser("describe",
                              help="print a system configuration")
    describe.add_argument("system", choices=["baseline", "starnuma",
                                             "full-scale"],
                          help="which preset to describe")

    lint = sub.add_parser(
        "lint",
        help="run the project static-analysis pass",
        description="Check the tree against the StarNUMA invariants: "
                    "unit-suffix consistency, determinism, sim purity, "
                    "hashable cache keys, config/model agreement. See "
                    "docs/static-analysis.md.",
    )
    lint.add_argument("paths", nargs="*", metavar="PATH",
                      help="files or directories to lint "
                           "(default: src/repro)")
    lint.add_argument("--format", choices=["text", "json"], default="text",
                      help="report format (default text)")
    lint.add_argument("--baseline", metavar="FILE",
                      default=DEFAULT_BASELINE,
                      help=f"baseline file of accepted findings "
                           f"(default {DEFAULT_BASELINE}; a missing file "
                           f"is an empty baseline)")
    lint.add_argument("--no-baseline", action="store_true",
                      help="report every finding, ignoring the baseline")
    lint.add_argument("--update-baseline", action="store_true",
                      help="accept all current findings into the baseline "
                           "file and exit 0")
    lint.add_argument("--rules", nargs="+", metavar="RULE",
                      help="run only these rules")
    lint.add_argument("--list-rules", action="store_true",
                      help="list available rules and exit")
    return parser


def _cmd_list() -> int:
    print("experiments:")
    for name in sorted(EXPERIMENTS):
        print(f"  {name}")
    print("workloads:")
    for name in WORKLOADS:
        profile = WORKLOADS[name]
        print(f"  {name:9s} {profile.family:13s} "
              f"{profile.footprint_gb:6.0f} GB  MPKI {profile.mpki}")
    return 0


def _validate_common(args: argparse.Namespace) -> Optional[str]:
    """One-line complaint for invalid run/export parameters, else None."""
    if args.seed < 0:
        return f"--seed must be >= 0 (got {args.seed})"
    if args.phases < 1:
        return f"--phases must be >= 1 (got {args.phases})"
    if not 0 <= args.warmup < args.phases:
        return (f"--warmup must satisfy 0 <= warmup < phases "
                f"(got warmup={args.warmup}, phases={args.phases})")
    for workload in args.workloads or []:
        if workload not in WORKLOADS:
            return f"unknown workload {workload!r}"
    if getattr(args, "jobs", 1) < 1:
        return f"--jobs must be >= 1 (got {args.jobs})"
    return None


def _print_result(name: str, result) -> None:
    print(result.table)
    if name == "fig8":
        from repro.metrics.ascii_chart import speedup_chart

        items = [(str(row[0]), float(row[1]))
                 for row in result.speedup.rows]
        print()
        print(speedup_chart(items,
                            title="StarNUMA (T16) speedup over "
                                  "baseline:"))
    print()


def _cmd_run(args: argparse.Namespace) -> int:
    context = ExperimentContext(
        seed=args.seed,
        n_phases=args.phases,
        warmup_phases=args.warmup,
        workloads=args.workloads,
    )
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [
        args.experiment
    ]
    if args.resume is None and args.jobs == 1:
        for name in names:
            _print_result(name, EXPERIMENTS[name](context))
        return 0

    import contextlib
    import io
    from pathlib import Path

    from repro.experiments.export import sweep_params
    from repro.runner import (CheckpointMismatchError, SweepCheckpoint,
                              SweepRunner)

    checkpoint = None
    if args.resume is not None:
        checkpoint = SweepCheckpoint(Path(args.resume) / "checkpoint.json",
                                     sweep_params(context, names))
        try:
            checkpoint.load()
        except CheckpointMismatchError as exc:
            print(f"starnuma: error: {exc}", file=sys.stderr)
            return 2

    if args.jobs == 1:

        def run_one(name: str) -> None:
            _print_result(name, EXPERIMENTS[name](context))
            return None

    else:
        # Parallel workers render off-screen and return the text; the
        # parent prints outcomes in submission order, so tables never
        # interleave and the output order matches a sequential run.
        def run_one(name: str) -> dict:
            rendered = io.StringIO()
            with contextlib.redirect_stdout(rendered):
                _print_result(name, EXPERIMENTS[name](context))
            return {"rendered": rendered.getvalue()}

    runner = SweepRunner(
        run_one, checkpoint=checkpoint, jobs=args.jobs,
        on_event=lambda message: print(message, file=sys.stderr),
    )
    outcomes = runner.run(names)
    if args.jobs > 1:
        for outcome in outcomes:
            if outcome.status == "ok" and outcome.payload:
                print(outcome.payload["rendered"], end="")
    failed = [outcome for outcome in outcomes if not outcome.succeeded]
    if failed:
        where = args.resume or "DIR"
        print(f"starnuma: {len(failed)} experiment(s) failed; rerun with "
              f"--resume {where} to retry them", file=sys.stderr)
        return 1
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from repro.experiments.export import export_all
    from repro.runner import CheckpointMismatchError, SweepError

    out = args.resume or args.out
    if out is None:
        print("starnuma: error: export needs --out DIR (or --resume DIR)",
              file=sys.stderr)
        return 2
    if args.retries < 0:
        print(f"starnuma: error: --retries must be >= 0 "
              f"(got {args.retries})", file=sys.stderr)
        return 2
    if args.run_timeout is not None and args.run_timeout <= 0:
        print(f"starnuma: error: --run-timeout must be > 0 "
              f"(got {args.run_timeout})", file=sys.stderr)
        return 2
    if args.resume and args.out and args.resume != args.out:
        print("starnuma: error: --out and --resume point at different "
              "directories", file=sys.stderr)
        return 2

    context = ExperimentContext(
        seed=args.seed, n_phases=args.phases, warmup_phases=args.warmup,
        workloads=args.workloads,
    )
    try:
        written = export_all(
            out, context, args.experiments,
            resume=args.resume is not None,
            max_retries=args.retries,
            timeout_s=args.run_timeout,
            jobs=args.jobs,
            on_event=lambda message: print(message, file=sys.stderr),
        )
    except KeyError as exc:
        print(f"starnuma: error: {exc.args[0]}", file=sys.stderr)
        return 2
    except CheckpointMismatchError as exc:
        print(f"starnuma: error: {exc}", file=sys.stderr)
        return 2
    except SweepError as exc:
        print(f"starnuma: {exc}; completed experiments are checkpointed -- "
              f"rerun with --resume {out} to retry the rest",
              file=sys.stderr)
        return 1
    print(f"wrote {len(written)} result files to {out}")
    return 0


def _cmd_describe(args: argparse.Namespace) -> int:
    from repro.config import baseline_config, full_scale_config, \
        starnuma_config
    from repro.topology import Topology
    from repro.topology.model import LinkKind

    config = {
        "baseline": baseline_config,
        "starnuma": starnuma_config,
        "full-scale": full_scale_config,
    }[args.system]()
    topology = Topology(config)

    print(f"system: {config.name}")
    print(f"  {config.n_chassis} chassis x {config.sockets_per_chassis} "
          f"sockets x {config.cores_per_socket} cores = "
          f"{config.n_cores} cores")
    core = config.core
    print(f"  core: {core.frequency_ghz:.1f} GHz, {core.issue_width}-wide, "
          f"{core.rob_entries}-entry ROB, "
          f"L1 {core.l1_kb} KB / L2 {core.l2_kb} KB / "
          f"LLC {core.llc_kb_per_core} KB/core "
          f"({core.llc_latency_cycles} cycles)")
    print(f"  memory: {config.memory_per_socket_gb:.0f} GB/socket"
          + (f" + {config.pool_memory_gb:.0f} GB pool"
             if config.pool.enabled else " (no pool)"))
    latency = config.latency
    print(f"  latency ns: local {latency.local_ns:.0f} / 1-hop "
          f"{latency.intra_chassis_ns:.0f} / 2-hop "
          f"{latency.inter_chassis_ns:.0f}"
          + (f" / pool {latency.pool_ns:.0f} "
             f"(incl. {config.pool.directory_margin_ns:.0f} ns MHD "
             f"directory)" if config.pool.enabled else ""))
    counts = {}
    for link in topology.links.values():
        counts.setdefault(link.kind, [0, link.capacity_gbps])
        counts[link.kind][0] += 1
    print("  links:")
    for kind in (LinkKind.UPI, LinkKind.NUMALINK, LinkKind.CXL,
                 LinkKind.DRAM):
        if kind in counts:
            n, capacity = counts[kind]
            print(f"    {kind.value:9s} x{n:<3d} "
                  f"{capacity:.1f} GB/s per direction")
    migration = config.migration
    print(f"  migration: tracker {migration.tracker.name}, region "
          f"{migration.region_bytes >> 10} KB, limit "
          f"{migration.migration_limit_pages} pages/phase")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.lint import (Baseline, BaselineError, build_project,
                            create_rules, render_json, render_text,
                            rule_descriptions, run_lint)

    if args.list_rules:
        for name, description in sorted(rule_descriptions().items()):
            print(f"{name:14s} {description}")
        return 0

    paths = args.paths or ["src/repro"]
    for path in paths:
        if not Path(path).exists():
            print(f"starnuma: error: no such path: {path}", file=sys.stderr)
            return 2

    try:
        rules = create_rules(args.rules)
    except KeyError as exc:
        print(f"starnuma: error: {exc.args[0]}", file=sys.stderr)
        return 2

    project, parse_errors = build_project(paths)
    baseline_path = Path(args.baseline)

    if args.update_baseline:
        report = run_lint(project, rules=rules,
                          extra_findings=parse_errors)
        Baseline.from_findings(report.findings, project).save(baseline_path)
        print(f"wrote {len(report.findings)} finding(s) to {baseline_path}")
        return 0

    baseline = None
    if not args.no_baseline:
        try:
            baseline = Baseline.load(baseline_path)
        except BaselineError as exc:
            print(f"starnuma: error: {exc}", file=sys.stderr)
            return 2
    report = run_lint(project, rules=rules, baseline=baseline,
                      extra_findings=parse_errors)
    rendered = (render_json(report) if args.format == "json"
                else render_text(report))
    print(rendered)
    return 0 if report.is_clean else 1


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command in ("run", "export"):
        message = _validate_common(args)
        if message is not None:
            print(f"starnuma: error: {message}", file=sys.stderr)
            return 2
    if args.command == "list":
        return _cmd_list()
    if args.command == "export":
        return _cmd_export(args)
    if args.command == "describe":
        return _cmd_describe(args)
    if args.command == "lint":
        return _cmd_lint(args)
    return _cmd_run(args)


if __name__ == "__main__":
    sys.exit(main())
