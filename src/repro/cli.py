"""Command-line interface: ``starnuma`` / ``python -m repro``.

Examples::

    starnuma list                      # available experiments & workloads
    starnuma run fig8                  # reproduce the main results
    starnuma run all --seed 2          # every table/figure, fresh seed
    starnuma run fig10 --workloads bfs tc
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.experiments import EXPERIMENTS, ExperimentContext
from repro.obs import OBS
from repro.obs.logconfig import get_logger, setup_logging
from repro.workloads import WORKLOADS

#: Committed baseline of accepted lint findings, at the repo root.
DEFAULT_BASELINE = "lint-baseline.json"

_log = get_logger()


def _add_obs_arguments(command: argparse.ArgumentParser) -> None:
    command.add_argument("--obs-trace", metavar="PATH",
                         help="write an instrumentation trace to PATH; "
                              "a .sqlite/.db suffix streams into the "
                              "results store (query it with 'starnuma "
                              "query'), anything else writes JSONL; "
                              "summarize either with "
                              "'starnuma obs summary PATH'")
    command.add_argument("--obs-level", choices=["basic", "detail"],
                         default="basic",
                         help="instrumentation verbosity (default basic; "
                              "detail adds per-page decisions and "
                              "residual trajectories)")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="starnuma",
        description="StarNUMA (MICRO 2024) reproduction harness",
    )
    verbosity = parser.add_mutually_exclusive_group()
    verbosity.add_argument("-v", "--verbose", action="store_true",
                           help="debug-level progress messages on stderr")
    verbosity.add_argument("-q", "--quiet", action="store_true",
                           help="only warnings and errors on stderr")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiments and workloads")

    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment",
                     choices=sorted(EXPERIMENTS) + ["all"],
                     help="experiment id, or 'all'")
    run.add_argument("--seed", type=int, default=1,
                     help="RNG seed for trace synthesis (default 1)")
    run.add_argument("--phases", type=int, default=12,
                     help="simulated phases per run (default 12)")
    run.add_argument("--warmup", type=int, default=4,
                     help="phases excluded from aggregates (default 4)")
    run.add_argument("--workloads", nargs="+", metavar="NAME",
                     help="restrict to these workloads")
    run.add_argument("--resume", metavar="DIR",
                     help="checkpoint directory: skip experiments already "
                          "completed there, record new completions")
    run.add_argument("--jobs", type=int, default=1, metavar="N",
                     help="run up to N experiments in parallel worker "
                          "processes (default 1: sequential)")
    run.add_argument("--batch-lanes", type=int, default=1, metavar="N",
                     help="evaluate up to N compatible sweep points as one "
                          "stacked fixed point (default 1: per-scenario; "
                          "results are bit-identical either way)")
    run.add_argument("--batch-jobs", type=int, default=1, metavar="N",
                     help="fill batched lanes with N forked workers over "
                          "shared memory (default 1: in-process)")
    _add_obs_arguments(run)

    export = sub.add_parser("export",
                            help="run experiments and write JSON/CSV")
    export.add_argument("--out", metavar="DIR",
                        help="output directory")
    export.add_argument("--experiments", nargs="+", metavar="ID",
                        help="subset of experiment ids (default: all)")
    export.add_argument("--seed", type=int, default=1)
    export.add_argument("--phases", type=int, default=12)
    export.add_argument("--warmup", type=int, default=4)
    export.add_argument("--workloads", nargs="+", metavar="NAME")
    export.add_argument("--resume", metavar="DIR",
                        help="resume a partially completed export in DIR "
                             "(implies --out DIR)")
    export.add_argument("--retries", type=int, default=2, metavar="N",
                        help="retry budget for transient failures "
                             "(default 2)")
    export.add_argument("--run-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="per-experiment wall-clock limit")
    export.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="run up to N experiments in parallel worker "
                             "processes (default 1: sequential)")
    export.add_argument("--batch-lanes", type=int, default=1, metavar="N",
                        help="evaluate up to N compatible sweep points as "
                             "one stacked fixed point (default 1: "
                             "per-scenario; outputs are byte-identical "
                             "either way)")
    export.add_argument("--batch-jobs", type=int, default=1, metavar="N",
                        help="fill batched lanes with N forked workers "
                             "over shared memory (default 1: in-process)")
    _add_obs_arguments(export)

    serve = sub.add_parser(
        "serve",
        help="run the simulation-as-a-service HTTP endpoint",
        description="Expose the experiments over HTTP: POST scenario "
                    "submissions (same schema and bounds as 'starnuma "
                    "run'), stream progress over SSE, fetch result "
                    "JSON. Admission control, deadlines, a "
                    "content-addressed result cache with single-flight "
                    "dedup, and a crash-safe job journal are built in. "
                    "See docs/serve.md.",
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8787,
                       help="TCP port (default 8787; 0 picks a free one)")
    serve.add_argument("--uds", metavar="PATH",
                       help="serve on a Unix domain socket instead of TCP")
    serve.add_argument("--journal", metavar="PATH",
                       default="serve-journal.jsonl",
                       help="crash-safe job journal file "
                            "(default serve-journal.jsonl)")
    serve.add_argument("--cache-dir", metavar="DIR",
                       help="persist results on disk, content-addressed "
                            "(default: memory only)")
    serve.add_argument("--resume", action="store_true",
                       help="replay the journal: re-adopt jobs that were "
                            "running when the last server died, never "
                            "re-run completed or quarantined ones")
    serve.add_argument("--workers", type=int, default=2, metavar="N",
                       help="concurrent job worker processes (default 2)")
    serve.add_argument("--queue", type=int, default=16, metavar="N",
                       help="bounded submission queue; beyond it new "
                            "jobs are shed with 429 (default 16)")
    serve.add_argument("--per-client", type=int, default=4, metavar="N",
                       help="max jobs in flight per client identity "
                            "(default 4)")
    serve.add_argument("--default-deadline", type=float, default=300.0,
                       metavar="SECONDS",
                       help="deadline for submissions that name none "
                            "(default 300)")
    serve.add_argument("--max-deadline", type=float, default=3600.0,
                       metavar="SECONDS",
                       help="ceiling on requested deadlines "
                            "(default 3600)")
    serve.add_argument("--heartbeat-timeout", type=float, default=30.0,
                       metavar="SECONDS",
                       help="kill a job worker silent longer than this "
                            "(default 30)")
    serve.add_argument("--drain-grace", type=float, default=5.0,
                       metavar="SECONDS",
                       help="grace for in-flight jobs on SIGTERM before "
                            "workers are killed resumably (default 5)")
    _add_obs_arguments(serve)

    chaos = sub.add_parser(
        "chaos",
        help="soak the supervised runner against injected faults",
        description="Run a synthetic multi-process sweep with seeded "
                    "worker crashes, hangs, transient errors, and torn "
                    "checkpoint writes, then verify: no hangs, no lost "
                    "or duplicated results, poisoned tasks quarantined, "
                    "and all surviving results byte-identical to the "
                    "fault-free expectation. With --serve, soak the "
                    "HTTP service instead: client disconnects, "
                    "slow-loris, SIGKILL between journal writes, "
                    "resume, overload, and drain. See docs/runner.md "
                    "and docs/serve.md.",
    )
    chaos.add_argument("--serve", action="store_true",
                       help="soak the simulation service instead of the "
                            "bare runner (see docs/serve.md)")
    chaos.add_argument("--scenarios", type=int, default=8, metavar="N",
                       help="steady scenarios in the service soak "
                            "(default 8; --serve only)")
    chaos.add_argument("--burst", type=int, default=12, metavar="N",
                       help="overload burst size in the service soak "
                            "(default 12; --serve only)")
    chaos.add_argument("--tasks", type=int, default=200, metavar="N",
                       help="synthetic tasks to sweep (default 200)")
    chaos.add_argument("--jobs", type=int, default=4, metavar="N",
                       help="worker processes (default 4; needs >= 2)")
    chaos.add_argument("--seed", type=int, default=1,
                       help="fault-injection seed (default 1); the same "
                            "seed injects the same faults every run")
    chaos.add_argument("--crash", type=float, default=0.05, metavar="RATE",
                       help="per-attempt worker os._exit probability "
                            "(default 0.05)")
    chaos.add_argument("--hang", type=float, default=0.03, metavar="RATE",
                       help="per-attempt SIGALRM-immune hang probability "
                            "(default 0.03)")
    chaos.add_argument("--transient", type=float, default=0.10,
                       metavar="RATE",
                       help="per-attempt retryable-error probability "
                            "(default 0.10)")
    chaos.add_argument("--poison", type=float, default=0.02, metavar="RATE",
                       help="fraction of tasks that kill every worker "
                            "they touch (default 0.02)")
    chaos.add_argument("--torn", type=float, default=0.05, metavar="RATE",
                       help="per-write torn-checkpoint probability "
                            "(default 0.05)")
    chaos.add_argument("--heartbeat-timeout", type=float, default=1.0,
                       metavar="SECONDS",
                       help="hang-detection deadline (default 1.0)")
    chaos.add_argument("--max-wall", type=float, default=None,
                       metavar="SECONDS",
                       help="fail the soak if it runs longer than this")
    chaos.add_argument("--out", metavar="DIR",
                       help="persist the checkpoint and "
                            "health-report.json here")
    _add_obs_arguments(chaos)

    obs = sub.add_parser(
        "obs",
        help="inspect an instrumentation trace",
        description="Summarize or validate a trace written by "
                    "'run --obs-trace' / 'export --obs-trace' -- a "
                    "JSONL file or a sqlite store. See "
                    "docs/observability.md and docs/store.md.",
    )
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    summary = obs_sub.add_parser("summary",
                                 help="phase timeline and metric tables")
    summary.add_argument("trace", metavar="PATH",
                         help="JSONL trace file or sqlite store")
    summary.add_argument("--trace-id", metavar="REF", default=None,
                         help="with a sqlite store: summarize only this "
                              "trace (id or label; default: all traces)")
    summary.add_argument("--width", type=int, default=40,
                         help="bar width of the phase timeline "
                              "(default 40)")
    validate = obs_sub.add_parser("validate",
                                  help="check a trace against the schema")
    validate.add_argument("trace", metavar="PATH",
                          help="JSONL trace file")

    store = sub.add_parser(
        "store",
        help="maintain a results & trace database",
        description="Backfill existing artifacts -- JSONL obs traces "
                    "and 'starnuma export' directories -- into one "
                    "embedded sqlite store, then answer questions with "
                    "'starnuma query'. See docs/store.md.",
    )
    store_sub = store.add_subparsers(dest="store_command", required=True)
    ingest = store_sub.add_parser(
        "ingest", help="backfill traces / export dirs into the store")
    ingest.add_argument("paths", nargs="+", metavar="PATH",
                        help="JSONL trace files and/or export directories")
    ingest.add_argument("--db", metavar="DB", required=True,
                        help="store file (created if missing)")
    ingest.add_argument("--label", metavar="NAME",
                        help="label for the ingested sweep/trace "
                             "(single PATH only; default: its name)")
    ingest.add_argument("--batch-size", type=int, metavar="N",
                        default=None,
                        help="rows buffered per flush transaction "
                             "(default 256)")
    info = store_sub.add_parser("info",
                                help="schema versions and table counts")
    info.add_argument("--db", metavar="DB", required=True,
                      help="store file")

    query = sub.add_parser(
        "query",
        help="answer questions from a results & trace store",
        description="Read-side queries over a store built by "
                    "'--obs-trace foo.sqlite' or 'starnuma store "
                    "ingest': exact result tables, degradation curves, "
                    "cross-sweep diffs, top-N regressions, per-phase "
                    "timelines. See docs/store.md.",
    )
    query.add_argument("--db", metavar="DB", required=True,
                       help="store file")
    query.add_argument("--format", choices=["table", "json"],
                       default="table",
                       help="output format (default table)")
    query_sub = query.add_subparsers(dest="query_command", required=True)
    query_sub.add_parser("sweeps", help="list ingested sweeps")
    query_sub.add_parser("traces", help="list stored obs traces")
    table = query_sub.add_parser(
        "table", help="one result table, exactly as exported")
    table.add_argument("experiment", help="experiment id (e.g. fig8a)")
    table.add_argument("--sweep", metavar="REF",
                       help="sweep id or label (default: the only sweep)")
    curve = query_sub.add_parser(
        "curve", help="fault-study degradation curve")
    curve.add_argument("--sweep", metavar="REF")
    curve.add_argument("--experiment", default="fault-study")
    curve.add_argument("--metric", default="speedup_over_baseline")
    curve.add_argument("--workload", metavar="NAME",
                       help="narrow to one workload's curve")
    diff = query_sub.add_parser(
        "diff", help="per-scenario metric diff between two sweeps")
    diff.add_argument("--a", required=True, metavar="REF",
                      help="baseline sweep (id or label)")
    diff.add_argument("--b", required=True, metavar="REF",
                      help="candidate sweep (id or label)")
    diff.add_argument("--experiment", required=True)
    diff.add_argument("--metric", required=True)
    regressions = query_sub.add_parser(
        "regressions", help="top-N relative drops from sweep A to B")
    regressions.add_argument("--a", required=True, metavar="REF")
    regressions.add_argument("--b", required=True, metavar="REF")
    regressions.add_argument("--top", type=int, default=10, metavar="N")
    regressions.add_argument("--experiment", default=None)
    regressions.add_argument("--metric", default=None)
    timeline = query_sub.add_parser(
        "timeline", help="per-phase sim.phase span totals")
    timeline.add_argument("--trace", metavar="REF", default=None,
                          help="trace id or label (default: all traces)")
    migrations = query_sub.add_parser(
        "migrations", help="migration-decision provenance rows")
    migrations.add_argument("--trace", metavar="REF", default=None)
    migrations.add_argument("--event", metavar="NAME", default=None,
                            help="narrow to one migration.* event name")
    migrations.add_argument("--limit", type=int, default=50, metavar="N")

    describe = sub.add_parser("describe",
                              help="print a system configuration")
    describe.add_argument("system", choices=["baseline", "starnuma",
                                             "full-scale"],
                          help="which preset to describe")

    lint = sub.add_parser(
        "lint",
        help="run the project static-analysis pass",
        description="Check the tree against the StarNUMA invariants: "
                    "unit-suffix consistency, determinism, sim purity, "
                    "obs purity, hashable cache keys, config/model "
                    "agreement. See docs/static-analysis.md.",
    )
    lint.add_argument("paths", nargs="*", metavar="PATH",
                      help="files or directories to lint "
                           "(default: src/repro)")
    lint.add_argument("--format", choices=["text", "json", "sarif"],
                      default="text",
                      help="report format (default text; sarif for "
                           "code-scanning upload)")
    lint.add_argument("--changed", metavar="BASE_REF",
                      help="report only findings in files changed since "
                           "BASE_REF (the whole-program analysis still "
                           "covers every file)")
    lint.add_argument("--baseline", metavar="FILE",
                      default=DEFAULT_BASELINE,
                      help=f"baseline file of accepted findings "
                           f"(default {DEFAULT_BASELINE}; a missing file "
                           f"is an empty baseline)")
    lint.add_argument("--no-baseline", action="store_true",
                      help="report every finding, ignoring the baseline")
    lint.add_argument("--update-baseline", action="store_true",
                      help="accept all current findings into the baseline "
                           "file and exit 0")
    lint.add_argument("--rules", nargs="+", metavar="RULE",
                      help="run only these rules")
    lint.add_argument("--list-rules", action="store_true",
                      help="list available rules and exit")
    return parser


def _cmd_list() -> int:
    print("experiments:")
    for name in sorted(EXPERIMENTS):
        print(f"  {name}")
    print("workloads:")
    for name in WORKLOADS:
        profile = WORKLOADS[name]
        print(f"  {name:9s} {profile.family:13s} "
              f"{profile.footprint_gb:6.0f} GB  MPKI {profile.mpki}")
    return 0


def _validate_common(args: argparse.Namespace) -> Optional[str]:
    """One-line complaint for invalid run/export parameters, else None.

    The bounds themselves live in
    :func:`repro.serve.scenario.validate_run_params` -- the single
    source of truth shared with ``POST /v1/jobs`` submissions.
    """
    from repro.serve.scenario import validate_run_params

    message = validate_run_params(args.seed, args.phases, args.warmup,
                                  args.workloads, WORKLOADS)
    if message is not None:
        # The shared messages name bare parameters; these are flags here.
        for name in ("seed", "phases", "warmup"):
            if message.startswith(name):
                return "--" + message
        return message
    if getattr(args, "jobs", 1) < 1:
        return f"--jobs must be >= 1 (got {args.jobs})"
    if getattr(args, "batch_lanes", 1) < 1:
        return f"--batch-lanes must be >= 1 (got {args.batch_lanes})"
    if getattr(args, "batch_jobs", 1) < 1:
        return f"--batch-jobs must be >= 1 (got {args.batch_jobs})"
    return None


def _run_experiment(name: str, context: ExperimentContext):
    with OBS.span("experiment", experiment=name):
        return EXPERIMENTS[name](context)


def _print_result(name: str, result) -> None:
    print(result.table)
    if name == "fig8":
        from repro.metrics.ascii_chart import speedup_chart

        items = [(str(row[0]), float(row[1]))
                 for row in result.speedup.rows]
        print()
        print(speedup_chart(items,
                            title="StarNUMA (T16) speedup over "
                                  "baseline:"))
    print()


def _cmd_run(args: argparse.Namespace) -> int:
    context = ExperimentContext(
        seed=args.seed,
        n_phases=args.phases,
        warmup_phases=args.warmup,
        workloads=args.workloads,
        batch_lanes=args.batch_lanes,
        batch_jobs=args.batch_jobs,
    )
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [
        args.experiment
    ]
    if args.resume is None and args.jobs == 1:
        for name in names:
            _print_result(name, _run_experiment(name, context))
        return 0

    import contextlib
    import io
    from pathlib import Path

    from repro.experiments.export import sweep_params
    from repro.runner import (CheckpointMismatchError, SweepCheckpoint,
                              SweepDrained, SweepRunner)

    checkpoint = None
    if args.resume is not None:
        checkpoint = SweepCheckpoint(Path(args.resume) / "checkpoint.json",
                                     sweep_params(context, names))
        try:
            checkpoint.load()
        except CheckpointMismatchError as exc:
            _log.error(f"error: {exc}")
            return 2
        if checkpoint.corrupt_quarantined is not None:
            _log.warning(
                f"checkpoint was corrupt; quarantined it to "
                f"{checkpoint.corrupt_quarantined} and starting fresh")

    if args.jobs == 1:

        def run_one(name: str) -> None:
            _print_result(name, _run_experiment(name, context))
            return None

    else:
        # Parallel workers render off-screen and return the text; the
        # parent prints outcomes in submission order, so tables never
        # interleave and the output order matches a sequential run.
        def run_one(name: str) -> dict:
            rendered = io.StringIO()
            with contextlib.redirect_stdout(rendered):
                _print_result(name, _run_experiment(name, context))
            return {"rendered": rendered.getvalue()}

    runner = SweepRunner(
        run_one, checkpoint=checkpoint, jobs=args.jobs,
        on_event=_log.info,
    )
    try:
        outcomes = runner.run(names)
    except SweepDrained as drained:
        where = args.resume or "DIR"
        _log.warning(f"{drained}; rerun with --resume {where} to finish")
        return 130
    if args.jobs > 1:
        for outcome in outcomes:
            if outcome.status == "ok" and outcome.payload:
                print(outcome.payload["rendered"], end="")
    failed = [outcome for outcome in outcomes if not outcome.succeeded]
    if failed:
        where = args.resume or "DIR"
        _log.warning(f"{len(failed)} experiment(s) failed; rerun with "
                     f"--resume {where} to retry them")
        return 1
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from repro.experiments.export import export_all
    from repro.runner import (CheckpointMismatchError, SweepDrained,
                              SweepError)

    out = args.resume or args.out
    if out is None:
        _log.error("error: export needs --out DIR (or --resume DIR)")
        return 2
    if args.retries < 0:
        _log.error(f"error: --retries must be >= 0 (got {args.retries})")
        return 2
    if args.run_timeout is not None and args.run_timeout <= 0:
        _log.error(f"error: --run-timeout must be > 0 "
                   f"(got {args.run_timeout})")
        return 2
    if args.resume and args.out and args.resume != args.out:
        _log.error("error: --out and --resume point at different "
                   "directories")
        return 2

    context = ExperimentContext(
        seed=args.seed, n_phases=args.phases, warmup_phases=args.warmup,
        workloads=args.workloads,
        batch_lanes=args.batch_lanes, batch_jobs=args.batch_jobs,
    )
    try:
        written = export_all(
            out, context, args.experiments,
            resume=args.resume is not None,
            max_retries=args.retries,
            timeout_s=args.run_timeout,
            jobs=args.jobs,
            on_event=_log.info,
        )
    except KeyError as exc:
        _log.error(f"error: {exc.args[0]}")
        return 2
    except CheckpointMismatchError as exc:
        _log.error(f"error: {exc}")
        return 2
    except SweepDrained as drained:
        _log.warning(f"{drained}; rerun with --resume {out} to finish")
        return 130
    except SweepError as exc:
        _log.warning(f"{exc}; completed experiments are checkpointed -- "
                     f"rerun with --resume {out} to retry the rest")
        return 1
    print(f"wrote {len(written)} result files to {out}")
    return 0


def _serve_run_scenario(scenario):
    """Run one service submission (executes inside a job worker)."""
    from repro.experiments.export import _flatten, result_to_dict

    context = ExperimentContext(
        seed=scenario.seed, n_phases=scenario.phases,
        warmup_phases=scenario.warmup,
        workloads=list(scenario.workloads) if scenario.workloads else None,
    )
    outcome = _run_experiment(scenario.experiment, context)
    return {
        "experiment": scenario.experiment,
        "results": [result_to_dict(result)
                    for result in _flatten(outcome)],
    }


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import Catalog, ServeApp, ServePolicy
    from repro.serve.app import serve_forever

    policy = ServePolicy(
        max_workers=args.workers, max_queue=args.queue,
        max_inflight_per_client=args.per_client,
        default_deadline_s=args.default_deadline,
        max_deadline_s=args.max_deadline,
        heartbeat_timeout_s=args.heartbeat_timeout,
        drain_grace_s=args.drain_grace,
    )
    complaint = policy.validate()
    if complaint is not None:
        _log.error(f"error: {complaint}")
        return 2
    try:
        app = ServeApp(
            run_scenario=_serve_run_scenario,
            catalog=Catalog.of(EXPERIMENTS, WORKLOADS),
            journal_path=args.journal, cache_dir=args.cache_dir,
            resume=args.resume, policy=policy,
            host=args.host, port=args.port, uds=args.uds,
        )
    except Exception as exc:  # noqa: BLE001 -- bad journal, bad socket
        _log.error(f"error: {exc}")
        return 2
    if app.adopted is not None:
        _log.info(f"resumed from {args.journal}: "
                  f"{app.adopted.get('completed', 0)} completed, "
                  f"{app.adopted.get('requeued', 0)} re-queued, "
                  f"{app.adopted.get('quarantined', 0)} quarantined")
    _log.info("serving; SIGTERM drains gracefully, "
              "SIGKILL is safe (journaled)")
    serve_forever(app)
    print(f"serve: drained cleanly; journal at {args.journal}")
    return 0


def _cmd_serve_chaos(args: argparse.Namespace) -> int:
    from repro.serve.chaos import ServeChaosConfig, run_serve_chaos

    config = ServeChaosConfig(
        seed=args.seed, n_scenarios=args.scenarios, burst=args.burst,
        max_wall_s=args.max_wall if args.max_wall is not None else 120.0,
    )
    complaint = config.validate()
    if complaint is not None:
        _log.error(f"error: {complaint}")
        return 2
    report = run_serve_chaos(config, out_dir=args.out,
                             on_event=_log.info)
    counts = report.counts
    print(f"serve chaos soak: {report.n_scenarios} scenarios, "
          f"seed {report.seed}, SIGKILL after "
          f"{report.kill_after_appends} journal appends")
    print(f"  wall time     {report.wall_s:.1f}s")
    print(f"  verified      {counts.get('completed_verified', 0)} "
          f"byte-identical results")
    print(f"  cache/dedup   {counts.get('cached_repeats', 0)} cached "
          f"repeats, {counts.get('phase1_coalesced', 0)} coalesced")
    print(f"  overload      {counts.get('sheds', 0)} shed with 429")
    print(f"  faults        {counts.get('sigkills', 0)} SIGKILL, "
          f"{counts.get('sse_disconnects', 0)} mid-stream disconnects")
    print(f"  resume        adopted {report.adopted}")
    if args.out:
        print(f"  artifacts     {args.out}/serve-chaos-report.json")
    if report.passed:
        print("serve chaos soak PASSED: zero lost, duplicated, or torn "
              "results; resume, quarantine, and shedding all held")
        return 0
    for problem in report.problems:
        print(f"  problem: {problem}")
    print(f"serve chaos soak FAILED with {len(report.problems)} "
          f"problem(s)")
    return 1


def _cmd_chaos(args: argparse.Namespace) -> int:
    if args.serve:
        return _cmd_serve_chaos(args)

    from repro.runner import ChaosConfig, run_chaos

    config = ChaosConfig(seed=args.seed, crash=args.crash, hang=args.hang,
                         transient=args.transient, poison=args.poison,
                         torn_write=args.torn)
    complaint = config.validate()
    if complaint is None and args.tasks < 2:
        complaint = f"--tasks must be >= 2 (got {args.tasks})"
    if complaint is None and args.jobs < 2:
        complaint = (f"--jobs must be >= 2: worker-killing faults need "
                     f"workers (got {args.jobs})")
    if complaint is None and args.heartbeat_timeout <= 0:
        complaint = (f"--heartbeat-timeout must be > 0 "
                     f"(got {args.heartbeat_timeout})")
    if complaint is None and args.max_wall is not None and args.max_wall <= 0:
        complaint = f"--max-wall must be > 0 (got {args.max_wall})"
    if complaint is not None:
        _log.error(f"error: {complaint}")
        return 2

    report = run_chaos(
        args.tasks, args.jobs, config=config,
        heartbeat_timeout_s=args.heartbeat_timeout,
        max_wall_s=args.max_wall, out_dir=args.out,
        on_event=_log.info,
    )
    health = report.health
    statuses = ", ".join(f"{status} {count}" for status, count
                         in sorted(report.statuses.items()))
    print(f"chaos soak: {report.n_tasks} tasks x {report.jobs} jobs, "
          f"seed {report.seed}")
    print(f"  wall time    {report.wall_s:.1f}s")
    print(f"  statuses     {statuses}")
    print(f"  supervision  crashes {health.get('crashes_detected', 0)}, "
          f"hangs {health.get('hangs_detected', 0)}, "
          f"requeues {health.get('tasks_requeued', 0)}, "
          f"restarts {health.get('worker_restarts', 0)}")
    print(f"  torn writes  {report.torn_writes}")
    if report.quarantined:
        print(f"  quarantined  {', '.join(report.quarantined)}")
    if args.out:
        print(f"  artifacts    {args.out}/health-report.json")
    if report.passed:
        print("chaos soak PASSED: no hangs, no lost or duplicated "
              "results, surviving outputs byte-identical to fault-free")
        return 0
    for problem in report.problems:
        print(f"  problem: {problem}")
    print(f"chaos soak FAILED with {len(report.problems)} problem(s)")
    return 1


def _cmd_obs(args: argparse.Namespace) -> int:
    from repro.obs import iter_trace, render_summary, summarize_records, \
        validate_trace
    from repro.obs.storefmt import is_sqlite_path

    try:
        if args.obs_command == "validate":
            if is_sqlite_path(args.trace):
                _log.error(f"error: {args.trace} is a sqlite store; "
                           f"validate applies to JSONL traces (inspect "
                           f"a store with 'starnuma store info')")
                return 2
            problems = validate_trace(args.trace)
            if problems:
                for line_number, problem in problems:
                    print(f"{args.trace}:{line_number}: {problem}")
                print(f"{len(problems)} problem(s)")
                return 1
            print(f"{args.trace}: valid obs trace")
            return 0
        if args.width < 1:
            _log.error(f"error: --width must be >= 1 (got {args.width})")
            return 2
        if is_sqlite_path(args.trace):
            # Store-backed summary: grouped index lookups, no re-fold of
            # the raw record log (see docs/store.md).
            from repro.store import (QueryError, StoreSchemaError,
                                     open_store, summarize_store)

            try:
                conn = open_store(args.trace, readonly=True)
            except StoreSchemaError as exc:
                _log.error(f"error: {exc}")
                return 2
            try:
                summary = summarize_store(conn, trace=args.trace_id)
            except QueryError as exc:
                _log.error(f"error: {exc}")
                return 2
            finally:
                conn.close()
        else:
            summary = summarize_records(iter_trace(args.trace))
    except FileNotFoundError:
        _log.error(f"error: no such trace: {args.trace}")
        return 2
    print(render_summary(summary, width=args.width))
    return 0


def _render_query(headers, rows, output_format: str) -> str:
    """Render one (headers, rows) query result as table or JSON."""
    if output_format == "json":
        import json

        return json.dumps(
            {"headers": list(headers),
             "rows": [list(row) for row in rows]},
            indent=2,
        )
    from repro.metrics.report import format_table

    if not rows:
        return "(no rows)"
    rendered = [
        tuple("" if cell is None else cell for cell in row) for row in rows
    ]
    return format_table(tuple(headers), rendered)


def _cmd_store(args: argparse.Namespace) -> int:
    from repro.obs.storefmt import DEFAULT_BATCH_SIZE, schema_versions
    from repro.store import (StoreIngestError, StoreSchemaError,
                             StoreWriter, index_traces, ingest_path,
                             open_store)
    from pathlib import Path

    try:
        if args.store_command == "info":
            conn = open_store(args.db, readonly=True)
            try:
                for key, value in sorted(schema_versions(conn).items()):
                    print(f"{key:14s} {value}")
                for tbl in ("sweeps", "runs", "run_rows", "run_metrics",
                            "traces", "obs_records", "phase_metrics",
                            "migration_decisions"):
                    exists = conn.execute(
                        "SELECT 1 FROM sqlite_master WHERE type = 'table' "
                        "AND name = ?", (tbl,)).fetchone()
                    count = conn.execute(
                        f"SELECT COUNT(*) FROM {tbl}"
                    ).fetchone()[0] if exists else 0
                    print(f"{tbl:20s} {count} rows")
            finally:
                conn.close()
            return 0

        if args.label is not None and len(args.paths) > 1:
            _log.error("error: --label applies to a single PATH")
            return 2
        if args.batch_size is not None and args.batch_size < 1:
            _log.error(f"error: --batch-size must be >= 1 "
                       f"(got {args.batch_size})")
            return 2
        batch_size = args.batch_size or DEFAULT_BATCH_SIZE
        with StoreWriter(args.db, batch_size=batch_size) as writer:
            for path in args.paths:
                kind, row_id = ingest_path(writer, Path(path),
                                           label=args.label)
                print(f"ingested {path} -> {kind} {row_id}")
            writer.flush()
            indexed = index_traces(writer.connection)
        if indexed:
            print(f"indexed {len(indexed)} live-sink trace(s)")
        return 0
    except FileNotFoundError as exc:
        _log.error(f"error: {exc}")
        return 2
    except (StoreIngestError, StoreSchemaError) as exc:
        _log.error(f"error: {exc}")
        return 2


def _cmd_query(args: argparse.Namespace) -> int:
    import repro.store as store
    from repro.store import QueryError, StoreSchemaError, open_store

    try:
        conn = open_store(args.db, readonly=True)
    except (FileNotFoundError, StoreSchemaError) as exc:
        _log.error(f"error: {exc}")
        return 2
    try:
        if args.query_command == "sweeps":
            headers, rows = store.list_sweeps(conn)
        elif args.query_command == "traces":
            headers, rows = store.list_traces(conn)
        elif args.query_command == "table":
            result = store.run_table(conn, args.sweep, args.experiment)
            if args.format == "json":
                import json

                print(json.dumps(result, indent=2))
                return 0
            headers = tuple(result["headers"])
            rows = [tuple(row) for row in result["rows"]]
        elif args.query_command == "curve":
            headers, rows = store.degradation_curve(
                conn, args.sweep, experiment=args.experiment,
                metric=args.metric, workload=args.workload)
        elif args.query_command == "diff":
            headers, rows = store.cross_sweep_diff(
                conn, args.a, args.b, args.experiment, args.metric)
        elif args.query_command == "regressions":
            headers, rows = store.top_regressions(
                conn, args.a, args.b, top=args.top,
                experiment=args.experiment, metric=args.metric)
        elif args.query_command == "timeline":
            headers, rows = store.phase_timeline(conn, args.trace)
        else:
            headers, rows = store.migration_provenance(
                conn, args.trace, name=args.event, limit=args.limit)
    except QueryError as exc:
        _log.error(f"error: {exc}")
        return 2
    finally:
        conn.close()
    print(_render_query(headers, rows, args.format))
    return 0


def _cmd_describe(args: argparse.Namespace) -> int:
    from repro.config import baseline_config, full_scale_config, \
        starnuma_config
    from repro.topology import Topology
    from repro.topology.model import LinkKind

    config = {
        "baseline": baseline_config,
        "starnuma": starnuma_config,
        "full-scale": full_scale_config,
    }[args.system]()
    topology = Topology(config)

    print(f"system: {config.name}")
    print(f"  {config.n_chassis} chassis x {config.sockets_per_chassis} "
          f"sockets x {config.cores_per_socket} cores = "
          f"{config.n_cores} cores")
    core = config.core
    print(f"  core: {core.frequency_ghz:.1f} GHz, {core.issue_width}-wide, "
          f"{core.rob_entries}-entry ROB, "
          f"L1 {core.l1_kb} KB / L2 {core.l2_kb} KB / "
          f"LLC {core.llc_kb_per_core} KB/core "
          f"({core.llc_latency_cycles} cycles)")
    print(f"  memory: {config.memory_per_socket_gb:.0f} GB/socket"
          + (f" + {config.pool_memory_gb:.0f} GB pool"
             if config.pool.enabled else " (no pool)"))
    latency = config.latency
    print(f"  latency ns: local {latency.local_ns:.0f} / 1-hop "
          f"{latency.intra_chassis_ns:.0f} / 2-hop "
          f"{latency.inter_chassis_ns:.0f}"
          + (f" / pool {latency.pool_ns:.0f} "
             f"(incl. {config.pool.directory_margin_ns:.0f} ns MHD "
             f"directory)" if config.pool.enabled else ""))
    counts = {}
    for link in topology.links.values():
        counts.setdefault(link.kind, [0, link.capacity_gbps])
        counts[link.kind][0] += 1
    print("  links:")
    for kind in (LinkKind.UPI, LinkKind.NUMALINK, LinkKind.CXL,
                 LinkKind.DRAM):
        if kind in counts:
            n, capacity = counts[kind]
            print(f"    {kind.value:9s} x{n:<3d} "
                  f"{capacity:.1f} GB/s per direction")
    migration = config.migration
    print(f"  migration: tracker {migration.tracker.name}, region "
          f"{migration.region_bytes >> 10} KB, limit "
          f"{migration.migration_limit_pages} pages/phase")
    return 0


def _changed_files(base_ref: str) -> Optional[set]:
    """Absolute paths of files changed since ``base_ref`` (via git)."""
    import subprocess

    try:
        proc = subprocess.run(
            ["git", "diff", "--name-only", base_ref, "--"],
            capture_output=True, text=True, check=True,
        )
    except (OSError, subprocess.CalledProcessError):
        return None
    from pathlib import Path

    return {str(Path(line).resolve())
            for line in proc.stdout.splitlines() if line.strip()}


def _cmd_lint(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.lint import (Baseline, BaselineError, LintReport,
                            build_project, create_rules, render_json,
                            render_sarif, render_text, rule_descriptions,
                            run_lint)

    if args.list_rules:
        for name, description in sorted(rule_descriptions().items()):
            print(f"{name:14s} {description}")
        return 0

    paths = args.paths or ["src/repro"]
    for path in paths:
        if not Path(path).exists():
            _log.error(f"error: no such path: {path}")
            return 2

    try:
        rules = create_rules(args.rules)
    except KeyError as exc:
        _log.error(f"error: {exc.args[0]}")
        return 2

    project, parse_errors = build_project(paths)
    baseline_path = Path(args.baseline)

    if args.update_baseline:
        report = run_lint(project, rules=rules,
                          extra_findings=parse_errors)
        Baseline.from_findings(report.findings, project).save(baseline_path)
        print(f"wrote {len(report.findings)} finding(s) to {baseline_path}")
        return 0

    baseline = None
    if not args.no_baseline:
        try:
            baseline = Baseline.load(baseline_path)
        except BaselineError as exc:
            _log.error(f"error: {exc}")
            return 2
    report = run_lint(project, rules=rules, baseline=baseline,
                      extra_findings=parse_errors)
    if args.changed:
        # Diff-aware reporting: the analysis above still saw the whole
        # program (call graphs do not respect diff hunks); only the
        # *reporting* narrows to files touched since BASE_REF.
        changed = _changed_files(args.changed)
        if changed is None:
            _log.error(f"error: git diff against {args.changed!r} failed")
            return 2
        report = LintReport(
            findings=[finding for finding in report.findings
                      if str(Path(finding.path).resolve()) in changed],
            suppressed=report.suppressed,
            n_files=report.n_files,
            rule_names=report.rule_names,
        )
    if args.format == "json":
        rendered = render_json(report)
    elif args.format == "sarif":
        rendered = render_sarif(report)
    else:
        rendered = render_text(report)
    print(rendered)
    return 0 if report.is_clean else 1


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "list":
        return _cmd_list()
    if args.command == "export":
        return _cmd_export(args)
    if args.command == "obs":
        return _cmd_obs(args)
    if args.command == "store":
        return _cmd_store(args)
    if args.command == "query":
        return _cmd_query(args)
    if args.command == "describe":
        return _cmd_describe(args)
    if args.command == "lint":
        return _cmd_lint(args)
    if args.command == "chaos":
        return _cmd_chaos(args)
    if args.command == "serve":
        return _cmd_serve(args)
    return _cmd_run(args)


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    setup_logging(verbose=args.verbose, quiet=args.quiet)
    try:
        if args.command in ("run", "export", "chaos", "serve"):
            if args.command not in ("chaos", "serve"):
                message = _validate_common(args)
                if message is not None:
                    _log.error(f"error: {message}")
                    return 2
            if args.obs_trace:
                from repro.obs import configure as obs_configure
                from repro.obs import shutdown as obs_shutdown

                obs_configure(trace_path=args.obs_trace, level=args.obs_level)
                try:
                    return _dispatch(args)
                finally:
                    obs_shutdown()
                    _log.info(f"obs trace written to {args.obs_trace}")
        return _dispatch(args)
    except BrokenPipeError:
        # Downstream closed the pipe (e.g. `starnuma obs summary | head`);
        # detach stdout so the interpreter's shutdown flush stays quiet.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
