"""Analytic estimate of coherence block-transfer activity.

The phase-level timing model cannot replay every block's MESI state, so it
estimates, per page class, what fraction of LLC misses are satisfied by a
cache-to-cache transfer instead of a memory fetch. A transfer happens when
the requested block is dirty in another socket's LLC, which requires (a)
the page to be write-shared and (b) the last writer to be a different
socket with the block still resident.

For a page with ``k`` active sharers and per-access write fraction ``w``,
the probability that the most recent write to a block came from a *other*
socket is ``w_effective * (k - 1) / k`` under symmetric sharing, where
``w_effective = w * (2 - w)`` captures that both read-after-remote-write
and write-after-remote-anything interact with a dirty or owned copy. A
workload-level ``coupling`` factor scales for block residency (the owner
may have evicted the block) and for temporal clustering of accesses; it is
the one fitted constant of the coherence model, chosen so that widely
write-shared workloads see block transfers on roughly 10% of their misses,
the level the paper reports (Section V-A).
"""

from __future__ import annotations

from dataclasses import dataclass

#: Default residency/clustering factor; see module docstring.
DEFAULT_COUPLING = 0.22


@dataclass(frozen=True)
class SharingModel:
    """Block-transfer probability model for one workload."""

    coupling: float = DEFAULT_COUPLING

    def __post_init__(self) -> None:
        if not 0.0 <= self.coupling <= 1.0:
            raise ValueError(f"coupling must be in [0, 1], got {self.coupling}")

    def write_sharing_intensity(self, write_fraction: float) -> float:
        """Probability an access interacts with dirty state, given writes."""
        if not 0.0 <= write_fraction <= 1.0:
            raise ValueError(
                f"write fraction must be in [0, 1], got {write_fraction}"
            )
        return write_fraction * (2.0 - write_fraction)

    def block_transfer_fraction(self, sharers: int,
                                write_fraction: float) -> float:
        """Fraction of misses to this page class served cache-to-cache.

        Pages with a single sharer never trigger transfers; read-only pages
        (``write_fraction == 0``) never create dirty remote copies.
        """
        if sharers < 1:
            raise ValueError(f"sharers must be >= 1, got {sharers}")
        if sharers == 1:
            return 0.0
        intensity = self.write_sharing_intensity(write_fraction)
        remote_writer = (sharers - 1) / sharers
        return min(1.0, self.coupling * intensity * remote_writer)

    def directory_transaction_interval_ns(self, transfers_per_second: float) -> float:
        """Mean time between coherence transactions at one directory.

        The paper observes the pool directory handling a transaction every
        ~100 ns on average (every ~50 cycles for BFS), which it uses to
        argue software coherence is untenable. This helper inverts a rate
        into that interval for reporting.
        """
        if transfers_per_second < 0:
            raise ValueError("rate must be >= 0")
        if transfers_per_second == 0:
            return float("inf")
        return 1e9 / transfers_per_second
