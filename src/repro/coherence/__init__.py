"""Directory-based MESI coherence substrate.

The memory pool is actively shared by all sockets, so its address range
must be kept coherent (Section III-C). Directory state is distributed with
the address space: pages homed at a socket use that socket's directory
slice and complete socket-to-socket transfers with the classic 3-hop
optimization; pages homed at the pool complete transfers in 4 hops via the
pool, which -- counter-intuitively -- is *faster* on average (200 ns vs
333 ns of network) because it avoids cross-chassis leg traversals.

Two levels of detail:

* :class:`Directory` -- a functional MESI directory that tracks per-block
  owner/sharer state and reports the transfer each miss triggers. Used by
  tests and the detailed replay path.
* :class:`SharingModel` -- the analytic estimate of the block-transfer
  fraction used by the phase-level timing model.
"""

from repro.coherence.directory import (
    CoherenceEvent,
    CoherenceState,
    Directory,
    TransferKind,
)
from repro.coherence.transfers import SharingModel

__all__ = [
    "CoherenceEvent",
    "CoherenceState",
    "Directory",
    "SharingModel",
    "TransferKind",
]
