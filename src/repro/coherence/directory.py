"""Functional directory-based MESI protocol model."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Set

from repro.topology.model import POOL_LOCATION


class CoherenceState(enum.Enum):
    MODIFIED = "M"
    EXCLUSIVE = "E"
    SHARED = "S"
    INVALID = "I"


class TransferKind(enum.Enum):
    """How a directory-visible miss was satisfied."""

    MEMORY = "memory"            # fetched from the home's DRAM
    CACHE_3HOP = "cache-3hop"    # owner -> requester (socket home)
    CACHE_4HOP = "cache-4hop"    # owner -> pool -> requester (pool home)


@dataclass(frozen=True)
class CoherenceEvent:
    """Outcome of one directory transaction."""

    transfer: TransferKind
    #: Socket that supplied the block from its cache, if any.
    owner: Optional[int]
    #: Sockets whose cached copies were invalidated by this transaction.
    invalidated: FrozenSet[int]

    @property
    def is_block_transfer(self) -> bool:
        return self.transfer is not TransferKind.MEMORY


@dataclass
class _Entry:
    state: CoherenceState = CoherenceState.INVALID
    owner: Optional[int] = None
    sharers: Set[int] = field(default_factory=set)


@dataclass
class DirectoryStats:
    """Transaction counters of one directory slice."""

    transactions: int = 0
    memory_fetches: int = 0
    cache_transfers: int = 0
    invalidations: int = 0


class Directory:
    """MESI directory slice homing a set of cache blocks.

    ``home`` is a socket id or :data:`POOL_LOCATION`; it determines
    whether cache-to-cache transfers complete via the 3-hop or the 4-hop
    (pool) path. The directory tracks which sockets cache each block and in
    which state; requesters are socket ids (per-socket LLCs are the
    coherence endpoints, matching the paper's per-socket shared LLC).
    """

    def __init__(self, home: int):
        self.home = home
        self.stats = DirectoryStats()
        self._entries: Dict[int, _Entry] = {}

    @property
    def is_pool_home(self) -> bool:
        return self.home == POOL_LOCATION

    def _cache_transfer_kind(self) -> TransferKind:
        if self.is_pool_home:
            return TransferKind.CACHE_4HOP
        return TransferKind.CACHE_3HOP

    def _entry(self, block: int) -> _Entry:
        return self._entries.setdefault(block, _Entry())

    def state_of(self, block: int) -> CoherenceState:
        entry = self._entries.get(block)
        return entry.state if entry else CoherenceState.INVALID

    def sharers_of(self, block: int) -> FrozenSet[int]:
        entry = self._entries.get(block)
        return frozenset(entry.sharers) if entry else frozenset()

    def read(self, block: int, requester: int) -> CoherenceEvent:
        """Handle a read miss on ``block`` from ``requester``'s LLC."""
        entry = self._entry(block)
        self.stats.transactions += 1

        if entry.state is CoherenceState.INVALID:
            entry.state = CoherenceState.EXCLUSIVE
            entry.owner = requester
            entry.sharers = {requester}
            self.stats.memory_fetches += 1
            return CoherenceEvent(TransferKind.MEMORY, None, frozenset())

        if requester in entry.sharers and entry.state in (
            CoherenceState.SHARED, CoherenceState.EXCLUSIVE,
            CoherenceState.MODIFIED,
        ):
            # The directory only sees LLC misses; a "read" for a block the
            # requester already shares means its copy was silently dropped.
            entry.sharers.discard(requester)

        if entry.state in (CoherenceState.MODIFIED, CoherenceState.EXCLUSIVE):
            owner = entry.owner
            assert owner is not None
            entry.state = CoherenceState.SHARED
            entry.sharers.add(owner)
            entry.sharers.add(requester)
            entry.owner = None
            if owner == requester:
                self.stats.memory_fetches += 1
                return CoherenceEvent(TransferKind.MEMORY, None, frozenset())
            self.stats.cache_transfers += 1
            return CoherenceEvent(self._cache_transfer_kind(), owner,
                                  frozenset())

        # SHARED: the home's memory copy is clean; fetch from memory.
        entry.sharers.add(requester)
        self.stats.memory_fetches += 1
        return CoherenceEvent(TransferKind.MEMORY, None, frozenset())

    def write(self, block: int, requester: int) -> CoherenceEvent:
        """Handle a write (RFO) miss on ``block`` from ``requester``'s LLC."""
        entry = self._entry(block)
        self.stats.transactions += 1

        if entry.state is CoherenceState.INVALID:
            entry.state = CoherenceState.MODIFIED
            entry.owner = requester
            entry.sharers = {requester}
            self.stats.memory_fetches += 1
            return CoherenceEvent(TransferKind.MEMORY, None, frozenset())

        invalidated = frozenset(entry.sharers - {requester})
        self.stats.invalidations += len(invalidated)

        supplied_by: Optional[int] = None
        if entry.state in (CoherenceState.MODIFIED, CoherenceState.EXCLUSIVE):
            if entry.owner != requester:
                supplied_by = entry.owner

        entry.state = CoherenceState.MODIFIED
        entry.owner = requester
        entry.sharers = {requester}

        if supplied_by is not None:
            self.stats.cache_transfers += 1
            return CoherenceEvent(self._cache_transfer_kind(), supplied_by,
                                  invalidated)
        self.stats.memory_fetches += 1
        return CoherenceEvent(TransferKind.MEMORY, None, invalidated)

    def evict(self, block: int, socket: int) -> None:
        """Note that ``socket`` dropped its copy of ``block``."""
        entry = self._entries.get(block)
        if entry is None:
            return
        entry.sharers.discard(socket)
        if entry.owner == socket:
            entry.owner = None
            entry.state = (CoherenceState.SHARED if entry.sharers
                           else CoherenceState.INVALID)
        elif not entry.sharers:
            entry.state = CoherenceState.INVALID
