"""StarNUMA reproduction library.

A trace-driven simulation of *StarNUMA: Mitigating NUMA Challenges with
Memory Pooling* (MICRO 2024): a 16-socket hierarchical NUMA system
extended with a CXL-attached, coherently shared memory pool that homes
"vagabond" pages -- pages actively shared by many sockets that have no
good socket-local placement.

Quickstart::

    from repro import ExperimentContext, baseline_config, starnuma_config

    context = ExperimentContext(seed=1)
    base = context.baseline_result("bfs")
    star = context.run(starnuma_config(), "bfs")
    print(star.speedup_over(base))

See DESIGN.md for the system inventory, EXPERIMENTS.md for the
paper-versus-measured record, and ``examples/`` for runnable scenarios.
"""

from repro.config import (
    BandwidthConfig,
    LatencyConfig,
    MigrationConfig,
    PoolConfig,
    SystemConfig,
    TrackerKind,
    baseline_config,
    full_scale_config,
    scaled_config,
    starnuma_config,
    with_double_bandwidth,
    with_half_pool_bandwidth,
    with_iso_bandwidth,
    with_pool_capacity_fraction,
    with_pool_latency_penalty,
)
from repro.experiments import EXPERIMENTS, ExperimentContext, ExperimentResult
from repro.sim import SimulationResult, SimulationSetup, Simulator
from repro.topology import AccessType, Topology
from repro.workloads import (
    WORKLOADS,
    WorkloadProfile,
    all_workloads,
    build_population,
    get_workload,
)

__version__ = "1.0.0"

__all__ = [
    "AccessType",
    "BandwidthConfig",
    "EXPERIMENTS",
    "ExperimentContext",
    "ExperimentResult",
    "LatencyConfig",
    "MigrationConfig",
    "PoolConfig",
    "SimulationResult",
    "SimulationSetup",
    "Simulator",
    "SystemConfig",
    "Topology",
    "TrackerKind",
    "WORKLOADS",
    "WorkloadProfile",
    "all_workloads",
    "baseline_config",
    "build_population",
    "full_scale_config",
    "get_workload",
    "scaled_config",
    "starnuma_config",
    "with_double_bandwidth",
    "with_half_pool_bandwidth",
    "with_iso_bandwidth",
    "with_pool_capacity_fraction",
    "with_pool_latency_penalty",
]
