"""Page placement: the page map, first-touch policy, and pool capacity.

Initial placement follows the first-touch policy (Section IV-C): a page is
homed at the socket that first accesses it. The pool's usable capacity is
limited to a fraction of each workload's footprint (20% by default, 1/17
for the socket-equivalent pool of Fig. 12), enforced by
:class:`PoolCapacityManager`.
"""

from repro.placement.pagemap import PageMap, first_touch_placement
from repro.placement.capacity import PoolCapacityManager

__all__ = ["PageMap", "PoolCapacityManager", "first_touch_placement"]
