"""The page-to-location map and first-touch initialization."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.topology.model import POOL_LOCATION


class PageMap:
    """Location of every page: a socket id, or the pool.

    Backed by a compact int16 numpy array so the timing model can classify
    millions of accesses with vectorized arithmetic.
    """

    def __init__(self, locations: np.ndarray, n_sockets: int,
                 has_pool: bool):
        locations = np.asarray(locations, dtype=np.int16)
        if locations.ndim != 1:
            raise ValueError("page map must be one-dimensional")
        self._check_values(locations, n_sockets, has_pool)
        self.locations = locations
        self.n_sockets = n_sockets
        self.has_pool = has_pool

    @staticmethod
    def _check_values(locations: np.ndarray, n_sockets: int,
                      has_pool: bool) -> None:
        if locations.size == 0:
            return
        low, high = locations.min(), locations.max()
        if high >= n_sockets:
            raise ValueError(f"location {high} exceeds socket range")
        if low < POOL_LOCATION or (low == POOL_LOCATION and not has_pool):
            raise ValueError(f"invalid location {low} for this system")

    @property
    def n_pages(self) -> int:
        return int(self.locations.size)

    def location_of(self, page: int) -> int:
        return int(self.locations[page])

    def move(self, pages: np.ndarray, destination: int) -> None:
        """Relocate ``pages`` to ``destination`` (socket id or pool)."""
        if destination == POOL_LOCATION and not self.has_pool:
            raise ValueError("cannot place pages in a nonexistent pool")
        if destination != POOL_LOCATION and not 0 <= destination < self.n_sockets:
            raise ValueError(f"destination {destination} out of range")
        self.locations[pages] = destination

    def pages_at(self, location: int) -> np.ndarray:
        """Indices of pages currently homed at ``location``."""
        return np.flatnonzero(self.locations == location)

    def pool_page_count(self) -> int:
        if not self.has_pool:
            return 0
        return int(np.count_nonzero(self.locations == POOL_LOCATION))

    def occupancy(self) -> np.ndarray:
        """Pages per socket (index 0..n_sockets-1); pool excluded."""
        counts = np.zeros(self.n_sockets, dtype=np.int64)
        on_socket = self.locations >= 0
        np.add.at(counts, self.locations[on_socket].astype(np.int64), 1)
        return counts

    def copy(self) -> "PageMap":
        return PageMap(self.locations.copy(), self.n_sockets, self.has_pool)


def first_touch_placement(sharer_masks: np.ndarray, n_sockets: int,
                          has_pool: bool,
                          rng: Optional[np.random.Generator] = None) -> PageMap:
    """First-touch initial placement.

    The socket that first touches a page becomes its home. Under symmetric
    sharing the first toucher is a uniformly random member of the page's
    sharer set, which is how we realize it here (seeded for
    reproducibility). Pages are never first-touched into the pool.
    """
    rng = rng or np.random.default_rng(0)
    sharer_masks = np.asarray(sharer_masks, dtype=np.uint32)
    n_pages = sharer_masks.size
    locations = np.empty(n_pages, dtype=np.int16)

    # Expand masks into a (n_pages, n_sockets) membership matrix, then pick
    # one set bit per row with probabilities uniform over members.
    membership = (
        (sharer_masks[:, None] >> np.arange(n_sockets, dtype=np.uint32)) & 1
    ).astype(np.float64)
    row_sums = membership.sum(axis=1)
    if np.any(row_sums == 0):
        raise ValueError("every page needs at least one sharer")
    probabilities = membership / row_sums[:, None]
    cumulative = probabilities.cumsum(axis=1)
    draws = rng.random(n_pages)
    locations[:] = (draws[:, None] < cumulative).argmax(axis=1)
    return PageMap(locations, n_sockets, has_pool)
