"""Pool capacity accounting (Sections III-A, IV-D, V-E)."""

from __future__ import annotations


class PoolCapacityManager:
    """Tracks usable pool capacity in pages.

    The paper limits pool-resident data to a fraction of each workload's
    footprint rather than an absolute byte budget, since simulated
    footprints are dwarfed by real 16-socket deployments: 20% models the
    chassis-equivalent pool, 1/17 the socket-equivalent pool of Fig. 12.
    """

    def __init__(self, footprint_pages: int, capacity_fraction: float):
        if footprint_pages < 0:
            raise ValueError(f"footprint must be >= 0, got {footprint_pages}")
        if not 0.0 < capacity_fraction <= 1.0:
            raise ValueError(
                f"capacity fraction must be in (0, 1], got {capacity_fraction}"
            )
        self.footprint_pages = footprint_pages
        self.capacity_fraction = capacity_fraction
        self.capacity_pages = int(footprint_pages * capacity_fraction)
        self.used_pages = 0

    @property
    def free_pages(self) -> int:
        return self.capacity_pages - self.used_pages

    def can_fit(self, pages: int) -> bool:
        if pages < 0:
            raise ValueError(f"page count must be >= 0, got {pages}")
        return pages <= self.free_pages

    def allocate(self, pages: int) -> None:
        """Reserve ``pages`` on the pool; raises if over capacity."""
        if not self.can_fit(pages):
            raise ValueError(
                f"pool overflow: {pages} pages requested, "
                f"{self.free_pages} free of {self.capacity_pages}"
            )
        self.used_pages += pages

    def release(self, pages: int) -> None:
        """Return ``pages`` to the free pool (victim eviction)."""
        if pages < 0:
            raise ValueError(f"page count must be >= 0, got {pages}")
        if pages > self.used_pages:
            raise ValueError(
                f"releasing {pages} pages but only {self.used_pages} in use"
            )
        self.used_pages -= pages

    def utilization(self) -> float:
        if self.capacity_pages == 0:
            return 0.0
        return self.used_pages / self.capacity_pages
