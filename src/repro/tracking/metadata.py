"""Metadata-region sizing and scan-cost arithmetic (Section III-D4).

The paper's full-scale example: a 16 TB system with 512 KB regions has 32
million tracker entries; under T_16 with 16 sockets each entry is 4 bytes
(16 sharer bits + a 16-bit counter), for a 128 MB metadata region. One
scan of Algorithm 1 over that region costs 64-320 million cycles depending
on the latency of the memory holding the metadata -- comfortably inside
the one-billion-cycle migration phase, so a single dedicated OS core
suffices (0.2% of a 448-core system).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import MigrationConfig, TrackerKind


@dataclass(frozen=True)
class MetadataRegion:
    """Sizing of the in-memory tracker metadata for a given system."""

    total_memory_bytes: int
    region_bytes: int
    n_sockets: int
    tracker: TrackerKind

    def __post_init__(self) -> None:
        if self.total_memory_bytes <= 0:
            raise ValueError("total memory must be positive")
        if self.region_bytes <= 0:
            raise ValueError("region size must be positive")
        if self.n_sockets < 1:
            raise ValueError("need at least one socket")

    @property
    def n_entries(self) -> int:
        """Number of tracker entries (one per region)."""
        return -(-self.total_memory_bytes // self.region_bytes)

    @property
    def entry_bits(self) -> int:
        """Bits per entry: one sharer bit per socket plus the counter."""
        return self.n_sockets + self.tracker.counter_bits

    @property
    def entry_bytes(self) -> int:
        """Entry footprint, rounded up to whole bytes."""
        return -(-self.entry_bits // 8)

    @property
    def total_bytes(self) -> int:
        """Footprint of the metadata region."""
        return self.n_entries * self.entry_bytes

    def entry_offset(self, region_id: int) -> int:
        """Byte offset of a region's entry: region_id x entry size."""
        if not 0 <= region_id < self.n_entries:
            raise ValueError(f"region {region_id} out of range")
        return region_id * self.entry_bytes

    def scan_cost_cycles(self, cycles_per_entry: float) -> float:
        """Cost of one Algorithm 1 scan at a given per-entry cost.

        The paper profiles 2-10 cycles per entry (64M-320M cycles for 32M
        entries) depending on where the metadata lives in the memory
        hierarchy.
        """
        if cycles_per_entry <= 0:
            raise ValueError("cycles per entry must be positive")
        return self.n_entries * cycles_per_entry

    def scan_fits_in_phase(self, phase_cycles: float,
                           cycles_per_entry: float = 10.0) -> bool:
        """Whether the worst-case scan fits within one migration phase."""
        return self.scan_cost_cycles(cycles_per_entry) <= phase_cycles

    @classmethod
    def for_system(cls, total_memory_bytes: int, n_sockets: int,
                   migration: MigrationConfig) -> "MetadataRegion":
        return cls(
            total_memory_bytes=total_memory_bytes,
            region_bytes=migration.region_bytes,
            n_sockets=n_sockets,
            tracker=migration.tracker,
        )
