"""Functional TLB-annex model (Fig. 5's hardware extension).

Each TLB entry carries an annex counter incremented on every LLC-missing
load to its page, plus a marker bit set once per migration phase. The
page-table walker (PTW) adds the annex value to the page's region entry in
the metadata region when the TLB entry is evicted, or -- for hot entries
that are never evicted -- when the entry is touched with its marker set.

This model exists to demonstrate (and test) that the flush protocol loses
no counts: the per-region aggregate reconstructed through TLB evictions
and marker flushes equals direct counting. The phase-level pipeline uses
:class:`RegionTrackerArray` directly on that equivalence.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict

from repro.tracking.tracker import RegionTrackerArray


@dataclass
class TlbStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    annex_flushes: int = 0
    marker_flushes: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses


@dataclass
class _TlbEntry:
    annex_count: int = 0
    marker: bool = False


class TlbAnnex:
    """A fully associative LRU TLB with per-entry annex counters.

    ``flush_target`` receives ``(page, count)`` callbacks standing in for
    the PTW's addition into the metadata region.
    """

    def __init__(self, capacity: int, annex_bits: int = 16):
        if capacity < 1:
            raise ValueError(f"TLB capacity must be >= 1, got {capacity}")
        if annex_bits < 1:
            raise ValueError(f"annex needs >= 1 bit, got {annex_bits}")
        self.capacity = capacity
        self.annex_max = (1 << annex_bits) - 1
        self.stats = TlbStats()
        self._entries: "OrderedDict[int, _TlbEntry]" = OrderedDict()
        self._flushed: Dict[int, int] = {}

    @property
    def flushed_counts(self) -> Dict[int, int]:
        """Per-page counts the PTW has pushed to the metadata region."""
        return dict(self._flushed)

    def resident_counts(self) -> Dict[int, int]:
        """Per-page annex counts still held in live TLB entries."""
        return {page: entry.annex_count
                for page, entry in self._entries.items()
                if entry.annex_count}

    def total_counts(self) -> Dict[int, int]:
        """Flushed plus resident counts; equals direct counting exactly."""
        totals = dict(self._flushed)
        for page, count in self.resident_counts().items():
            totals[page] = totals.get(page, 0) + count
        return totals

    def access(self, page: int, llc_miss: bool) -> None:
        """One translated access to ``page``; count it if it missed the LLC."""
        entry = self._entries.get(page)
        if entry is None:
            self.stats.misses += 1
            if len(self._entries) >= self.capacity:
                victim_page, victim = self._entries.popitem(last=False)
                self.stats.evictions += 1
                self._flush(victim_page, victim)
            entry = _TlbEntry()
            self._entries[page] = entry
        else:
            self.stats.hits += 1
            self._entries.move_to_end(page)
            if entry.marker:
                # PTW drains the annex of hot, never-evicted entries when
                # their marker is found set, then clears the marker.
                self._flush(page, entry)
                entry.marker = False
                self.stats.marker_flushes += 1
        if llc_miss:
            entry.annex_count = min(entry.annex_count + 1, self.annex_max)

    def set_markers(self) -> None:
        """Per-phase marker broadcast (about once per second)."""
        for entry in self._entries.values():
            entry.marker = True

    def drain(self) -> None:
        """Flush every live annex (end-of-simulation bookkeeping)."""
        for page, entry in self._entries.items():
            self._flush(page, entry)

    def _flush(self, page: int, entry: _TlbEntry) -> None:
        if entry.annex_count:
            self._flushed[page] = self._flushed.get(page, 0) + entry.annex_count
            entry.annex_count = 0
            self.stats.annex_flushes += 1
