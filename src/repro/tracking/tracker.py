"""Vectorized per-region access trackers (the T_i designs)."""

from __future__ import annotations

import numpy as np

from repro.config import MigrationConfig, TrackerKind


def region_of_page(page: np.ndarray, pages_per_region: int) -> np.ndarray:
    """Map page indices to region indices."""
    return page // pages_per_region


class RegionTrackerArray:
    """Per-region sharer bits and saturating access counters.

    One entry per region, matching the metadata-region layout of Section
    III-D1: a bitmask with one bit per socket recording which sockets
    touched the region this phase, and (for ``T_i`` with ``i > 0``) an
    ``i``-bit saturating counter of total region accesses. ``T_0`` tracks
    only the sharer bits.

    The array is updated from per-(socket, region) access counts -- the
    aggregate the TLB-annex/page-table-walker hardware produces -- and is
    scanned and reset once per migration phase by the policy.
    """

    def __init__(self, n_regions: int, n_sockets: int,
                 tracker: TrackerKind = TrackerKind.T16):
        if n_regions < 1:
            raise ValueError(f"need at least one region, got {n_regions}")
        if not 1 <= n_sockets <= 32:
            raise ValueError(
                f"sharer bitmask supports 1..32 sockets, got {n_sockets}"
            )
        self.n_regions = n_regions
        self.n_sockets = n_sockets
        self.tracker = tracker
        self.counter_max = (1 << tracker.counter_bits) - 1 if tracker.counts_accesses else 0
        self.sharer_bits = np.zeros(n_regions, dtype=np.uint32)
        self.counters = np.zeros(n_regions, dtype=np.int64)

    def update(self, counts: np.ndarray) -> None:
        """Fold per-(socket, region) access counts into the trackers.

        ``counts`` has shape ``(n_sockets, n_regions)``. Counters saturate
        at ``2**i - 1`` per the i-bit hardware counter; sharer bits are set
        for every socket with a nonzero count.
        """
        if counts.shape != (self.n_sockets, self.n_regions):
            raise ValueError(
                f"counts shape {counts.shape} != "
                f"({self.n_sockets}, {self.n_regions})"
            )
        if np.any(counts < 0):
            raise ValueError("access counts must be >= 0")
        touched = counts > 0
        for socket in range(self.n_sockets):
            mask = np.uint32(1 << socket)
            self.sharer_bits[touched[socket]] |= mask
        if self.tracker.counts_accesses:
            self.counters += counts.sum(axis=0).astype(np.int64)
            np.minimum(self.counters, self.counter_max, out=self.counters)

    def sharer_counts(self) -> np.ndarray:
        """Number of sharer bits set per region."""
        # Vectorized popcount over uint32 via the 4-bit nibble table.
        bits = self.sharer_bits
        count = np.zeros_like(bits, dtype=np.int64)
        value = bits.astype(np.uint64)
        while np.any(value):
            count += (value & 1).astype(np.int64)
            value >>= np.uint64(1)
        return count

    def sharers_of(self, region: int) -> np.ndarray:
        """Socket ids with their sharer bit set for ``region``."""
        bits = int(self.sharer_bits[region])
        return np.array(
            [socket for socket in range(self.n_sockets)
             if bits & (1 << socket)],
            dtype=np.int64,
        )

    def accesses(self) -> np.ndarray:
        """Per-region access counts (saturated; zeros under T_0)."""
        return self.counters.copy()

    def reset(self) -> None:
        """Per-phase reset performed by the metadata scan (Section III-D2)."""
        self.sharer_bits.fill(0)
        self.counters.fill(0)

    @classmethod
    def for_pages(cls, n_pages: int, n_sockets: int,
                  migration: MigrationConfig) -> "RegionTrackerArray":
        """Build a tracker array covering ``n_pages`` of physical memory."""
        pages_per_region = migration.pages_per_region
        n_regions = (n_pages + pages_per_region - 1) // pages_per_region
        return cls(n_regions, n_sockets, migration.tracker)
