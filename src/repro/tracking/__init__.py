"""Hardware-assisted memory access monitoring (Section III-D).

StarNUMA logically splits physical memory into regions (128 pages by
default) and maintains a per-region tracker entry in a contiguous metadata
region: one sharer bit per socket plus an ``i``-bit access counter (the
``T_i`` designs; ``T_0`` keeps only the sharer bits). Counters are fed by
a TLB "annex" -- a per-TLB-entry counter incremented on LLC-missing loads
and flushed to the metadata region by the page-table walker on TLB
eviction or when a per-phase marker bit is found set.

Three components:

* :class:`RegionTrackerArray` -- the vectorized per-region tracker state
  the migration policy scans once per phase.
* :class:`TlbAnnex` -- a functional TLB + annex model demonstrating that
  the eviction/marker flush mechanism reconstructs the same per-region
  counts the array accumulates directly.
* :class:`MetadataRegion` -- sizing and scan-cost arithmetic for the
  in-memory metadata (Section III-D4).
"""

from repro.tracking.tracker import RegionTrackerArray, region_of_page
from repro.tracking.tlb import TlbAnnex, TlbStats
from repro.tracking.metadata import MetadataRegion

__all__ = [
    "MetadataRegion",
    "RegionTrackerArray",
    "TlbAnnex",
    "TlbStats",
    "region_of_page",
]
