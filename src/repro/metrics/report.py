"""Plain-text table formatting for experiment output."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: str = "") -> str:
    """Render an aligned monospace table.

    Floats are shown with three significant decimals; everything else via
    ``str``. Used by every benchmark harness to print the rows the paper's
    tables and figures report.
    """
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered: List[str] = []
        for cell in row:
            if isinstance(cell, float):
                rendered.append(f"{cell:.3f}")
            else:
                rendered.append(str(cell))
        rendered_rows.append(rendered)

    widths = [len(header) for header in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(width)
                         for cell, width in zip(cells, widths)).rstrip()

    parts: List[str] = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append(line(["-" * width for width in widths]))
    parts.extend(line(row) for row in rendered_rows)
    return "\n".join(parts)
