"""Metrics: AMAT decomposition, the calibrated CPI model, and reporting.

The performance model is deliberately anchored to the paper's published
measurements (Table III): per workload, the core CPI and the effective
memory-level parallelism are solved from the single-socket IPC (at local
unloaded latency) and the baseline 16-socket IPC (at our simulated
baseline AMAT). Every other configuration's IPC is then a *prediction* of
``CPI = CPI_core + MPKI/1000 x AMAT_cycles / MLP``.
"""

from repro.metrics.amat import unloaded_amat_ns, worked_example_amat
from repro.metrics.breakdown import AccessBreakdown
from repro.metrics.calibration import CalibratedCpi, calibrate_cpi
from repro.metrics.report import format_table

__all__ = [
    "AccessBreakdown",
    "CalibratedCpi",
    "calibrate_cpi",
    "format_table",
    "unloaded_amat_ns",
    "worked_example_amat",
]
