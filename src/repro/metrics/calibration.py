"""Per-workload CPI model calibration.

The interval model ``CPI = CPI_core + K * AMAT_cycles ** alpha`` has two
per-workload unknowns -- the memory-independent core CPI and the memory
coefficient ``K`` -- solved from the paper's two published anchors
(Table III):

* single-socket execution, where AMAT is the local unloaded latency and
  IPC is the parenthesized value;
* baseline 16-socket execution, where AMAT is whatever our baseline
  simulation measures and IPC is the headline value.

The exponent ``alpha`` (default 0.75, shared by all workloads) makes the
memory term sublinear in AMAT: out-of-order cores extract more
memory-level parallelism as individual misses get slower (more misses fit
under one long-latency shadow), so doubling AMAT costs less than double
the stall CPI. A linear model (``alpha = 1``) systematically overpredicts
the IPC gain of a given AMAT reduction.

Configurations other than the baseline are then predictions, not fits.
When the exact solution is infeasible (CPI_core below the issue-width
floor, as happens for extremely memory-bound kernels whose single-socket
run is itself bandwidth-limited), CPI_core is clamped to the floor and
``K`` is re-solved from the 16-socket anchor -- the anchor that matters,
since all reported speedups are relative to the 16-socket baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.config import CoreConfig, LatencyConfig
from repro.workloads.profile import WorkloadProfile

#: Latency-overlap exponent of the memory CPI term.
DEFAULT_ALPHA = 0.75

#: Effective MLP assumed when the two anchors coincide (NUMA-insensitive
#: workloads give no second equation).
DEFAULT_MLP = 4.0


@dataclass(frozen=True)
class CalibratedCpi:
    """Fitted CPI-model constants of one workload."""

    cpi_core: float
    k_mem: float
    alpha: float
    misses_per_instruction: float

    def memory_cpi(self, amat_cycles: float) -> float:
        if amat_cycles < 0:
            raise ValueError(f"AMAT must be >= 0, got {amat_cycles}")
        return self.k_mem * amat_cycles ** self.alpha

    def cpi(self, amat_cycles: float, extra_cpi: float = 0.0) -> float:
        """Model CPI at a given AMAT (cycles)."""
        return self.cpi_core + self.memory_cpi(amat_cycles) + extra_cpi

    def ipc(self, amat_cycles: float, extra_cpi: float = 0.0) -> float:
        """Model IPC at a given AMAT (cycles)."""
        return 1.0 / self.cpi(amat_cycles, extra_cpi)


def calibrate_cpi(profile: WorkloadProfile, baseline_amat_ns: float,
                  core: CoreConfig,
                  local_latency_ns: Optional[float] = None,
                  alpha: float = DEFAULT_ALPHA) -> CalibratedCpi:
    """Solve (CPI_core, K) from the two Table III anchors.

    ``local_latency_ns`` is the single-socket anchor's AMAT; it defaults
    to the configured local access latency (Table I) rather than a copy
    of that number.
    """
    if local_latency_ns is None:
        local_latency_ns = LatencyConfig().local_ns
    if baseline_amat_ns < local_latency_ns:
        raise ValueError(
            f"baseline AMAT {baseline_amat_ns} ns below local latency "
            f"{local_latency_ns} ns"
        )
    if not 0.0 < alpha <= 1.0:
        raise ValueError(f"alpha must be in (0, 1], got {alpha}")
    misses = profile.mpki / 1000.0
    local_pow = core.ns_to_cycles(local_latency_ns) ** alpha
    amat_pow = core.ns_to_cycles(baseline_amat_ns) ** alpha
    cpi_single = 1.0 / profile.ipc_single
    cpi_16 = 1.0 / profile.ipc_16
    cpi_floor = 1.0 / core.issue_width

    gap = cpi_16 - cpi_single
    if gap < 1e-9 or amat_pow - local_pow < 1e-9:
        # NUMA-insensitive: both anchors coincide; the memory share is
        # unidentifiable from them, so assume a typical MLP and fit
        # CPI_core alone.
        local_cycles = core.ns_to_cycles(local_latency_ns)
        mlp = DEFAULT_MLP
        cpi_core = cpi_single - misses * local_cycles / mlp
        while cpi_core < cpi_floor and mlp < 64.0:
            mlp *= 2.0
            cpi_core = cpi_single - misses * local_cycles / mlp
        cpi_core = max(cpi_core, cpi_floor)
        k_mem = (cpi_single - cpi_core) / local_pow
        return CalibratedCpi(cpi_core, k_mem, alpha, misses)

    k_mem = gap / (amat_pow - local_pow)
    cpi_core = cpi_single - k_mem * local_pow
    if cpi_core < cpi_floor:
        # Clamp and re-solve K against the 16-socket anchor.
        cpi_core = cpi_floor
        k_mem = (cpi_16 - cpi_core) / amat_pow
    if k_mem <= 0:
        raise ValueError("calibration produced a non-positive memory term")
    return CalibratedCpi(cpi_core, k_mem, alpha, misses)
