"""Terminal bar charts for experiment results.

The harness is plotting-library-free; for a quick visual read of a
speedup table, :func:`bar_chart` renders labeled horizontal bars, and
:func:`speedup_chart` specializes it with a 1.0x reference column.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

#: Glyphs: full blocks plus an eighth-resolution final cell.
_FULL = "█"
_PARTIAL = " ▏▎▍▌▋▊▉"


def _bar(value: float, scale: float, width: int) -> str:
    cells = max(0.0, value) * width / scale
    full = int(cells)
    remainder = cells - full
    partial = _PARTIAL[int(remainder * 8)] if full < width else ""
    return (_FULL * min(full, width) + partial).ljust(width)


def _clip(label: str, max_label: Optional[int]) -> str:
    """Truncate to ``max_label`` columns, ellipsized when cut."""
    if max_label is None or len(label) <= max_label:
        return label
    if max_label <= 1:
        return label[:max_label]
    return label[:max_label - 1] + "…"


def bar_chart(items: Sequence[Tuple[str, float]], width: int = 40,
              title: str = "", unit: str = "",
              max_label: Optional[int] = None) -> str:
    """Render labeled horizontal bars, scaled to the maximum value.

    ``max_label`` caps the label column (long trace-derived labels
    would otherwise push every bar off-screen); ``None`` never cuts.
    """
    if not items:
        raise ValueError("need at least one bar")
    if width < 4:
        raise ValueError(f"width must be >= 4, got {width}")
    if max_label is not None and max_label < 1:
        raise ValueError(f"max_label must be >= 1, got {max_label}")
    scale = max(value for _, value in items)
    if scale <= 0:
        scale = 1.0
    labels = [_clip(label, max_label) for label, _ in items]
    label_width = max(len(label) for label in labels)

    lines: List[str] = []
    if title:
        lines.append(title)
    for label, (_, value) in zip(labels, items):
        bar = _bar(value, scale, width)
        lines.append(f"{label.ljust(label_width)}  {bar} {value:.2f}{unit}")
    return "\n".join(lines)


def speedup_chart(items: Sequence[Tuple[str, float]], width: int = 40,
                  title: str = "") -> str:
    """Bar chart of speedups with a marked 1.0x reference.

    Bars show the gain over 1.0x (a 1.0x workload gets an empty bar), so
    the visual length is the *improvement*, which is what a speedup
    figure is read for.
    """
    if not items:
        raise ValueError("need at least one bar")
    gains = [(label, max(0.0, value - 1.0)) for label, value in items]
    scale = max(gain for _, gain in gains) or 1.0
    label_width = max(len(label) for label, _ in items)

    lines: List[str] = []
    if title:
        lines.append(title)
    for (label, value), (_, gain) in zip(items, gains):
        bar = _bar(gain, scale, width)
        lines.append(f"{label.ljust(label_width)}  |{bar} {value:.2f}x")
    lines.append(f"{' ' * label_width}  ^1.00x")
    return "\n".join(lines)
