"""Average Memory Access Time arithmetic."""

from __future__ import annotations

from typing import Mapping, Optional, Tuple

from repro.config import LatencyConfig
from repro.topology.model import AccessType


def unloaded_amat_ns(fractions: Mapping[AccessType, float],
                     latency: LatencyConfig) -> float:
    """Unloaded AMAT of an access mix (the Fig. 8b 'Unloaded Latency' bar).

    ``fractions`` maps access types to their share of all LLC-missing
    accesses; shares must sum to 1.
    """
    total = sum(fractions.values())
    if abs(total - 1.0) > 1e-6:
        raise ValueError(f"access fractions sum to {total}, expected 1")
    lookup = {
        AccessType.LOCAL: latency.local_ns,
        AccessType.INTRA_CHASSIS: latency.intra_chassis_ns,
        AccessType.INTER_CHASSIS: latency.inter_chassis_ns,
        AccessType.POOL: latency.pool_ns,
        AccessType.BLOCK_TRANSFER_SOCKET: latency.block_transfer_socket_ns,
        AccessType.BLOCK_TRANSFER_POOL: latency.block_transfer_pool_ns,
    }
    return sum(share * lookup[kind] for kind, share in fractions.items())


def worked_example_amat(latency: Optional[LatencyConfig] = None
                        ) -> Tuple[float, float]:
    """The Section II-C first-order example, as a reproducible anchor.

    36% of BFS's accesses hit pages shared by all 16 sockets; of those,
    75% are inter-chassis and 25% intra-chassis under uniform sharing,
    while the remaining 64% are assumed local. The baseline AMAT is then
    160 ns; pool placement halves the latency of the *inter-chassis*
    share (360 ns -> 180 ns pool accesses, the intra-chassis quarter
    keeps its 130 ns), for 112 ns -- a 30% reduction.

    Returns ``(baseline_amat_ns, starnuma_amat_ns)``.
    """
    latency = latency or LatencyConfig()
    shared = 0.36
    baseline = unloaded_amat_ns(
        {
            AccessType.LOCAL: 1.0 - shared,
            AccessType.INTRA_CHASSIS: shared * 0.25,
            AccessType.INTER_CHASSIS: shared * 0.75,
        },
        latency,
    )
    pooled = unloaded_amat_ns(
        {
            AccessType.LOCAL: 1.0 - shared,
            AccessType.INTRA_CHASSIS: shared * 0.25,
            AccessType.POOL: shared * 0.75,
        },
        latency,
    )
    return baseline, pooled
