"""Access-type breakdown container (Fig. 8c)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping

from repro.topology.model import AccessType


@dataclass
class AccessBreakdown:
    """Counts of LLC-missing accesses by type."""

    counts: Dict[AccessType, float] = field(default_factory=dict)

    def add(self, kind: AccessType, count: float) -> None:
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        self.counts[kind] = self.counts.get(kind, 0.0) + count

    def merge(self, other: "AccessBreakdown") -> None:
        for kind, count in other.counts.items():
            self.add(kind, count)

    @property
    def total(self) -> float:
        return sum(self.counts.values())

    def fraction(self, kind: AccessType) -> float:
        total = self.total
        if total == 0:
            return 0.0
        return self.counts.get(kind, 0.0) / total

    def fractions(self) -> Dict[AccessType, float]:
        total = self.total
        if total == 0:
            return {}
        return {kind: count / total for kind, count in self.counts.items()
                if count > 0}

    def remote_fraction(self) -> float:
        """Share of accesses leaving the requesting socket."""
        return 1.0 - self.fraction(AccessType.LOCAL)

    def block_transfer_fraction(self) -> float:
        return (self.fraction(AccessType.BLOCK_TRANSFER_SOCKET)
                + self.fraction(AccessType.BLOCK_TRANSFER_POOL))

    @classmethod
    def from_fractions(cls, fractions: Mapping[AccessType, float],
                       total: float = 1.0) -> "AccessBreakdown":
        breakdown = cls()
        for kind, share in fractions.items():
            breakdown.add(kind, share * total)
        return breakdown
