"""Discrete-event single-queue simulator for validating the analytic model.

The phase-level timing model prices every link with a burst-scaled M/D/1
formula. This module provides the ground truth to check that against: an
event-driven FIFO queue with deterministic service and configurable
arrival burstiness (batched Poisson arrivals -- a batch of ``b`` jobs
arrives at Poisson epochs, giving a squared coefficient of variation that
grows with ``b``).

Used by tests (``tests/test_interconnect/test_eventsim.py``) to verify:

* at Poisson arrivals (batch 1) the simulated mean wait matches M/D/1
  closely across utilizations;
* batched arrivals scale the wait roughly linearly with batch size,
  justifying the multiplicative burstiness constant.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class QueueSimResult:
    """Outcome of one simulated arrival process."""

    jobs: int
    utilization: float
    mean_wait: float
    mean_sojourn: float
    max_queue_depth: int


def simulate_queue(service_time: float, utilization: float,
                   n_jobs: int = 50_000, batch_size: int = 1,
                   seed: int = 0) -> QueueSimResult:
    """Simulate a FIFO queue with deterministic service.

    Arrivals are batch-Poisson: batches of ``batch_size`` jobs arrive as
    a Poisson process whose rate realizes the requested ``utilization``
    (`rho = lambda_jobs * service_time`). Waits are measured per job.
    """
    if service_time <= 0:
        raise ValueError(f"service time must be positive, got {service_time}")
    if not 0.0 < utilization < 1.0:
        raise ValueError(
            f"utilization must be in (0, 1) for a stable queue, "
            f"got {utilization}"
        )
    if n_jobs < 1 or batch_size < 1:
        raise ValueError("n_jobs and batch_size must be >= 1")

    rng = np.random.default_rng(seed)
    job_rate = utilization / service_time
    batch_rate = job_rate / batch_size
    n_batches = -(-n_jobs // batch_size)

    inter_arrivals = rng.exponential(1.0 / batch_rate, size=n_batches)
    batch_times = np.cumsum(inter_arrivals)

    total_wait = 0.0
    total_sojourn = 0.0
    server_free_at = 0.0
    max_depth = 0
    depth_now = 0
    jobs_done = 0

    # Jobs of one batch arrive simultaneously and are served in order.
    for batch_time in batch_times:
        # Queue depth just before this batch (jobs not yet started).
        if server_free_at <= batch_time:
            depth_now = 0
        for _ in range(batch_size):
            if jobs_done >= n_jobs:
                break
            start = max(batch_time, server_free_at)
            total_wait += start - batch_time
            server_free_at = start + service_time
            total_sojourn += server_free_at - batch_time
            jobs_done += 1
            depth_now += 1
            max_depth = max(max_depth, depth_now)

    return QueueSimResult(
        jobs=jobs_done,
        utilization=utilization,
        mean_wait=total_wait / jobs_done,
        mean_sojourn=total_sojourn / jobs_done,
        max_queue_depth=max_depth,
    )


def md1_error(service_time: float, utilization: float,
              n_jobs: int = 50_000, seed: int = 0) -> float:
    """Relative error of the M/D/1 formula against simulation (batch 1)."""
    from repro.interconnect.queueing import mdl_wait_ns

    simulated = simulate_queue(service_time, utilization, n_jobs,
                               batch_size=1, seed=seed).mean_wait
    analytic = mdl_wait_ns(utilization, service_time, burstiness=1.0)
    if simulated == 0:
        return 0.0
    return abs(analytic - simulated) / simulated
