"""M/D/1 waiting-time approximation for link and channel queueing.

Each link direction is modeled as a single-server queue with deterministic
service (a cache-block transfer takes ``block_bytes / capacity`` seconds)
and Poisson arrivals, giving the classic M/D/1 mean waiting time

    Wq = S * rho / (2 * (1 - rho))

Past ``MAX_STABLE_UTILIZATION`` the expression is extended linearly with a
matching first derivative. Real systems in that regime are throttled by
the cores' finite memory-level parallelism; the closed-loop timing model
(see :mod:`repro.sim.timing`) lowers IPC as the waiting time grows, which
pushes utilization back below 1 at the fixed point. The linear extension
simply keeps the iteration monotone and finite on the way there.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.config import units

#: Utilization at which the analytic M/D/1 curve hands over to the linear
#: extension.
MAX_STABLE_UTILIZATION = 0.95

#: Default arrival-burstiness multiplier on waiting times. LLC-miss
#: arrivals from out-of-order cores are far from Poisson -- misses cluster
#: at cache-line and page boundaries and behind ROB stalls -- so the
#: G/G/1-style correction (1 + Ca^2)/2 with a squared coefficient of
#: variation around 10 multiplies the M/D/1 wait. This single constant is
#: what lets a moderate mean utilization reproduce the heavy queueing
#: delays cycle-level simulation observes on coherent links.
DEFAULT_BURSTINESS = 6.0


def service_time_ns(block_bytes: float, capacity_gbps: float) -> float:
    """Service time of one ``block_bytes`` transfer on a link, nanoseconds.

    ``capacity_gbps`` is GB/s per direction; 1 GB/s moves one byte per
    nanosecond, so the service time is simply ``bytes / GBps``.
    """
    if capacity_gbps <= 0:
        raise ValueError(f"capacity must be positive, got {capacity_gbps}")
    if block_bytes < 0:
        raise ValueError(f"block size must be >= 0, got {block_bytes}")
    return units.transfer_time_ns(block_bytes, capacity_gbps)


def mdl_wait_ns(utilization: float, service_ns: float,
                max_utilization: float = MAX_STABLE_UTILIZATION,
                burstiness: float = 1.0) -> float:
    """Mean waiting time: burstiness x M/D/1, linear past saturation.

    Parameters
    ----------
    utilization:
        Offered load divided by capacity. May exceed 1 transiently during
        fixed-point iteration.
    service_ns:
        Deterministic service time of one transfer.
    max_utilization:
        Hand-over point to the linear extension (must be in (0, 1)).
    burstiness:
        G/G/1-style multiplier for non-Poisson arrivals (1.0 = Poisson;
        see :data:`DEFAULT_BURSTINESS`).
    """
    if service_ns < 0:
        raise ValueError(f"service time must be >= 0, got {service_ns}")
    if not 0.0 < max_utilization < 1.0:
        raise ValueError(
            f"max_utilization must be in (0, 1), got {max_utilization}"
        )
    if burstiness <= 0:
        raise ValueError(f"burstiness must be positive, got {burstiness}")
    if utilization <= 0.0:
        return 0.0
    if utilization < max_utilization:
        wait = service_ns * utilization / (2.0 * (1.0 - utilization))
    else:
        # Linear extension: value and slope of the M/D/1 curve at the
        # handover point. d/du [u / (2(1-u))] = 1 / (2 (1-u)^2).
        base = max_utilization / (2.0 * (1.0 - max_utilization))
        slope = 1.0 / (2.0 * (1.0 - max_utilization) ** 2)
        wait = service_ns * (base + slope * (utilization - max_utilization))
    return burstiness * wait


def mdl_wait_ns_array(utilization: np.ndarray, service_ns: np.ndarray,
                      max_utilization: float = MAX_STABLE_UTILIZATION,
                      burstiness: Union[float, np.ndarray] = 1.0,
                      out: Optional[np.ndarray] = None,
                      scratch: Optional[np.ndarray] = None,
                      mask: Optional[np.ndarray] = None) -> np.ndarray:
    """Whole-vector :func:`mdl_wait_ns` over per-slot arrays.

    Evaluates the identical expressions branch for branch -- analytic
    M/D/1 below the handover, the matching linear extension above, zero
    at or below zero utilization -- so each element agrees with the
    scalar function to the last bit.

    Shapes broadcast elementwise, so a stacked ``(lanes, slots)``
    utilization matrix against a ``(slots,)`` service vector (and an
    optional per-lane ``(lanes, 1)`` burstiness column) evaluates every
    sweep lane in one call; each row is bit-identical to evaluating that
    lane's ``(slots,)`` vectors alone, because every operation is
    elementwise.

    When ``out`` is given the result is written into it and no float
    arrays are allocated (``scratch`` provides the one intermediate
    buffer; it is allocated once if omitted). The ``out`` path performs
    the same IEEE operations in the same order as the allocating path,
    so the results are bit-identical. ``out`` and ``scratch`` must have
    the broadcast result shape and must not alias ``utilization`` or
    ``service_ns``; ``mask`` (same shape, bool) likewise avoids the two
    boolean temporaries of the branch selection.
    """
    if not 0.0 < max_utilization < 1.0:
        raise ValueError(
            f"max_utilization must be in (0, 1), got {max_utilization}"
        )
    if isinstance(burstiness, (int, float)):
        if burstiness <= 0.0:
            raise ValueError(
                f"burstiness must be positive, got {burstiness}"
            )
    elif np.any(np.asarray(burstiness) <= 0.0):
        raise ValueError(f"burstiness must be positive, got {burstiness}")
    utilization = np.asarray(utilization, dtype=np.float64)
    base = max_utilization / (2.0 * (1.0 - max_utilization))
    slope = 1.0 / (2.0 * (1.0 - max_utilization) ** 2)
    if out is None:
        # Clamp the analytic branch's denominator away from zero before the
        # division; np.where evaluates both branches, and the saturated
        # elements take the linear-extension value anyway.
        safe = np.minimum(utilization, max_utilization)
        analytic = service_ns * safe / (2.0 * (1.0 - safe))
        linear = service_ns * (base + slope * (utilization - max_utilization))
        wait = np.where(utilization < max_utilization, analytic, linear)
        return burstiness * np.where(utilization <= 0.0, 0.0, wait)
    if scratch is None:
        scratch = np.empty_like(out)
    # Allocation-free variant: the ufunc chain below reproduces the
    # expressions above operation for operation (reassociating only
    # across exactly-commutative float multiplies/adds), so every
    # element is bit-identical to the allocating path.
    np.minimum(utilization, max_utilization, out=scratch)       # safe
    np.multiply(service_ns, scratch, out=out)                   # service * safe
    np.subtract(1.0, scratch, out=scratch)                      # 1 - safe
    np.multiply(2.0, scratch, out=scratch)                      # 2 * (1 - safe)
    np.divide(out, scratch, out=out)                            # analytic
    np.subtract(utilization, max_utilization, out=scratch)
    np.multiply(slope, scratch, out=scratch)
    np.add(base, scratch, out=scratch)
    np.multiply(service_ns, scratch, out=scratch)               # linear
    if mask is None:
        np.copyto(out, scratch, where=utilization >= max_utilization)
        np.copyto(out, 0.0, where=utilization <= 0.0)
    else:
        np.greater_equal(utilization, max_utilization, out=mask)
        np.copyto(out, scratch, where=mask)
        np.less_equal(utilization, 0.0, out=mask)
        np.copyto(out, 0.0, where=mask)
    np.multiply(out, burstiness, out=out)
    return out
