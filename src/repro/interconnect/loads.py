"""Per-link, per-direction traffic accounting over a simulation window.

Storage is a flat byte vector indexed by the topology's dense directed
:class:`~repro.topology.linkindex.LinkIndex` slots (one slot per
direction of every coherent link, one shared slot per DRAM channel
bundle). The historical keyed interface -- ``add(hop, ...)``,
``delay_ns(hop, ...)`` and friends -- remains as a thin facade over the
vector, while the timing kernel reads/writes whole vectors: scatter-adds
of precompiled route index arrays on the recording side, and one
element-wise M/D/1 expression per fixed-point iteration on the
evaluation side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple, Union

import numpy as np

from repro.config.parameters import CACHE_BLOCK_BYTES
from repro.interconnect.queueing import (
    DEFAULT_BURSTINESS,
    mdl_wait_ns,
    mdl_wait_ns_array,
    service_time_ns,
)
from repro.topology.linkindex import CompiledRoute
from repro.topology.model import DirectedLink, Topology

#: Bytes of header/CRC overhead accompanying each request or data message.
MESSAGE_HEADER_BYTES = 8.0

#: A route argument: hop objects, or the precompiled slot-array form.
RouteLike = Union[Iterable[DirectedLink], CompiledRoute]


@dataclass(frozen=True)
class TrafficSample:
    """Utilization and waiting time of one link direction."""

    link_id: str
    forward: bool
    offered_gbps: float
    capacity_gbps: float
    wait_ns: float

    @property
    def utilization(self) -> float:
        return self.offered_gbps / self.capacity_gbps

    def as_attrs(self) -> dict:
        """Flat JSON-ready form, used by the obs utilization events."""
        return {
            "link": self.link_id,
            "forward": self.forward,
            "utilization": self.utilization,
            "offered_gbps": self.offered_gbps,
            "capacity_gbps": self.capacity_gbps,
            "wait_ns": self.wait_ns,
        }


class LinkLoads:
    """Accumulates traffic and evaluates queueing delay per link direction.

    Traffic is recorded in bytes; :meth:`delay_ns` and friends convert to
    offered bandwidth given the window duration decided by the caller (the
    timing model knows the phase's wall-clock span). DRAM "links" are not
    directional: both directions of a DRAM link id alias the same queue,
    which the slot assignment collapses onto a single shared slot.
    """

    def __init__(self, topology: Topology,
                 burstiness: float = DEFAULT_BURSTINESS):
        if burstiness <= 0:
            raise ValueError(f"burstiness must be positive, got {burstiness}")
        self.topology = topology
        self.burstiness = burstiness
        self.index = topology.link_index()
        self._vec = np.zeros(self.index.n_slots, dtype=np.float64)
        #: Lazily allocated (utilization, wait, tmp) buffers reused across
        #: fixed-point iterations when ``reuse_scratch`` is requested.
        self._workspace: Optional[
            Tuple[np.ndarray, np.ndarray, np.ndarray]] = None

    def reset(self) -> None:
        self._vec[:] = 0.0

    @property
    def bytes_vector(self) -> np.ndarray:
        """The per-slot charged bytes (a live view, not a copy)."""
        return self._vec

    # -- recording ---------------------------------------------------------

    def add(self, hop: DirectedLink, n_bytes: float) -> None:
        """Charge ``n_bytes`` of traffic to one direction of a link."""
        if n_bytes < 0:
            raise ValueError(f"traffic bytes must be >= 0, got {n_bytes}")
        self._vec[self.index.slot(hop)] += n_bytes

    def add_access_traffic(self, route: RouteLike,
                           accesses: float, writeback_fraction: float,
                           block_bytes: float = CACHE_BLOCK_BYTES) -> None:
        """Charge the traffic of ``accesses`` LLC misses along ``route``.

        Every miss sends a small request in the route direction and pulls a
        data fill in the reverse direction; a ``writeback_fraction`` of
        misses additionally push a dirty block in the route direction.
        """
        if accesses < 0:
            raise ValueError(f"access count must be >= 0, got {accesses}")
        if not 0.0 <= writeback_fraction <= 1.0:
            raise ValueError(
                f"writeback fraction must be in [0, 1], got {writeback_fraction}"
            )
        request_bytes = accesses * (
            MESSAGE_HEADER_BYTES
            + writeback_fraction * (block_bytes + MESSAGE_HEADER_BYTES)
        )
        fill_bytes = accesses * (block_bytes + MESSAGE_HEADER_BYTES)
        if isinstance(route, CompiledRoute):
            np.add.at(self._vec, route.forward_slots, request_bytes)
            np.add.at(self._vec, route.reverse_slots, fill_bytes)
            return
        for hop in route:
            self.add(hop, request_bytes)
            self.add(hop.reversed(), fill_bytes)

    def add_transfer_traffic(self, route: RouteLike,
                             transfers: float,
                             block_bytes: float = CACHE_BLOCK_BYTES) -> None:
        """Charge coherence block-transfer data movement along ``route``.

        Block-transfer routes are already oriented in the data direction
        (see :meth:`RouteTable.block_transfer_route`), so the data block is
        charged forward and only a header-sized ack flows back.
        """
        if transfers < 0:
            raise ValueError(f"transfer count must be >= 0, got {transfers}")
        data_bytes = transfers * (block_bytes + MESSAGE_HEADER_BYTES)
        ack_bytes = transfers * MESSAGE_HEADER_BYTES
        if isinstance(route, CompiledRoute):
            np.add.at(self._vec, route.forward_slots, data_bytes)
            np.add.at(self._vec, route.reverse_slots, ack_bytes)
            return
        for hop in route:
            self.add(hop, data_bytes)
            self.add(hop.reversed(), ack_bytes)

    # -- vector evaluation ---------------------------------------------------

    def utilization_vector(self, window_ns: float,
                           out: Optional[np.ndarray] = None) -> np.ndarray:
        """Per-slot offered load over capacity for the window.

        With ``out`` the result is written in place (no allocation) via
        the same IEEE operations, so the values are bit-identical.
        """
        if window_ns <= 0:
            raise ValueError(f"window must be positive, got {window_ns}")
        if out is None:
            return self._vec / (window_ns * self.index.capacity_gbps)
        np.multiply(window_ns, self.index.capacity_gbps, out=out)
        np.divide(self._vec, out, out=out)
        return out

    def wait_ns_vector(self, window_ns: float,
                       reuse_scratch: bool = False) -> np.ndarray:
        """Per-slot M/D/1 waiting time of one block transfer, burst-scaled.

        Element ``s`` equals ``delay_ns(hop_of(s), window_ns)``; the whole
        vector costs a handful of array expressions rather than one
        Python-level queueing call per charged link direction.

        With ``reuse_scratch`` the utilization/wait/intermediate buffers
        are allocated once per :class:`LinkLoads` and reused across calls
        (the fixed-point loop calls this every iteration); the returned
        array is overwritten by the next such call, so callers must
        consume it before iterating again. Values are bit-identical to
        the allocating path.
        """
        if not reuse_scratch:
            return mdl_wait_ns_array(
                self.utilization_vector(window_ns),
                self.index.service_ns,
                burstiness=self.burstiness,
            )
        if self._workspace is None:
            n = self.index.n_slots
            self._workspace = (np.empty(n, dtype=np.float64),
                               np.empty(n, dtype=np.float64),
                               np.empty(n, dtype=np.float64))
        util, wait, tmp = self._workspace
        self.utilization_vector(window_ns, out=util)
        return mdl_wait_ns_array(util, self.index.service_ns,
                                 burstiness=self.burstiness,
                                 out=wait, scratch=tmp)

    # -- keyed evaluation ----------------------------------------------------

    def offered_gbps(self, hop: DirectedLink, window_ns: float) -> float:
        """Offered bandwidth on one link direction over the window, GB/s."""
        if window_ns <= 0:
            raise ValueError(f"window must be positive, got {window_ns}")
        return float(self._vec[self.index.slot(hop)]) / window_ns

    def utilization(self, hop: DirectedLink, window_ns: float) -> float:
        return self.offered_gbps(hop, window_ns) / hop.link.capacity_gbps

    def delay_ns(self, hop: DirectedLink, window_ns: float,
                 block_bytes: float = CACHE_BLOCK_BYTES) -> float:
        """Queueing delay of one block transfer on ``hop`` under load."""
        service = service_time_ns(block_bytes + MESSAGE_HEADER_BYTES,
                                  hop.link.capacity_gbps)
        return mdl_wait_ns(self.utilization(hop, window_ns), service,
                           burstiness=self.burstiness)

    def fill_delay_ns(self, route: Iterable[DirectedLink],
                      window_ns: float) -> float:
        """Total queueing delay along the data-fill direction of a route.

        The fill traverses each hop of the requester->memory route in
        reverse; this is the delay component that inflates the latency of a
        demand load, so it is what AMAT contention accounts.
        """
        return sum(self.delay_ns(hop.reversed(), window_ns) for hop in route)

    def transfer_delay_ns(self, route: Iterable[DirectedLink],
                          window_ns: float) -> float:
        """Queueing delay along an already data-oriented transfer route."""
        return sum(self.delay_ns(hop, window_ns) for hop in route)

    def sample(self, hop: DirectedLink, window_ns: float) -> TrafficSample:
        """Capture the utilization/wait state of one link direction."""
        return TrafficSample(
            link_id=hop.link.link_id,
            forward=hop.forward,
            offered_gbps=self.offered_gbps(hop, window_ns),
            capacity_gbps=hop.link.capacity_gbps,
            wait_ns=self.delay_ns(hop, window_ns),
        )

    def busiest(self, window_ns: float, top: int = 5) -> List[TrafficSample]:
        """Return the ``top`` most utilized link directions (diagnostics)."""
        charged = np.flatnonzero(self._vec)
        if charged.size == 0:
            return []
        utilization = self.utilization_vector(window_ns)[charged]
        order = charged[np.argsort(-utilization, kind="stable")[:top]]
        return [self.sample(self.index.hop_at(slot), window_ns)
                for slot in order]
