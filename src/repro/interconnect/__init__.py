"""Interconnect contention model.

Cross-socket bandwidth constraints are the second half of the NUMA problem
(Section II-A): beyond the unloaded latency gap, UPI links (~21 GB/s) and
NUMALinks (~13 GB/s) are an order of magnitude slower than local DRAM, so
remote accesses suffer queuing delays under load. This package accumulates
per-link, per-direction traffic over a simulation window and converts link
utilization into waiting time with an M/D/1 approximation, with a smooth
linear extension past heavy load so that the closed-loop timing model
(IPC <-> AMAT fixed point) remains well behaved.
"""

from repro.interconnect.queueing import (
    MAX_STABLE_UTILIZATION,
    mdl_wait_ns,
    service_time_ns,
)
from repro.interconnect.loads import LinkLoads, TrafficSample

__all__ = [
    "LinkLoads",
    "MAX_STABLE_UTILIZATION",
    "TrafficSample",
    "mdl_wait_ns",
    "service_time_ns",
]
