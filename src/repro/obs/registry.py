"""Typed metrics: counters, gauges, and fixed-edge histograms.

Metrics accumulate in memory and are flushed as ``metric`` records when
the pipeline shuts down (one summary record per metric, sorted by name
for deterministic traces). Histogram bucket edges are fixed at first
observation -- runtime-derived edges would make two traces of the same
run structurally different, which the summary tooling and the CI schema
check both rely on not happening.
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: Default bucket edges of iteration-count-shaped histograms.
ITERATION_EDGES: Tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64)


class Counter:
    """A monotonically growing sum."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def add(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name}: amount must be >= 0, "
                             f"got {amount}")
        self.value += amount

    def to_record(self) -> Dict[str, object]:
        return {"kind": "metric", "type": "counter", "name": self.name,
                "value": self.value}


class Gauge:
    """A last-write-wins sampled value."""

    __slots__ = ("name", "value", "n_samples")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.n_samples = 0

    def set(self, value: float) -> None:
        self.value = float(value)
        self.n_samples += 1

    def to_record(self) -> Dict[str, object]:
        return {"kind": "metric", "type": "gauge", "name": self.name,
                "value": self.value, "samples": self.n_samples}


class Histogram:
    """Counts of observations against fixed, strictly increasing edges.

    ``edges = (e0, .., ek)`` produce ``k + 2`` buckets: ``(-inf, e0]``,
    ``(e0, e1]``, ..., ``(ek, +inf)``. Fixed edges keep two traces of
    the same run structurally identical.
    """

    __slots__ = ("name", "edges", "bucket_counts", "count", "total")

    def __init__(self, name: str, edges: Sequence[float]) -> None:
        ordered = tuple(float(edge) for edge in edges)
        if not ordered:
            raise ValueError(f"histogram {name}: needs at least one edge")
        if any(b <= a for a, b in zip(ordered, ordered[1:])):
            raise ValueError(
                f"histogram {name}: edges must be strictly increasing, "
                f"got {ordered}"
            )
        self.name = name
        self.edges = ordered
        self.bucket_counts = [0] * (len(ordered) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect.bisect_left(self.edges, value)] += 1
        self.count += 1
        self.total += value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_record(self) -> Dict[str, object]:
        return {
            "kind": "metric", "type": "histogram", "name": self.name,
            "edges": list(self.edges), "buckets": list(self.bucket_counts),
            "count": self.count, "total": self.total,
        }


class MetricsRegistry:
    """The pipeline's live metric instruments, keyed by name.

    A name identifies exactly one instrument kind for the lifetime of
    the registry; re-registering ``x`` as a different kind (or a
    histogram with different edges) is a programming error and raises.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            self._check_unclaimed(name, self._counters)
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            self._check_unclaimed(name, self._gauges)
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str,
                  edges: Optional[Sequence[float]] = None) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            self._check_unclaimed(name, self._histograms)
            instrument = self._histograms[name] = Histogram(
                name, edges if edges is not None else ITERATION_EDGES
            )
        elif edges is not None and tuple(float(e) for e in edges) \
                != instrument.edges:
            raise ValueError(
                f"histogram {name!r} already registered with edges "
                f"{instrument.edges}"
            )
        return instrument

    def _check_unclaimed(self, name: str, owner: Dict) -> None:
        for family in (self._counters, self._gauges, self._histograms):
            if family is not owner and name in family:
                raise ValueError(
                    f"metric name {name!r} already registered as a "
                    f"different instrument kind"
                )

    def __len__(self) -> int:
        return (len(self._counters) + len(self._gauges)
                + len(self._histograms))

    def flush_records(self) -> List[Dict[str, object]]:
        """One summary record per instrument, sorted by name."""
        instruments: Iterable = (
            list(self._counters.values())
            + list(self._gauges.values())
            + list(self._histograms.values())
        )
        return [instrument.to_record()
                for instrument in sorted(instruments,
                                         key=lambda i: i.name)]

    def clear(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
