"""The obs trace record schema and its validator.

A trace is JSONL: one record per line. Four record kinds exist:

``meta``
    First record of every trace. Fields: ``schema`` (int, the version),
    ``level`` (``"basic"``/``"detail"``), ``clock``
    (``"monotonic_ns"``).
``span``
    A closed timed region. Fields: ``name``, ``t_ns`` (start, relative
    to pipeline configuration), ``dur_ns`` (>= 0), ``attrs`` (flat
    object).
``event``
    A point observation. Fields: ``name``, ``t_ns``, ``attrs``.
``metric``
    A registry summary flushed at shutdown. Fields: ``name``, ``type``
    (``counter``/``gauge``/``histogram``) and the type's payload --
    ``value`` for counters and gauges; ``edges``/``buckets``/``count``/
    ``total`` for histograms (``len(buckets) == len(edges) + 1``).

:func:`validate_record` checks one parsed record; :func:`validate_trace`
checks a whole file and returns per-line problems (used by
``starnuma obs validate`` and the CI smoke job).
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Tuple, Union

import json

SCHEMA_VERSION = 1

#: Accepted values of the meta record's ``level`` field.
LEVEL_NAMES = ("basic", "detail")

_KINDS = ("meta", "span", "event", "metric")
_METRIC_TYPES = ("counter", "gauge", "histogram")


class ObsSchemaError(ValueError):
    """A record (or trace) violates the obs schema."""


def _problem(message: str) -> List[str]:
    return [message]


def validate_record(record: object) -> List[str]:
    """Problems with one parsed record (empty list when valid)."""
    if not isinstance(record, dict):
        return _problem(f"record must be an object, got "
                        f"{type(record).__name__}")
    kind = record.get("kind")
    if kind not in _KINDS:
        return _problem(f"unknown record kind {kind!r}")
    problems: List[str] = []
    if kind == "meta":
        if record.get("schema") != SCHEMA_VERSION:
            problems.append(
                f"meta.schema is {record.get('schema')!r}, expected "
                f"{SCHEMA_VERSION}"
            )
        if record.get("level") not in LEVEL_NAMES:
            problems.append(f"meta.level is {record.get('level')!r}, "
                            f"expected one of {LEVEL_NAMES}")
        return problems

    name = record.get("name")
    if not isinstance(name, str) or not name:
        problems.append(f"{kind}.name must be a non-empty string, "
                        f"got {name!r}")

    if kind in ("span", "event"):
        t_ns = record.get("t_ns")
        if not isinstance(t_ns, int) or t_ns < 0:
            problems.append(f"{kind}.t_ns must be a non-negative int, "
                            f"got {t_ns!r}")
        attrs = record.get("attrs", {})
        if not isinstance(attrs, dict):
            problems.append(f"{kind}.attrs must be an object, "
                            f"got {type(attrs).__name__}")
        if kind == "span":
            dur = record.get("dur_ns")
            if not isinstance(dur, int) or dur < 0:
                problems.append(f"span.dur_ns must be a non-negative "
                                f"int, got {dur!r}")
        return problems

    metric_type = record.get("type")
    if metric_type not in _METRIC_TYPES:
        problems.append(f"metric.type is {metric_type!r}, expected one "
                        f"of {_METRIC_TYPES}")
        return problems
    if metric_type in ("counter", "gauge"):
        if not isinstance(record.get("value"), (int, float)):
            problems.append(f"{metric_type} metric needs a numeric "
                            f"'value'")
    else:
        edges = record.get("edges")
        buckets = record.get("buckets")
        if not isinstance(edges, list) or not edges:
            problems.append("histogram metric needs a non-empty "
                            "'edges' list")
        if not isinstance(buckets, list):
            problems.append("histogram metric needs a 'buckets' list")
        elif isinstance(edges, list) and len(buckets) != len(edges) + 1:
            problems.append(
                f"histogram has {len(buckets)} buckets for "
                f"{len(edges)} edges (expected {len(edges) + 1})"
            )
        if not isinstance(record.get("count"), int):
            problems.append("histogram metric needs an int 'count'")
    return problems


def validate_trace(path: Union[str, Path]) -> List[Tuple[int, str]]:
    """All (1-based line number, problem) pairs of a JSONL trace file."""
    problems: List[Tuple[int, str]] = []
    lines = Path(path).read_text(encoding="utf-8").splitlines()
    if not lines:
        return [(0, "trace is empty")]
    for number, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            record: Dict[str, object] = json.loads(line)
        except json.JSONDecodeError as exc:
            problems.append((number, f"not valid JSON: {exc}"))
            continue
        for message in validate_record(record):
            problems.append((number, message))
        if number == 1 and isinstance(record, dict) \
                and record.get("kind") != "meta":
            problems.append((1, "first record must be the meta header"))
    return problems
