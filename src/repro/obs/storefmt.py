"""The sqlite layout shared by the obs sink and the results store.

The embedded results & trace database (``docs/store.md``) is one sqlite
file with two writers: :class:`~repro.obs.sinks.SqliteSink` streams live
telemetry into it during a run, and :mod:`repro.store` ingests finished
JSON exports and JSONL traces into the same file. The layering contract
(DESIGN.md §8) points the dependency arrow ``store -> obs``, never the
other way, so everything both halves must agree on lives here on the
obs side: the schema-version ledger (``store_meta``), the trace
registry (``traces``), the raw record log (``obs_records``), the
record<->row codec, and the buffered batch writer. ``repro.store``
stacks the results tables on top (see :mod:`repro.store.schema`).

Databases are opened in WAL mode with a busy timeout, so concurrent
writers (two sweep processes appending traces, or a sink and an ingest)
serialize on the write lock instead of surfacing ``database is locked``
to callers. Row content carries no wall-clock state: every timestamp is
the emitting record's monotonic ``t_ns``, so re-ingesting the same
trace produces byte-identical rows.
"""

from __future__ import annotations

import json
import sqlite3
import urllib.parse
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

#: Version of the obs half of the store schema (``store_meta`` key
#: ``obs_schema``). Bump on any change to the tables declared here.
OBS_STORE_SCHEMA_VERSION = 1

#: Default rows buffered in memory before a batch writer flushes them
#: in one transaction.
DEFAULT_BATCH_SIZE = 256

#: Default busy timeout: how long a writer waits on the WAL write lock
#: before sqlite gives up (never surfaced in normal operation).
DEFAULT_BUSY_TIMEOUT_S = 10.0

#: Path suffixes the CLI treats as "this trace is a sqlite store".
SQLITE_SUFFIXES = (".sqlite", ".sqlite3", ".db")

#: The 16-byte magic prefix of every sqlite database file.
SQLITE_MAGIC = b"SQLite format 3\x00"

CORE_DDL: Tuple[str, ...] = (
    """
    CREATE TABLE IF NOT EXISTS store_meta (
        key   TEXT PRIMARY KEY,
        value TEXT NOT NULL
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS traces (
        trace_id       INTEGER PRIMARY KEY AUTOINCREMENT,
        label          TEXT,
        source         TEXT NOT NULL,
        level          TEXT,
        schema_version INTEGER,
        clock          TEXT,
        n_records      INTEGER NOT NULL DEFAULT 0
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS obs_records (
        trace_id    INTEGER NOT NULL,
        seq         INTEGER NOT NULL,
        kind        TEXT NOT NULL,
        name        TEXT,
        t_ns        INTEGER,
        dur_ns      INTEGER,
        metric_type TEXT,
        value       REAL,
        attrs       TEXT,
        payload     TEXT,
        PRIMARY KEY (trace_id, seq)
    )
    """,
    """
    CREATE INDEX IF NOT EXISTS idx_obs_records_kind_name
        ON obs_records (trace_id, kind, name)
    """,
)

INSERT_OBS_RECORD = (
    "INSERT INTO obs_records (trace_id, seq, kind, name, t_ns, dur_ns, "
    "metric_type, value, attrs, payload) "
    "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)"
)

#: Column order every record-reading SELECT must use with
#: :func:`row_to_record`.
OBS_RECORD_COLUMNS = ("kind", "name", "t_ns", "dur_ns", "metric_type",
                      "value", "attrs", "payload")

SELECT_OBS_RECORDS = (
    "SELECT " + ", ".join(OBS_RECORD_COLUMNS)
    + " FROM obs_records WHERE trace_id = ? ORDER BY seq"
)


class StoreSchemaError(ValueError):
    """The database's recorded schema is not one this code reads."""


def is_sqlite_path(path: Union[str, Path]) -> bool:
    """True when ``path`` is (or will be) a sqlite store.

    An existing file answers by its magic bytes; a missing one by its
    suffix, so ``--obs-trace trace.sqlite`` creates a store and
    ``--obs-trace trace.jsonl`` a JSONL trace.
    """
    target = Path(path)
    try:
        with open(target, "rb") as handle:
            return handle.read(len(SQLITE_MAGIC)) == SQLITE_MAGIC
    except OSError:
        return target.suffix.lower() in SQLITE_SUFFIXES


def connect(path: Union[str, Path], *, readonly: bool = False,
            busy_timeout_s: float = DEFAULT_BUSY_TIMEOUT_S,
            ) -> sqlite3.Connection:
    """Open a store database: WAL mode, busy timeout armed.

    ``readonly`` opens with sqlite's ``mode=ro`` so queries can never
    create or mutate a store by accident.
    """
    target = Path(path)
    if readonly:
        if not target.is_file():
            raise FileNotFoundError(f"no such store: {target}")
        uri = "file:" + urllib.parse.quote(str(target)) + "?mode=ro"
        conn = sqlite3.connect(uri, uri=True, timeout=busy_timeout_s)
    else:
        if target.parent != Path(""):
            target.parent.mkdir(parents=True, exist_ok=True)
        conn = sqlite3.connect(str(target), timeout=busy_timeout_s)
        # WAL lets a reader summarize a store mid-run and lets two
        # sweep processes append traces without blocking each other.
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=NORMAL")
    conn.execute(f"PRAGMA busy_timeout={int(busy_timeout_s * 1000.0)}")
    return conn


def ensure_core_schema(conn: sqlite3.Connection) -> None:
    """Create the obs-side tables; verify the recorded schema version."""
    with conn:
        for statement in CORE_DDL:
            conn.execute(statement)
        conn.execute(
            "INSERT OR IGNORE INTO store_meta (key, value) VALUES (?, ?)",
            ("obs_schema", str(OBS_STORE_SCHEMA_VERSION)),
        )
    row = conn.execute(
        "SELECT value FROM store_meta WHERE key = 'obs_schema'"
    ).fetchone()
    if row is None or str(row[0]) != str(OBS_STORE_SCHEMA_VERSION):
        recorded = None if row is None else row[0]
        raise StoreSchemaError(
            f"store records obs_schema {recorded!r}; this version reads "
            f"{OBS_STORE_SCHEMA_VERSION} -- refusing to guess at an "
            f"unknown layout"
        )


def schema_versions(conn: sqlite3.Connection) -> Dict[str, str]:
    """Every ``store_meta`` schema ledger entry, keyed by name."""
    return {
        str(key): str(value)
        for key, value in conn.execute(
            "SELECT key, value FROM store_meta ORDER BY key"
        )
    }


def begin_trace(conn: sqlite3.Connection, *, source: str,
                label: Optional[str] = None,
                meta: Optional[Dict[str, object]] = None) -> int:
    """Register a new trace; returns its ``trace_id``.

    The insert commits immediately so concurrent writers each claim a
    distinct id up front (their record rows then never collide).
    """
    level = schema_version = clock = None
    if meta is not None:
        level = meta.get("level")
        schema_version = meta.get("schema")
        clock = meta.get("clock")
    with conn:
        cursor = conn.execute(
            "INSERT INTO traces (label, source, level, schema_version, "
            "clock) VALUES (?, ?, ?, ?, ?)",
            (label, source, level, schema_version, clock),
        )
    row_id = cursor.lastrowid
    assert row_id is not None
    return int(row_id)


def set_trace_meta(conn: sqlite3.Connection, trace_id: int,
                   meta: Dict[str, object]) -> None:
    """Adopt a trace's ``meta`` header record (level/schema/clock)."""
    with conn:
        conn.execute(
            "UPDATE traces SET level = ?, schema_version = ?, clock = ? "
            "WHERE trace_id = ?",
            (meta.get("level"), meta.get("schema"), meta.get("clock"),
             trace_id),
        )


def finish_trace(conn: sqlite3.Connection, trace_id: int,
                 n_records: int) -> None:
    """Record a trace's final record count (meta included)."""
    with conn:
        conn.execute(
            "UPDATE traces SET n_records = ? WHERE trace_id = ?",
            (n_records, trace_id),
        )


def trace_meta_record(level: Optional[str], schema_version: Optional[int],
                      clock: Optional[str]) -> Dict[str, object]:
    """Rebuild the ``meta`` header record from a ``traces`` row."""
    return {"kind": "meta", "schema": schema_version, "level": level,
            "clock": clock}


def _compact(value: object) -> str:
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def record_to_row(trace_id: int, seq: int,
                  record: Dict[str, object]) -> Tuple[object, ...]:
    """Encode one obs record (span/event/metric) as an ``obs_records`` row.

    ``meta`` records live in ``traces``, not here -- encode everything
    the schema knows into typed columns and stash any remaining fields
    in ``payload`` so :func:`row_to_record` round-trips exactly.
    """
    kind = str(record.get("kind", ""))
    name = record.get("name")
    if kind == "metric":
        metric_type = record.get("type")
        value = (record.get("value")
                 if metric_type in ("counter", "gauge") else None)
        rest = {key: val for key, val in record.items()
                if key not in ("kind", "type", "name", "value")}
        payload = _compact(rest) if rest else None
        return (trace_id, seq, kind, name, None, None, metric_type,
                value, None, payload)
    attrs = record.get("attrs")
    attrs_json = _compact(attrs) if attrs is not None else None
    rest = {key: val for key, val in record.items()
            if key not in ("kind", "name", "t_ns", "dur_ns", "attrs")}
    payload = _compact(rest) if rest else None
    return (trace_id, seq, kind, name, record.get("t_ns"),
            record.get("dur_ns"), None, None, attrs_json, payload)


def row_to_record(row: Sequence[object]) -> Dict[str, object]:
    """Decode one :data:`OBS_RECORD_COLUMNS`-ordered row back to a record."""
    kind, name, t_ns, dur_ns, metric_type, value, attrs, payload = row
    if kind == "metric":
        record: Dict[str, object] = {"kind": "metric",
                                     "type": metric_type, "name": name}
        if value is not None:
            record["value"] = value
        if payload:
            record.update(json.loads(str(payload)))
        return record
    record = {"kind": kind, "name": name}
    if t_ns is not None:
        record["t_ns"] = t_ns
    if kind == "span" and dur_ns is not None:
        record["dur_ns"] = dur_ns
    if attrs is not None:
        record["attrs"] = json.loads(str(attrs))
    if payload:
        record.update(json.loads(str(payload)))
    return record


def read_trace_records(conn: sqlite3.Connection,
                       trace_id: int) -> List[Dict[str, object]]:
    """Every record of one trace, decoded, in emission order."""
    return [row_to_record(row)
            for row in conn.execute(SELECT_OBS_RECORDS, (trace_id,))]


class BufferedTableWriter:
    """Appends rows in memory; flushes them as one transaction.

    The pyotter-style batch writer: ``append`` is an in-memory list
    push until ``batch_size`` rows accumulate, then one ``executemany``
    inside a single transaction lands the whole batch. ``flush`` and
    ``close`` drain explicitly; dropping the writer without closing
    loses only unflushed rows, never corrupts the store.
    """

    def __init__(self, conn: sqlite3.Connection, insert_sql: str,
                 batch_size: int = DEFAULT_BATCH_SIZE) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self._conn = conn
        self._insert_sql = insert_sql
        self._batch_size = batch_size
        self._rows: List[Tuple[object, ...]] = []
        self.rows_written = 0

    def append(self, row: Tuple[object, ...]) -> None:
        self._rows.append(row)
        if len(self._rows) >= self._batch_size:
            self.flush()

    def extend(self, rows: Iterable[Tuple[object, ...]]) -> None:
        for row in rows:
            self.append(row)

    def flush(self) -> None:
        if not self._rows:
            return
        with self._conn:
            self._conn.executemany(self._insert_sql, self._rows)
        self.rows_written += len(self._rows)
        self._rows.clear()

    def close(self) -> None:
        self.flush()
