"""Pluggable emission backends of the obs pipeline.

Three sinks cover every use: :class:`NullSink` (the disabled pipeline;
every method is a no-op), :class:`MemorySink` (tests and the worker-side
capture buffer), and :class:`JsonlSink` (runs; one JSON object per line,
flushed per record so forked workers never inherit buffered bytes).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Union


class Sink:
    """Interface: receives schema records, owns its own resources."""

    def emit(self, record: Dict[str, object]) -> None:
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - trivial default
        pass


class NullSink(Sink):
    """Swallows everything; the disabled pipeline's backend."""

    def emit(self, record: Dict[str, object]) -> None:
        pass


class MemorySink(Sink):
    """Keeps records in a list -- the test and capture backend."""

    def __init__(self,
                 records: Optional[List[Dict[str, object]]] = None) -> None:
        self.records: List[Dict[str, object]] = (
            records if records is not None else []
        )

    def emit(self, record: Dict[str, object]) -> None:
        self.records.append(record)

    def of_kind(self, kind: str) -> List[Dict[str, object]]:
        return [record for record in self.records
                if record.get("kind") == kind]

    def named(self, name: str) -> List[Dict[str, object]]:
        return [record for record in self.records
                if record.get("name") == name]


class JsonlSink(Sink):
    """Appends one compact JSON object per record to a file.

    Records are written with sorted keys (deterministic field order) and
    flushed immediately: a sweep that forks workers right after a write
    must not leave half a line in a buffer both processes would flush.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self.path, "w", encoding="utf-8")

    def emit(self, record: Dict[str, object]) -> None:
        if self._handle.closed:
            raise ValueError(f"JSONL sink {self.path} is closed")
        self._handle.write(json.dumps(record, sort_keys=True,
                                      separators=(",", ":")))
        self._handle.write("\n")
        self._handle.flush()

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()
