"""Pluggable emission backends of the obs pipeline.

Four sinks cover every use: :class:`NullSink` (the disabled pipeline;
every method is a no-op), :class:`MemorySink` (tests and the worker-side
capture buffer), :class:`JsonlSink` (runs; one JSON object per line,
flushed per record so forked workers never inherit buffered bytes), and
:class:`SqliteSink` (runs with ``--obs-trace foo.sqlite``; records
stream into the embedded results & trace store -- see docs/store.md).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.obs import storefmt


class Sink:
    """Interface: receives schema records, owns its own resources."""

    def emit(self, record: Dict[str, object]) -> None:
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - trivial default
        pass


class NullSink(Sink):
    """Swallows everything; the disabled pipeline's backend."""

    def emit(self, record: Dict[str, object]) -> None:
        pass


class MemorySink(Sink):
    """Keeps records in a list -- the test and capture backend."""

    def __init__(self,
                 records: Optional[List[Dict[str, object]]] = None) -> None:
        self.records: List[Dict[str, object]] = (
            records if records is not None else []
        )

    def emit(self, record: Dict[str, object]) -> None:
        self.records.append(record)

    def of_kind(self, kind: str) -> List[Dict[str, object]]:
        return [record for record in self.records
                if record.get("kind") == kind]

    def named(self, name: str) -> List[Dict[str, object]]:
        return [record for record in self.records
                if record.get("name") == name]


class JsonlSink(Sink):
    """Appends one compact JSON object per record to a file.

    Records are written with sorted keys (deterministic field order) and
    flushed immediately: a sweep that forks workers right after a write
    must not leave half a line in a buffer both processes would flush.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self.path, "w", encoding="utf-8")

    def emit(self, record: Dict[str, object]) -> None:
        if self._handle.closed:
            raise ValueError(f"JSONL sink {self.path} is closed")
        self._handle.write(json.dumps(record, sort_keys=True,
                                      separators=(",", ":")))
        self._handle.write("\n")
        self._handle.flush()

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()


class SqliteSink(Sink):
    """Streams records into the embedded results & trace store.

    The same records :class:`JsonlSink` writes as lines land here as
    rows of the store's ``obs_records`` table, appended through a
    buffered batch writer (``batch_size`` rows buffered in memory, then
    one transaction -- see :mod:`repro.obs.storefmt`). Each configured
    pipeline session registers one new row of ``traces``; pointing two
    runs at the same file *appends* a second trace, it never truncates
    the first, which is how a resumed sweep keeps one queryable record
    set across restarts.

    Fork safety follows the ``Obs.capture()/absorb()`` contract: the
    connection belongs to the process that opened it. A forked worker
    must buffer its records with ``OBS.capture`` and ship them back for
    the parent to ``absorb``; a stray ``emit`` from a child raises
    instead of corrupting the WAL, and a child-side ``close`` is a
    no-op so an inherited handle's locks are never released twice.
    """

    def __init__(self, path: Union[str, Path],
                 label: Optional[str] = None,
                 batch_size: int = storefmt.DEFAULT_BATCH_SIZE) -> None:
        self.path = Path(path)
        self._conn = storefmt.connect(self.path)
        storefmt.ensure_core_schema(self._conn)
        self.trace_id = storefmt.begin_trace(self._conn, source="live",
                                             label=label)
        self._writer = storefmt.BufferedTableWriter(
            self._conn, storefmt.INSERT_OBS_RECORD, batch_size)
        self._n_records = 0
        self._seq = 0
        self._pid = os.getpid()
        self._closed = False

    def emit(self, record: Dict[str, object]) -> None:
        if self._closed:
            raise ValueError(f"sqlite sink {self.path} is closed")
        if os.getpid() != self._pid:
            raise RuntimeError(
                f"sqlite sink {self.path} crossed a fork: workers must "
                f"buffer records with OBS.capture() and let the parent "
                f"absorb() them"
            )
        self._n_records += 1
        if record.get("kind") == "meta":
            # The header lives in the trace registry, not the row log.
            storefmt.set_trace_meta(self._conn, self.trace_id, record)
            return
        self._seq += 1
        self._writer.append(
            storefmt.record_to_row(self.trace_id, self._seq, record))

    def flush(self) -> None:
        """Land buffered rows now (one transaction)."""
        if not self._closed and os.getpid() == self._pid:
            self._writer.flush()

    def close(self) -> None:
        if self._closed or os.getpid() != self._pid:
            return
        self._writer.close()
        storefmt.finish_trace(self._conn, self.trace_id, self._n_records)
        self._conn.close()
        self._closed = True
