"""Summarize a JSONL obs trace: phase timeline plus per-metric tables.

The rendering core is :mod:`repro.metrics.ascii_chart` (the same bars
``starnuma run fig8`` prints) plus the project's monospace table
formatter, so ``starnuma obs summary`` needs no plotting stack.
"""

from __future__ import annotations

import json
from collections import OrderedDict
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Tuple, Union

from repro.metrics.ascii_chart import bar_chart
from repro.metrics.report import format_table

#: Span name whose instances form the phase timeline.
PHASE_SPAN = "sim.phase"


def iter_trace(path: Union[str, Path]) -> Iterator[Dict[str, object]]:
    """Yield the records of a JSONL trace one line at a time.

    This is the streaming entry point ``starnuma obs summary`` folds
    through: memory stays bounded by the summary state, not the trace
    size, so a multi-gigabyte sweep trace summarizes in constant space.
    Invalid JSON raises, exactly as :func:`read_trace` would.
    """
    with open(Path(path), encoding="utf-8") as handle:
        for line in handle:
            if line.strip():
                yield json.loads(line)


def read_trace(path: Union[str, Path]) -> List[Dict[str, object]]:
    """Parse every record of a JSONL trace (invalid lines raise).

    Materializes the whole trace; prefer :func:`iter_trace` plus
    :func:`summarize_records` when only the summary is needed.
    """
    return list(iter_trace(path))


def summarize_records(
        records: Iterable[Dict[str, object]]) -> Dict[str, object]:
    """Fold records into the structures :func:`render_summary` prints.

    Accepts any iterable -- a list, :func:`iter_trace`, or a store
    cursor -- and holds only the folded state (per-name span/event
    aggregates, the phase timeline, and metric summary records), never
    the records themselves.
    """
    meta: Dict[str, object] = {}
    spans: "OrderedDict[str, Dict[str, float]]" = OrderedDict()
    phase_ns: "OrderedDict[object, float]" = OrderedDict()
    events: "OrderedDict[str, int]" = OrderedDict()
    metrics: List[Dict[str, object]] = []
    n_records = 0

    for record in records:
        n_records += 1
        kind = record.get("kind")
        if kind == "meta":
            meta = record
        elif kind == "span":
            name = str(record.get("name"))
            entry = spans.setdefault(
                name, {"count": 0, "total_ns": 0.0}
            )
            entry["count"] += 1
            entry["total_ns"] += float(record.get("dur_ns", 0))
            if name == PHASE_SPAN:
                attrs = record.get("attrs") or {}
                phase = attrs.get("phase", len(phase_ns))
                phase_ns[phase] = (phase_ns.get(phase, 0.0)
                                   + float(record.get("dur_ns", 0)))
        elif kind == "event":
            name = str(record.get("name"))
            events[name] = events.get(name, 0) + 1
        elif kind == "metric":
            metrics.append(record)

    return {
        "meta": meta,
        "n_records": n_records,
        "spans": spans,
        "phase_ns": phase_ns,
        "events": events,
        "metrics": metrics,
    }


def summarize_trace(records: List[Dict[str, object]]) -> Dict[str, object]:
    """Fold a materialized trace (compatibility alias)."""
    return summarize_records(records)


def _format_ms(ns: float) -> float:
    return ns / 1e6


def render_summary(summary: Dict[str, object], width: int = 40) -> str:
    """The text report of ``starnuma obs summary``."""
    parts: List[str] = []
    meta = summary["meta"]
    parts.append(
        f"[obs] {summary['n_records']} records, level "
        f"{meta.get('level', '?')}, schema {meta.get('schema', '?')}"
    )

    phase_ns: Dict[object, float] = summary["phase_ns"]  # type: ignore
    if phase_ns:
        items: List[Tuple[str, float]] = [
            (f"phase {phase}", _format_ms(total))
            for phase, total in sorted(phase_ns.items(),
                                       key=lambda kv: str(kv[0]))
        ]
        parts.append("")
        parts.append(bar_chart(items, width=width,
                               title="phase timeline (eval ms):",
                               unit=" ms", max_label=24))

    spans: Dict[str, Dict[str, float]] = summary["spans"]  # type: ignore
    if spans:
        rows = [
            (name, int(entry["count"]), _format_ms(entry["total_ns"]),
             _format_ms(entry["total_ns"] / entry["count"]))
            for name, entry in sorted(spans.items())
        ]
        parts.append("")
        parts.append(format_table(
            ("span", "count", "total ms", "mean ms"), rows,
            title="spans:",
        ))

    events: Dict[str, int] = summary["events"]  # type: ignore
    if events:
        rows = [(name, count) for name, count in sorted(events.items())]
        parts.append("")
        parts.append(format_table(("event", "count"), rows,
                                  title="events:"))

    metrics: List[Dict[str, object]] = summary["metrics"]  # type: ignore
    if metrics:
        rows = []
        for metric in sorted(metrics, key=lambda m: str(m.get("name"))):
            if metric.get("type") == "histogram":
                count = int(metric.get("count", 0))
                total = float(metric.get("total", 0.0))
                mean = total / count if count else 0.0
                rows.append((metric["name"], "histogram",
                             f"n={count} mean={mean:.2f}"))
            else:
                rows.append((metric["name"], str(metric.get("type")),
                             f"{float(metric.get('value', 0.0)):g}"))
        parts.append("")
        parts.append(format_table(("metric", "type", "value"), rows,
                                  title="metrics:"))

    return "\n".join(parts)
