"""Streaming sinks: push each obs record to a callback as it happens.

The JSONL and memory sinks buffer records for *later* inspection; a
long-lived service wants them *now* -- ``starnuma serve`` streams span
and event records to attached SSE clients while a job is still
running. :class:`CallbackSink` is that bridge: every record emitted by
the pipeline is handed to a callback, synchronously, in emission order.

A callback that raises must not take the instrumented computation down
with it (telemetry stays inert); failures are counted on the sink and
the record is dropped. :class:`TeeSink` fans one pipeline out to
several sinks -- e.g. a run that both writes its JSONL trace and
streams to subscribers.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence

from repro.obs.sinks import Sink


class CallbackSink(Sink):
    """Forwards every record to ``callback(record)`` at emission time.

    The callback must be fast (it runs inside the instrumented code
    path) and must not mutate the record (downstream sinks may see the
    same dict). Exceptions raised by the callback are swallowed and
    counted in :attr:`dropped` so instrumentation can never crash the
    computation it observes.
    """

    def __init__(self, callback: Callable[[Dict[str, object]], None]) -> None:
        self._callback = callback
        #: Records lost to a raising callback (observable by tests).
        self.dropped = 0

    def emit(self, record: Dict[str, object]) -> None:
        try:
            self._callback(record)
        except Exception:
            self.dropped += 1


class TeeSink(Sink):
    """Replicates each record to every child sink, in order.

    ``close()`` closes only the sinks the tee *owns* (passed via
    ``owned``); borrowed sinks -- e.g. the process-global JSONL trace a
    service keeps across jobs -- stay open.
    """

    def __init__(self, sinks: Sequence[Sink],
                 owned: Sequence[Sink] = ()) -> None:
        self._sinks = list(sinks)
        self._owned = list(owned)

    def emit(self, record: Dict[str, object]) -> None:
        for sink in self._sinks:
            sink.emit(record)

    def close(self) -> None:
        for sink in self._owned:
            sink.close()
