"""The ``starnuma`` root logger behind ``--verbose``/``--quiet``.

All operator-facing diagnostics (sweep events, retries, errors) flow
through ``logging.getLogger("starnuma")`` to stderr; stdout stays
reserved for tables, charts, and machine-readable output, byte for byte.
The handler resolves ``sys.stderr`` at emit time, so output lands on the
stream active *now* (pytest's capsys swaps it per test).
"""

from __future__ import annotations

import logging
import sys
from typing import TextIO

LOGGER_NAME = "starnuma"


class _DynamicStderrHandler(logging.StreamHandler):
    """A stream handler pinned to whatever ``sys.stderr`` currently is."""

    def __init__(self) -> None:
        super().__init__(sys.stderr)

    @property
    def stream(self) -> "TextIO":  # type: ignore[override]
        return sys.stderr

    @stream.setter
    def stream(self, value: object) -> None:
        pass


def get_logger() -> logging.Logger:
    return logging.getLogger(LOGGER_NAME)


def setup_logging(verbose: bool = False, quiet: bool = False) -> logging.Logger:
    """(Re)configure the starnuma logger; idempotent across CLI calls.

    ``--quiet`` keeps warnings and errors only; ``--verbose`` opens the
    debug level; the default is info (sweep progress events).
    """
    logger = get_logger()
    for handler in list(logger.handlers):
        logger.removeHandler(handler)
    handler = _DynamicStderrHandler()
    handler.setFormatter(logging.Formatter("starnuma: %(message)s"))
    logger.addHandler(handler)
    logger.propagate = False
    if quiet:
        logger.setLevel(logging.WARNING)
    elif verbose:
        logger.setLevel(logging.DEBUG)
    else:
        logger.setLevel(logging.INFO)
    return logger
