"""The obs facade: one process-global pipeline, written to by model code.

Model code interacts with exactly seven write-side members of the
global :data:`OBS` object -- ``enabled``, :meth:`Obs.span`,
:meth:`Obs.event`, :meth:`Obs.detail`, :meth:`Obs.counter`,
:meth:`Obs.gauge`, and :meth:`Obs.observe`. Everything else (reading
metric values, draining captured records) is operator-side API, and the
``obs-purity`` lint rule keeps it out of the simulation packages so
telemetry can never feed back into results.

Disabled is the default and costs one attribute load plus a branch per
call site: every entry point starts with ``if not self.enabled: return``
and :meth:`Obs.span` hands back a shared no-op context manager.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence

from repro.obs.events import LEVEL_NAMES, SCHEMA_VERSION
from repro.obs.registry import MetricsRegistry
from repro.obs.sinks import (JsonlSink, MemorySink, NullSink, Sink,
                             SqliteSink)
from repro.obs.storefmt import is_sqlite_path

_LEVEL_RANK = {name: rank for rank, name in enumerate(LEVEL_NAMES, start=1)}


class _NullSpan:
    """The shared do-nothing span of a disabled pipeline."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass

    def set(self, **attrs: object) -> None:
        pass


_NULL_SPAN = _NullSpan()


class _Span:
    """A live timed region; emits one ``span`` record on exit."""

    __slots__ = ("_obs", "name", "attrs", "_t0")

    def __init__(self, obs: "Obs", name: str,
                 attrs: Dict[str, object]) -> None:
        self._obs = obs
        self.name = name
        self.attrs = attrs
        self._t0 = 0

    def __enter__(self) -> "_Span":
        self._t0 = self._obs._now()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._obs._emit({
            "kind": "span",
            "name": self.name,
            "t_ns": self._t0,
            "dur_ns": self._obs._now() - self._t0,
            "attrs": self.attrs,
        })

    def set(self, **attrs: object) -> None:
        """Attach attributes discovered while the span is open."""
        self.attrs.update(attrs)


class Obs:
    """One instrumentation pipeline: a sink, a level, and a registry."""

    def __init__(self) -> None:
        self.enabled = False
        self._level_rank = _LEVEL_RANK["basic"]
        self._sink: Sink = NullSink()
        self._registry = MetricsRegistry()
        self._t0_ns = 0
        self.trace_path: Optional[str] = None

    # -- lifecycle (operator side) -----------------------------------------

    def configure(self, sink: Sink, level: str = "basic") -> None:
        """Arm the pipeline; emits the trace's ``meta`` header record."""
        if level not in _LEVEL_RANK:
            raise ValueError(f"level must be one of {LEVEL_NAMES}, "
                             f"got {level!r}")
        if self.enabled:
            raise RuntimeError("obs pipeline is already configured; "
                               "shut it down first")
        self._sink = sink
        self._level_rank = _LEVEL_RANK[level]
        self._registry = MetricsRegistry()
        self._t0_ns = time.monotonic_ns()
        self.trace_path = (str(sink.path)
                           if isinstance(sink, (JsonlSink, SqliteSink))
                           else None)
        self.enabled = True
        self._sink.emit({
            "kind": "meta",
            "schema": SCHEMA_VERSION,
            "level": level,
            "clock": "monotonic_ns",
        })

    def shutdown(self) -> None:
        """Flush metric summaries, close the sink, return to disabled."""
        if not self.enabled:
            return
        for record in self._registry.flush_records():
            self._sink.emit(record)
        self._sink.close()
        self._sink = NullSink()
        self._registry = MetricsRegistry()
        self.enabled = False
        self.trace_path = None

    @contextmanager
    def redirect(self, sink: Sink) -> Iterator[None]:
        """Run a block against ``sink`` and an isolated registry.

        The block's spans and events go to ``sink`` *as they happen*
        (streaming -- this is how a serve worker bridges span records
        to SSE subscribers mid-job); metric deltas accumulated inside
        the block are flushed to ``sink`` as ``metric`` records on
        exit. The previous sink and registry are restored afterwards.
        No-op (still yields) when the pipeline is disabled.
        """
        if not self.enabled:
            yield
            return
        previous_sink = self._sink
        previous_registry = self._registry
        self._sink = sink
        self._registry = MetricsRegistry()
        try:
            yield
        finally:
            isolated_registry = self._registry
            self._sink = previous_sink
            self._registry = previous_registry
            for record in isolated_registry.flush_records():
                sink.emit(record)

    @contextmanager
    def capture(self,
                records: List[Dict[str, object]]) -> Iterator[None]:
        """Run a block against an isolated sink *and* registry.

        Spans and events land in ``records`` as they happen; metric
        deltas accumulated inside the block are appended as ``metric``
        records on exit. Used by forked sweep workers: the child
        inherits an armed pipeline whose JSONL handle (and registry
        totals) belong to the parent, so it buffers everything in
        memory and ships it back with the task outcome; the parent
        replays with :meth:`absorb`. No-op (still yields) when the
        pipeline is disabled.
        """
        with self.redirect(MemorySink(records)):
            yield

    def emit_raw(self, record: Dict[str, object]) -> None:
        """Forward an already-formed record (worker-replay path)."""
        if not self.enabled:
            return
        self._sink.emit(record)

    def absorb(self, record: Dict[str, object]) -> None:
        """Fold one captured record back into this pipeline.

        Spans and events are forwarded to the sink unchanged; metric
        deltas are merged into the live registry so the final flush
        reports whole-sweep totals even when tasks ran in workers.
        """
        if not self.enabled:
            return
        if record.get("kind") != "metric":
            self._sink.emit(record)
            return
        name = str(record["name"])
        metric_type = record.get("type")
        if metric_type == "counter":
            self._registry.counter(name).add(float(record["value"]))  # type: ignore[arg-type]
        elif metric_type == "gauge":
            self._registry.gauge(name).set(float(record["value"]))  # type: ignore[arg-type]
        elif metric_type == "histogram":
            histogram = self._registry.histogram(
                name, record["edges"]  # type: ignore[arg-type]
            )
            for index, count in enumerate(record["buckets"]):  # type: ignore[arg-type]
                histogram.bucket_counts[index] += int(count)
            histogram.count += int(record["count"])  # type: ignore[arg-type]
            histogram.total += float(record["total"])  # type: ignore[arg-type]

    # -- write side (model code) -------------------------------------------

    def span(self, name: str, **attrs: object) -> "_Span | _NullSpan":
        """A timed region; ``with OBS.span("sim.phase", phase=3): ...``"""
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, name, attrs)

    def event(self, name: str, **attrs: object) -> None:
        """A basic-level point event."""
        if not self.enabled:
            return
        self._emit({"kind": "event", "name": name, "t_ns": self._now(),
                    "attrs": attrs})

    def detail(self, name: str, **attrs: object) -> None:
        """A point event emitted only at the ``detail`` level."""
        if not self.enabled or self._level_rank < _LEVEL_RANK["detail"]:
            return
        self._emit({"kind": "event", "name": name, "t_ns": self._now(),
                    "attrs": attrs})

    def counter(self, name: str, amount: float = 1.0) -> None:
        if not self.enabled:
            return
        self._registry.counter(name).add(amount)

    def gauge(self, name: str, value: float) -> None:
        if not self.enabled:
            return
        self._registry.gauge(name).set(value)

    def observe(self, name: str, value: float,
                edges: Optional[Sequence[float]] = None) -> None:
        if not self.enabled:
            return
        self._registry.histogram(name, edges).observe(value)

    # -- operator-side inspection ------------------------------------------

    def metrics_snapshot(self) -> List[Dict[str, object]]:
        """The registry's current summary records (tests/tooling only)."""
        return self._registry.flush_records()

    # -- internals ----------------------------------------------------------

    def _now(self) -> int:
        return time.monotonic_ns() - self._t0_ns

    def _emit(self, record: Dict[str, object]) -> None:
        self._sink.emit(record)


#: The process-global pipeline every instrumentation site writes to.
OBS = Obs()


def configure(trace_path: Optional[str] = None, level: str = "basic",
              sink: Optional[Sink] = None) -> Obs:
    """Arm the global pipeline (``sink`` wins over ``trace_path``).

    A ``trace_path`` with a sqlite suffix (``.sqlite``/``.sqlite3``/
    ``.db``) -- or one that already holds a sqlite store -- streams
    into the embedded results store through :class:`SqliteSink`;
    anything else gets the classic JSONL trace.
    """
    if sink is None:
        if not trace_path:
            sink = MemorySink()
        elif is_sqlite_path(trace_path):
            sink = SqliteSink(trace_path)
        else:
            sink = JsonlSink(trace_path)
    OBS.configure(sink, level=level)
    return OBS


def shutdown() -> None:
    """Flush and disarm the global pipeline (idempotent)."""
    OBS.shutdown()
