"""``repro.obs``: zero-overhead-when-disabled instrumentation.

The subsystem has four small parts:

* a typed **metrics registry** (:mod:`repro.obs.registry`) -- counters,
  gauges, and histograms with fixed bucket edges, flushed as summary
  records when the pipeline shuts down;
* **span tracing** with monotonic-clock timing and point **events**,
  both emitted through the global :data:`OBS` facade
  (:mod:`repro.obs.core`);
* pluggable **sinks** (:mod:`repro.obs.sinks`): a null sink that turns
  every emission into a no-op, an in-memory sink for tests, and a JSONL
  file sink for runs;
* an **event schema** (:mod:`repro.obs.events`) with a validator, and a
  **summary renderer** (:mod:`repro.obs.summary`) behind
  ``starnuma obs``.

Model code (``repro.sim``, ``repro.migration``, ...) only ever imports
the :data:`OBS` facade and only ever *writes* to it -- the ``obs-purity``
lint rule forbids reading telemetry back, so instrumentation can never
feed into simulation results. Every write-side entry point returns
immediately when the pipeline is disabled; hot loops additionally guard
on :attr:`Obs.enabled` so a disabled run pays a single branch.
"""

from repro.obs.core import OBS, Obs, configure, shutdown
from repro.obs.events import (
    SCHEMA_VERSION,
    ObsSchemaError,
    validate_record,
    validate_trace,
)
from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.sinks import JsonlSink, MemorySink, NullSink, Sink, SqliteSink
from repro.obs.stream import CallbackSink, TeeSink
from repro.obs.summary import (
    iter_trace,
    read_trace,
    render_summary,
    summarize_records,
    summarize_trace,
)

__all__ = [
    "OBS",
    "Obs",
    "configure",
    "shutdown",
    "SCHEMA_VERSION",
    "ObsSchemaError",
    "validate_record",
    "validate_trace",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Sink",
    "NullSink",
    "MemorySink",
    "JsonlSink",
    "SqliteSink",
    "CallbackSink",
    "TeeSink",
    "iter_trace",
    "read_trace",
    "render_summary",
    "summarize_records",
    "summarize_trace",
]
