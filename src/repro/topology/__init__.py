"""Topology model of the hierarchical multi-socket system.

The paper's target machine (Fig. 1) is a 16-socket HPE Superdome FLEX
class system: four chassis of four sockets each. Sockets within a chassis
are connected all-to-all with UPI links; each chassis additionally hosts
FLEX ASICs whose NUMALinks connect every chassis pair directly. StarNUMA
adds a CXL memory pool connected to every socket in a star.

This package models sockets, chassis, links and routes, and classifies a
memory access by its topological distance (local, intra-chassis,
inter-chassis, or pool).
"""

from repro.topology.model import (
    POOL_LOCATION,
    AccessType,
    DirectedLink,
    Link,
    LinkKind,
    Topology,
)
from repro.topology.routing import RouteTable

__all__ = [
    "POOL_LOCATION",
    "AccessType",
    "DirectedLink",
    "Link",
    "LinkKind",
    "RouteTable",
    "Topology",
]
