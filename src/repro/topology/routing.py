"""Route construction over the hierarchical interconnect.

A route is the ordered list of :class:`DirectedLink` traversals a request
takes from the requesting socket to the memory that homes the target page
(requester -> memory order). The data fill travels the same links in the
opposite direction. Routes are precomputed for every (socket, location)
pair and cached, since route lookup is on the hot path of the timing model.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.topology.model import (
    POOL_LOCATION,
    AccessType,
    DirectedLink,
    Topology,
)

Route = Tuple[DirectedLink, ...]


class RouteTable:
    """Precomputed request routes for every (requester, location) pair."""

    def __init__(self, topology: Topology):
        self.topology = topology
        self._routes: Dict[Tuple[int, int], Route] = {}
        for requester in topology.sockets():
            for location in topology.locations():
                self._routes[(requester, location)] = self._build_route(
                    requester, location
                )

    def route(self, requester: int, location: int) -> Route:
        """Return the request route from ``requester`` to ``location``.

        The route excludes on-socket resources of the requester and ends at
        the DRAM channel bundle of the destination. A local access therefore
        consists of just the local DRAM hop.
        """
        try:
            return self._routes[(requester, location)]
        except KeyError:
            raise ValueError(
                f"no route from socket {requester} to location {location}"
            ) from None

    def block_transfer_route(self, requester: int, owner: int,
                             home: int) -> Route:
        """Route of the data-carrying hop of a coherence block transfer.

        For a socket-homed block the 3-hop optimization sends the data
        directly owner -> requester; for a pool-homed block the data flows
        owner -> pool -> requester over the two CXL links (Fig. 4). The
        returned route is expressed in data-source -> requester order, with
        each traversal's ``forward`` flag already oriented for the data
        movement, so callers charge it directly (no reversal).
        """
        topology = self.topology
        if home == POOL_LOCATION:
            if not topology.has_pool:
                raise ValueError("pool block transfer on a pool-less system")
            owner_leg = DirectedLink(
                topology.link(topology.cxl_link_id(owner)), forward=True
            )
            requester_leg = DirectedLink(
                topology.link(topology.cxl_link_id(requester)), forward=False
            )
            return (owner_leg, requester_leg)
        # Socket home: data hop is the owner -> requester leg of the 3-hop
        # transfer. Reuse the inter-socket route, dropping the DRAM hop
        # since the block is sourced from the owner's cache.
        if owner == requester:
            return ()
        inter_socket = self._socket_to_socket_links(owner, requester)
        return tuple(inter_socket)

    def interconnect_hops(self, requester: int, location: int) -> int:
        """Number of coherent-link traversals on the route (0 for local)."""
        from repro.topology.model import LinkKind

        return sum(
            1 for hop in self.route(requester, location)
            if hop.link.kind is not LinkKind.DRAM
        )

    # -- construction ------------------------------------------------------

    def _build_route(self, requester: int, location: int) -> Route:
        topology = self.topology
        hops: List[DirectedLink] = []
        if location == POOL_LOCATION:
            hops.append(DirectedLink(
                topology.link(topology.cxl_link_id(requester)), forward=True
            ))
        elif location != requester:
            hops.extend(self._socket_to_socket_links(requester, location))
        hops.append(DirectedLink(
            topology.link(topology.dram_link_id(location)), forward=True
        ))
        return tuple(hops)

    def _socket_to_socket_links(self, src: int, dst: int) -> List[DirectedLink]:
        """Coherent-link traversals from socket ``src`` to socket ``dst``."""
        topology = self.topology
        if src == dst:
            return []
        if topology.same_chassis(src, dst):
            link = topology.link(topology.upi_peer_link_id(src, dst))
            # Forward orientation of a peer link is low-id -> high-id.
            return [DirectedLink(link, forward=src < dst)]
        chassis_src = topology.chassis_of(src)
        chassis_dst = topology.chassis_of(dst)
        numalink = topology.link(topology.numalink_id(chassis_src, chassis_dst))
        return [
            DirectedLink(topology.link(topology.upi_asic_link_id(src)),
                         forward=True),
            DirectedLink(numalink, forward=chassis_src < chassis_dst),
            DirectedLink(topology.link(topology.upi_asic_link_id(dst)),
                         forward=False),
        ]


def average_block_transfer_latency_ns(topology: Topology) -> float:
    """Average unloaded 3-hop transfer network latency over R/H/O combos.

    Section III-C derives 333 ns for the 16-socket system by averaging the
    cumulative latency of the three traversed legs (requester -> home ->
    owner -> requester) over all possible socket placements with a remote
    owner. Each leg is a *one-way* traversal, i.e. half of the round-trip
    penalty: 25 ns within a chassis and 140 ns across chassis. On the
    default 16-socket layout this evaluates to ~329 ns, matching the
    paper's 333 ns anchor to within about 1%.
    """
    latency = topology.config.latency

    def leg_one_way_ns(a: int, b: int) -> float:
        if a == b:
            return 0.0
        if topology.same_chassis(a, b):
            return latency.intra_chassis_penalty_ns / 2.0
        return latency.inter_chassis_penalty_ns / 2.0

    total = 0.0
    count = 0
    n = topology.n_sockets
    for requester in range(n):
        for home in range(n):
            for owner in range(n):
                if owner == requester:
                    continue
                total += (leg_one_way_ns(requester, home)
                          + leg_one_way_ns(home, owner)
                          + leg_one_way_ns(owner, requester))
                count += 1
    if count == 0:
        return 0.0
    return total / count
