"""Route construction over the hierarchical interconnect.

A route is the ordered list of :class:`DirectedLink` traversals a request
takes from the requesting socket to the memory that homes the target page
(requester -> memory order). The data fill travels the same links in the
opposite direction. Routes are precomputed for every (socket, location)
pair and cached, since route lookup is on the hot path of the timing model.
"""

from __future__ import annotations

import hashlib
from collections import deque
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

if TYPE_CHECKING:
    from repro.topology.linkindex import CompiledRoute

from repro.topology.model import (
    POOL_LOCATION,
    AccessType,
    DirectedLink,
    LinkKind,
    Topology,
)

Route = Tuple[DirectedLink, ...]

#: Coherent-link hop count of each access class on the ideal fabric.
NOMINAL_HOPS = {
    AccessType.LOCAL: 0,
    AccessType.INTRA_CHASSIS: 1,
    AccessType.INTER_CHASSIS: 3,
    AccessType.POOL: 1,
}

#: Graph nodes of the coherent fabric: sockets, FLEX ASICs, the pool.
_Node = Tuple[str, int]


class RouteTable:
    """Precomputed request routes for every (requester, location) pair.

    On the ideal topology every route is hand-built from the hierarchy
    (fast, and byte-for-byte the historical construction). When links are
    missing -- a :class:`~repro.faults.FaultedTopology` -- construction
    falls back to a breadth-first search over the surviving link graph,
    so traffic reroutes around failures (a dead UPI peer link detours
    through the chassis ASIC, a dead NUMALink bundle through a third
    chassis, a dead CXL link through a neighbour socket's CXL port).
    Detoured routes remember the extra unloaded latency of their longer
    path; :meth:`detour_penalty_ns` reports it to the timing model. If no
    path survives, a structured
    :class:`~repro.faults.PartitionedTopologyError` is raised.
    """

    def __init__(self, topology: Topology):
        self.topology = topology
        self._routes: Dict[Tuple[int, int], Route] = {}
        self._compiled: Dict[Tuple[int, int], "CompiledRoute"] = {}
        self._detour_ns: Dict[Tuple[int, int], float] = {}
        self._graph: Optional[Dict[_Node, List[Tuple[_Node, DirectedLink]]]] = None
        self._fingerprint: Optional[str] = None
        for requester in topology.sockets():
            for location in topology.locations():
                self._routes[(requester, location)] = self._build_route(
                    requester, location
                )

    def route(self, requester: int, location: int) -> Route:
        """Return the request route from ``requester`` to ``location``.

        The route excludes on-socket resources of the requester and ends at
        the DRAM channel bundle of the destination. A local access therefore
        consists of just the local DRAM hop.
        """
        try:
            return self._routes[(requester, location)]
        except KeyError:
            raise ValueError(
                f"no route from socket {requester} to location {location}"
            ) from None

    def detour_penalty_ns(self, requester: int, location: int) -> float:
        """Extra unloaded latency of a fault-detoured route (0 if direct)."""
        return self._detour_ns.get((requester, location), 0.0)

    def compiled(self, requester: int, location: int) -> "CompiledRoute":
        """Flat slot-array form of :meth:`route` (cached per pair).

        Compiled against this table's topology, so a faulted table's
        compiled routes index the faulted link inventory.
        """
        key = (requester, location)
        compiled = self._compiled.get(key)
        if compiled is None:
            compiled = self.topology.link_index().compile_route(
                self.route(requester, location)
            )
            self._compiled[key] = compiled
        return compiled

    def fingerprint(self) -> str:
        """Content hash of everything a compiled timing kernel depends on.

        Two route tables with equal fingerprints produce identical
        compiled incidence matrices and unloaded-latency geometry: the
        hash covers the link inventory in iteration order (which fixes
        the dense slot assignment), per-link kinds and capacities, the
        unloaded latency of every access class (including fault latency
        factors), every (requester, location) route hop by hop, and the
        detour penalties of rerouted paths. Fault states whose reroutes
        collapse to the same surviving geometry therefore share one
        fingerprint, which the timing layer uses to dedupe kernel
        compilation across fault states.
        """
        if self._fingerprint is not None:
            return self._fingerprint
        topology = self.topology
        parts: List[str] = [
            "route-table-v1",
            f"n_sockets={topology.n_sockets}",
            f"has_pool={topology.has_pool}",
        ]
        for link_id, link in topology.links.items():
            parts.append(
                f"link:{link_id}:{link.kind.value}:{link.capacity_gbps!r}"
            )
        for access_type in AccessType:
            parts.append(
                f"lat:{access_type.value}:"
                f"{topology.unloaded_latency_ns(access_type)!r}"
            )
        for (requester, location), route in sorted(self._routes.items()):
            hops = ",".join(
                f"{hop.link.link_id}:{int(hop.forward)}" for hop in route
            )
            detour = self._detour_ns.get((requester, location), 0.0)
            kind = topology.classify(requester, location)
            parts.append(
                f"route:{requester}:{location}:{kind.value}:"
                f"{hops}:{detour!r}"
            )
        digest = hashlib.sha256("\n".join(parts).encode()).hexdigest()
        self._fingerprint = digest
        return digest

    def block_transfer_route(self, requester: int, owner: int,
                             home: int) -> Route:
        """Route of the data-carrying hop of a coherence block transfer.

        For a socket-homed block the 3-hop optimization sends the data
        directly owner -> requester; for a pool-homed block the data flows
        owner -> pool -> requester over the two CXL links (Fig. 4). The
        returned route is expressed in data-source -> requester order, with
        each traversal's ``forward`` flag already oriented for the data
        movement, so callers charge it directly (no reversal).
        """
        topology = self.topology
        if home == POOL_LOCATION:
            if not topology.has_pool:
                raise ValueError("pool block transfer on a pool-less system")
            # Built from the cached (possibly fault-detoured) pool routes:
            # owner -> pool as-is, then pool -> requester by reversing the
            # requester's route. On the ideal fabric this reduces to the
            # two direct CXL hops of Fig. 4.
            owner_leg = tuple(
                hop for hop in self.route(owner, POOL_LOCATION)
                if hop.link.kind is not LinkKind.DRAM
            )
            requester_hops = [
                hop for hop in self.route(requester, POOL_LOCATION)
                if hop.link.kind is not LinkKind.DRAM
            ]
            requester_leg = tuple(
                hop.reversed() for hop in reversed(requester_hops)
            )
            return owner_leg + requester_leg
        # Socket home: data hop is the owner -> requester leg of the 3-hop
        # transfer. Reuse the inter-socket route, dropping the DRAM hop
        # since the block is sourced from the owner's cache.
        if owner == requester:
            return ()
        return self.route(owner, requester)[:-1]

    def interconnect_hops(self, requester: int, location: int) -> int:
        """Number of coherent-link traversals on the route (0 for local)."""
        return sum(
            1 for hop in self.route(requester, location)
            if hop.link.kind is not LinkKind.DRAM
        )

    # -- construction ------------------------------------------------------

    def _build_route(self, requester: int, location: int) -> Route:
        try:
            return self._direct_route(requester, location)
        except KeyError:
            # A link of the hierarchical route is gone: search the
            # surviving fabric instead.
            route = self._search_route(requester, location)
            self._detour_ns[(requester, location)] = self._detour_penalty(
                requester, location, route
            )
            return route

    def _direct_route(self, requester: int, location: int) -> Route:
        topology = self.topology
        hops: List[DirectedLink] = []
        if location == POOL_LOCATION:
            hops.append(DirectedLink(
                topology.link(topology.cxl_link_id(requester)), forward=True
            ))
        elif location != requester:
            hops.extend(self._socket_to_socket_links(requester, location))
        hops.append(DirectedLink(
            topology.link(topology.dram_link_id(location)), forward=True
        ))
        return tuple(hops)

    # -- fault rerouting ---------------------------------------------------

    def _search_route(self, requester: int, location: int) -> Route:
        """Shortest surviving path, then the destination's DRAM hop."""
        from repro.faults.errors import PartitionedTopologyError

        topology = self.topology
        source: _Node = ("s", requester)
        target: _Node = (("p", 0) if location == POOL_LOCATION
                         else ("s", location))
        path = self._shortest_path(source, target)
        if path is None:
            raise PartitionedTopologyError(
                requester, location,
                getattr(topology, "removed_links", frozenset()),
            )
        return tuple(path) + (DirectedLink(
            topology.link(topology.dram_link_id(location)), forward=True
        ),)

    def _shortest_path(self, source: _Node,
                       target: _Node) -> Optional[List[DirectedLink]]:
        if source == target:
            return []
        graph = self._surviving_graph()
        pool_node: _Node = ("p", 0)
        parents: Dict[_Node, Tuple[_Node, DirectedLink]] = {}
        visited = {source}
        frontier = deque([source])
        while frontier:
            node = frontier.popleft()
            if node == pool_node:
                continue  # the pool is a memory device, not a router
            for neighbor, hop in graph.get(node, ()):
                if neighbor in visited:
                    continue
                visited.add(neighbor)
                parents[neighbor] = (node, hop)
                if neighbor == target:
                    hops: List[DirectedLink] = []
                    cursor = target
                    while cursor != source:
                        cursor, edge = parents[cursor]
                        hops.append(edge)
                    hops.reverse()
                    return hops
                frontier.append(neighbor)
        return None

    def _surviving_graph(self) -> Dict[_Node, List[Tuple[_Node, DirectedLink]]]:
        """Adjacency over surviving coherent links (built once, on demand)."""
        if self._graph is not None:
            return self._graph
        topology = self.topology
        graph: Dict[_Node, List[Tuple[_Node, DirectedLink]]] = {}

        def connect(a: _Node, b: _Node, link_id: str) -> None:
            # ``a`` is the canonical source of the link: traversing a -> b
            # is the forward direction.
            link = topology.links.get(link_id)
            if link is None:
                return
            graph.setdefault(a, []).append((b, DirectedLink(link, True)))
            graph.setdefault(b, []).append((a, DirectedLink(link, False)))

        for chassis in range(topology.n_chassis):
            members = topology.sockets_in_chassis(chassis)
            for i, a in enumerate(members):
                connect(("s", a), ("a", chassis),
                        topology.upi_asic_link_id(a))
                for b in members[i + 1:]:
                    connect(("s", a), ("s", b),
                            topology.upi_peer_link_id(a, b))
        for a in range(topology.n_chassis):
            for b in range(a + 1, topology.n_chassis):
                connect(("a", a), ("a", b), topology.numalink_id(a, b))
        if topology.has_pool:
            for socket in range(topology.n_sockets):
                connect(("s", socket), ("p", 0),
                        topology.cxl_link_id(socket))
        self._graph = graph
        return graph

    def _detour_penalty(self, requester: int, location: int,
                        route: Route) -> float:
        """Unloaded-latency surcharge of a detoured route over the nominal.

        Each coherent hop carries a one-way latency share consistent with
        the hierarchy's calibrated penalties: a UPI traversal costs half
        the intra-chassis round-trip penalty, a NUMALink traversal the
        inter-chassis remainder. The surcharge is the actual route's hop
        latency minus the nominal route's, never negative.
        """
        latency = self.topology.config.latency
        upi_ns = latency.intra_chassis_penalty_ns / 2.0
        numa_ns = max(0.0, latency.inter_chassis_penalty_ns / 2.0
                      - latency.intra_chassis_penalty_ns)
        per_hop = {LinkKind.UPI: upi_ns, LinkKind.NUMALINK: numa_ns,
                   LinkKind.CXL: 0.0, LinkKind.DRAM: 0.0}
        actual = sum(per_hop[hop.link.kind] for hop in route)
        kind = self.topology.classify(requester, location)
        nominal = {
            AccessType.LOCAL: 0.0,
            AccessType.INTRA_CHASSIS: upi_ns,
            AccessType.INTER_CHASSIS: 2.0 * upi_ns + numa_ns,
            AccessType.POOL: 0.0,
        }[kind]
        return max(0.0, actual - nominal)

    def _socket_to_socket_links(self, src: int, dst: int) -> List[DirectedLink]:
        """Coherent-link traversals from socket ``src`` to socket ``dst``."""
        topology = self.topology
        if src == dst:
            return []
        if topology.same_chassis(src, dst):
            link = topology.link(topology.upi_peer_link_id(src, dst))
            # Forward orientation of a peer link is low-id -> high-id.
            return [DirectedLink(link, forward=src < dst)]
        chassis_src = topology.chassis_of(src)
        chassis_dst = topology.chassis_of(dst)
        numalink = topology.link(topology.numalink_id(chassis_src, chassis_dst))
        return [
            DirectedLink(topology.link(topology.upi_asic_link_id(src)),
                         forward=True),
            DirectedLink(numalink, forward=chassis_src < chassis_dst),
            DirectedLink(topology.link(topology.upi_asic_link_id(dst)),
                         forward=False),
        ]


def average_block_transfer_latency_ns(topology: Topology) -> float:
    """Average unloaded 3-hop transfer network latency over R/H/O combos.

    Section III-C derives 333 ns for the 16-socket system by averaging the
    cumulative latency of the three traversed legs (requester -> home ->
    owner -> requester) over all possible socket placements with a remote
    owner. Each leg is a *one-way* traversal, i.e. half of the round-trip
    penalty: 25 ns within a chassis and 140 ns across chassis. On the
    default 16-socket layout this evaluates to ~329 ns, matching the
    paper's 333 ns anchor to within about 1%.
    """
    latency = topology.config.latency

    def leg_one_way_ns(a: int, b: int) -> float:
        if a == b:
            return 0.0
        if topology.same_chassis(a, b):
            return latency.intra_chassis_penalty_ns / 2.0
        return latency.inter_chassis_penalty_ns / 2.0

    total = 0.0
    count = 0
    n = topology.n_sockets
    for requester in range(n):
        for home in range(n):
            for owner in range(n):
                if owner == requester:
                    continue
                total += (leg_one_way_ns(requester, home)
                          + leg_one_way_ns(home, owner)
                          + leg_one_way_ns(owner, requester))
                count += 1
    if count == 0:
        return 0.0
    return total / count
