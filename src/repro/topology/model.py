"""Sockets, chassis, links, and access-type classification."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterator, List, Tuple

from repro.config import SystemConfig

if TYPE_CHECKING:
    from repro.topology.linkindex import LinkIndex

#: Sentinel page location denoting the shared memory pool (as opposed to a
#: socket id in ``range(n_sockets)``).
POOL_LOCATION = -1


class AccessType(enum.Enum):
    """Classification of an LLC-missing memory access (Fig. 8c's categories)."""

    LOCAL = "local"
    INTRA_CHASSIS = "1-hop"
    INTER_CHASSIS = "2-hop"
    POOL = "pool"
    BLOCK_TRANSFER_SOCKET = "bt-socket"
    BLOCK_TRANSFER_POOL = "bt-pool"

    @property
    def is_block_transfer(self) -> bool:
        return self in (AccessType.BLOCK_TRANSFER_SOCKET,
                        AccessType.BLOCK_TRANSFER_POOL)


class LinkKind(enum.Enum):
    """Physical link families of the system."""

    UPI = "upi"              # intra-chassis socket<->socket, socket<->ASIC
    NUMALINK = "numalink"    # inter-chassis ASIC<->ASIC bundles
    CXL = "cxl"              # socket<->pool
    DRAM = "dram"            # memory channels (socket-local or pool)


@dataclass(frozen=True)
class Link:
    """One (full-duplex) link or link bundle, identified by a stable string id.

    ``capacity_gbps`` is per direction. DRAM "links" model the aggregate
    channel bandwidth behind one memory controller and are not directional.
    """

    link_id: str
    kind: LinkKind
    capacity_gbps: float

    def __post_init__(self) -> None:
        if self.capacity_gbps <= 0:
            raise ValueError(
                f"link {self.link_id} needs positive capacity, "
                f"got {self.capacity_gbps}"
            )


@dataclass(frozen=True)
class DirectedLink:
    """A traversal of ``link`` in the forward (True) or reverse direction.

    Paths are expressed in requester -> memory order; the data fill flows
    in the opposite direction of each hop.
    """

    link: Link
    forward: bool

    @property
    def direction_key(self) -> Tuple[str, bool]:
        return (self.link.link_id, self.forward)

    def reversed(self) -> "DirectedLink":
        return DirectedLink(self.link, not self.forward)


class Topology:
    """The socket/chassis/pool layout of a :class:`SystemConfig`.

    Provides chassis lookup, access classification, and the link
    inventory. Route construction lives in :class:`~repro.topology.routing.
    RouteTable`, which consumes this object.
    """

    def __init__(self, config: SystemConfig):
        config.validate()
        self.config = config
        self.n_chassis = config.n_chassis
        self.sockets_per_chassis = config.sockets_per_chassis
        self.n_sockets = config.n_sockets
        self.has_pool = config.pool.enabled
        self._links = self._build_links()

    # -- structure ---------------------------------------------------------

    def chassis_of(self, socket: int) -> int:
        """Return the chassis index housing ``socket``."""
        self._check_socket(socket)
        return socket // self.sockets_per_chassis

    def sockets_in_chassis(self, chassis: int) -> List[int]:
        """Return the socket ids housed in ``chassis``."""
        if not 0 <= chassis < self.n_chassis:
            raise ValueError(f"chassis {chassis} out of range")
        base = chassis * self.sockets_per_chassis
        return list(range(base, base + self.sockets_per_chassis))

    def same_chassis(self, a: int, b: int) -> bool:
        return self.chassis_of(a) == self.chassis_of(b)

    def sockets(self) -> Iterator[int]:
        return iter(range(self.n_sockets))

    def locations(self) -> Iterator[int]:
        """All valid page locations: every socket, plus the pool if present."""
        yield from range(self.n_sockets)
        if self.has_pool:
            yield POOL_LOCATION

    def is_valid_location(self, location: int) -> bool:
        if location == POOL_LOCATION:
            return self.has_pool
        return 0 <= location < self.n_sockets

    @property
    def pool_usable(self) -> bool:
        """Whether new pages may be placed on the pool.

        Always matches :attr:`has_pool` on the ideal topology; a faulted
        view (see :mod:`repro.faults`) reports False once the pool device
        has failed, even though pool pages still exist and must drain.
        """
        return self.has_pool

    # -- classification ----------------------------------------------------

    def classify(self, requester: int, location: int) -> AccessType:
        """Classify an access by ``requester`` socket to a page at ``location``."""
        self._check_socket(requester)
        if location == POOL_LOCATION:
            if not self.has_pool:
                raise ValueError("system has no memory pool")
            return AccessType.POOL
        self._check_socket(location)
        if requester == location:
            return AccessType.LOCAL
        if self.same_chassis(requester, location):
            return AccessType.INTRA_CHASSIS
        return AccessType.INTER_CHASSIS

    def unloaded_latency_ns(self, access_type: AccessType) -> float:
        """Unloaded end-to-end latency of one access of ``access_type``."""
        latency = self.config.latency
        return {
            AccessType.LOCAL: latency.local_ns,
            AccessType.INTRA_CHASSIS: latency.intra_chassis_ns,
            AccessType.INTER_CHASSIS: latency.inter_chassis_ns,
            AccessType.POOL: latency.pool_ns,
            AccessType.BLOCK_TRANSFER_SOCKET: latency.block_transfer_socket_ns,
            AccessType.BLOCK_TRANSFER_POOL: latency.block_transfer_pool_ns,
        }[access_type]

    # -- link inventory ----------------------------------------------------

    @property
    def links(self) -> Dict[str, Link]:
        """All links of the system, keyed by link id."""
        return self._links

    def link_index(self) -> "LinkIndex":
        """The dense directed-link index of this topology (memoized).

        Uses ``getattr`` rather than an ``__init__``-assigned field so
        subclasses that bypass ``Topology.__init__`` (the faulted views)
        still get a correctly scoped cache over their own link table.
        """
        index = getattr(self, "_link_index", None)
        if index is None:
            from repro.topology.linkindex import LinkIndex

            index = LinkIndex(self)
            self._link_index = index
        return index

    def link(self, link_id: str) -> Link:
        try:
            return self._links[link_id]
        except KeyError:
            raise KeyError(f"unknown link {link_id!r}") from None

    def upi_peer_link_id(self, a: int, b: int) -> str:
        """Id of the direct UPI link between two same-chassis sockets."""
        if a == b or not self.same_chassis(a, b):
            raise ValueError(f"sockets {a} and {b} share no direct UPI link")
        lo, hi = sorted((a, b))
        return f"upi:s{lo}-s{hi}"

    def upi_asic_link_id(self, socket: int) -> str:
        """Id of the UPI link between ``socket`` and its chassis' FLEX ASIC."""
        self._check_socket(socket)
        return f"upi:s{socket}-flex{self.chassis_of(socket)}"

    def numalink_id(self, chassis_a: int, chassis_b: int) -> str:
        """Id of the NUMALink bundle between two distinct chassis."""
        if chassis_a == chassis_b:
            raise ValueError("NUMALinks connect distinct chassis")
        lo, hi = sorted((chassis_a, chassis_b))
        return f"numa:c{lo}-c{hi}"

    def cxl_link_id(self, socket: int) -> str:
        """Id of the CXL link between ``socket`` and the pool."""
        if not self.has_pool:
            raise ValueError("system has no memory pool")
        self._check_socket(socket)
        return f"cxl:s{socket}"

    def dram_link_id(self, location: int) -> str:
        """Id of the DRAM channel bundle at a socket or the pool."""
        if location == POOL_LOCATION:
            if not self.has_pool:
                raise ValueError("system has no memory pool")
            return "dram:pool"
        self._check_socket(location)
        return f"dram:s{location}"

    # -- construction ------------------------------------------------------

    def _build_links(self) -> Dict[str, Link]:
        bandwidth = self.config.bandwidth
        links: Dict[str, Link] = {}

        def add(link_id: str, kind: LinkKind, capacity: float) -> None:
            links[link_id] = Link(link_id, kind, capacity)

        # Socket-pair UPI links (all-to-all within each chassis) and the
        # socket-to-FLEX-ASIC UPI link of each socket. Coherent-link
        # capacities are goodput (raw x protocol efficiency).
        upi_gbps = bandwidth.upi_effective_gbps
        for chassis in range(self.n_chassis):
            members = self.sockets_in_chassis(chassis)
            for i, a in enumerate(members):
                add(f"upi:s{a}-flex{chassis}", LinkKind.UPI, upi_gbps)
                for b in members[i + 1:]:
                    add(f"upi:s{a}-s{b}", LinkKind.UPI, upi_gbps)

        # NUMALink bundles between chassis pairs. The per-chassis NUMALink
        # budget is spread over its peers, so each chassis pair gets
        # numalinks_per_chassis / (n_chassis - 1) physical links.
        if self.n_chassis > 1:
            per_pair = max(1, bandwidth.numalinks_per_chassis
                           // (self.n_chassis - 1))
            pair_capacity = bandwidth.numalink_effective_gbps * per_pair
            for a in range(self.n_chassis):
                for b in range(a + 1, self.n_chassis):
                    add(f"numa:c{a}-c{b}", LinkKind.NUMALINK, pair_capacity)

        # Per-socket DRAM channel bundles.
        for socket in range(self.n_sockets):
            add(f"dram:s{socket}", LinkKind.DRAM, bandwidth.local_memory_gbps)

        # The pool: one CXL link per socket plus the pool's DRAM channels.
        if self.has_pool:
            for socket in range(self.n_sockets):
                add(f"cxl:s{socket}", LinkKind.CXL,
                    bandwidth.cxl_per_socket_gbps)
            add("dram:pool", LinkKind.DRAM, bandwidth.pool_memory_gbps)

        return links

    def _check_socket(self, socket: int) -> None:
        if not 0 <= socket < self.n_sockets:
            raise ValueError(
                f"socket {socket} out of range [0, {self.n_sockets})"
            )
