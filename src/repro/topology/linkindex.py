"""Dense integer ids for directed links, and compiled route arrays.

The timing kernel (see :mod:`repro.sim.timing`) evaluates M/D/1 waiting
times for every charged link direction on every fixed-point iteration.
Keyed dict arithmetic made that the dominant cost of a full experiment
sweep, so each directed traversal of each link gets a dense integer
*slot* here, and routes are precompiled into flat index arrays:

* a non-DRAM link owns two slots (forward and reverse traversal);
* a DRAM channel bundle owns one slot -- both directions share the one
  memory-controller queue, mirroring the aliasing that
  :class:`~repro.interconnect.loads.LinkLoads` has always applied.

Per-slot capacity and service-time vectors let whole-vector queueing
expressions replace per-hop scalar calls, and
:class:`CompiledRoute` carries the scatter/gather indices of one route:
request-direction slots, fill-direction slots, and the (slot, weight)
pairs of the route's round-trip queueing delay with DRAM counted once.
Stacking the delay rows of many routes yields the route-by-link
incidence matrix the vector kernel multiplies against the per-slot
waiting-time vector.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.config.parameters import CACHE_BLOCK_BYTES
from repro.topology.model import DirectedLink, LinkKind, Topology


@dataclass(frozen=True)
class CompiledRoute:
    """Flat index-array form of one route (requester -> memory order).

    ``forward_slots``/``reverse_slots`` hold one slot per hop (request
    and fill directions; DRAM hops alias the same slot in both). The
    ``delay_slots``/``delay_weights`` pair encodes the route's
    round-trip queueing delay as a sparse incidence row: non-DRAM hops
    contribute their forward and reverse slots, DRAM hops their single
    shared slot, duplicate slots merged with summed weights.
    """

    forward_slots: np.ndarray
    reverse_slots: np.ndarray
    delay_slots: np.ndarray
    delay_weights: np.ndarray

    @property
    def n_hops(self) -> int:
        return int(self.forward_slots.size)


class LinkIndex:
    """Slot assignment and per-slot constant vectors of one topology."""

    def __init__(self, topology: Topology):
        self.topology = topology
        slot_of: Dict[Tuple[str, bool], int] = {}
        slot_hops: List[DirectedLink] = []
        capacities: List[float] = []
        # Insertion order of ``topology.links`` is the construction order
        # of the link inventory, which is deterministic per topology.
        for link in topology.links.values():
            if link.kind is LinkKind.DRAM:
                slot_of[(link.link_id, True)] = len(slot_hops)
                slot_of[(link.link_id, False)] = len(slot_hops)
                slot_hops.append(DirectedLink(link, True))
                capacities.append(link.capacity_gbps)
            else:
                for forward in (True, False):
                    slot_of[(link.link_id, forward)] = len(slot_hops)
                    slot_hops.append(DirectedLink(link, forward))
                    capacities.append(link.capacity_gbps)
        self._slot_of = slot_of
        self._slot_hops = slot_hops
        #: Per-slot link capacity, GB/s per direction.
        self.capacity_gbps = np.array(capacities, dtype=np.float64)
        #: Per-slot deterministic service time of one cache-block
        #: message (block + header), nanoseconds. 1 GB/s moves one byte
        #: per nanosecond, so this is simply bytes / GBps.
        from repro.interconnect.loads import MESSAGE_HEADER_BYTES

        self.service_ns = ((CACHE_BLOCK_BYTES + MESSAGE_HEADER_BYTES)
                           / self.capacity_gbps)

    @property
    def n_slots(self) -> int:
        return len(self._slot_hops)

    def slot(self, hop: DirectedLink) -> int:
        """Dense id of one directed traversal (DRAM directions alias)."""
        try:
            return self._slot_of[(hop.link.link_id, hop.forward)]
        except KeyError:
            raise KeyError(f"unknown link {hop.link.link_id!r}") from None

    def hop_at(self, slot: int) -> DirectedLink:
        """The canonical :class:`DirectedLink` of one slot."""
        return self._slot_hops[slot]

    # -- route compilation -------------------------------------------------

    def compile_route(self,
                      route: Sequence[DirectedLink]) -> CompiledRoute:
        """Precompute the slot arrays of one route."""
        forward = np.array([self.slot(hop) for hop in route],
                           dtype=np.intp)
        reverse = np.array([self.slot(hop.reversed()) for hop in route],
                           dtype=np.intp)
        weights: Dict[int, float] = {}
        for hop in route:
            weights[self.slot(hop)] = weights.get(self.slot(hop), 0.0) + 1.0
            if hop.link.kind is not LinkKind.DRAM:
                slot = self.slot(hop.reversed())
                weights[slot] = weights.get(slot, 0.0) + 1.0
        delay_slots = np.array(sorted(weights), dtype=np.intp)
        delay_weights = np.array([weights[slot] for slot in sorted(weights)],
                                 dtype=np.float64)
        return CompiledRoute(
            forward_slots=forward,
            reverse_slots=reverse,
            delay_slots=delay_slots,
            delay_weights=delay_weights,
        )

    def incidence_row(self, route: Sequence[DirectedLink],
                      weight: float = 1.0) -> np.ndarray:
        """Dense incidence row of one route's round-trip delay.

        ``row @ wait_ns_vector`` equals the scalar kernel's
        request+fill queueing sum along the route (DRAM counted once),
        scaled by ``weight``.
        """
        row = np.zeros(self.n_slots, dtype=np.float64)
        compiled = self.compile_route(route)
        row[compiled.delay_slots] = compiled.delay_weights * weight
        return row
