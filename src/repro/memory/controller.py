"""Aggregate memory-controller model used by the phase-level timing step.

One :class:`MemoryControllerModel` stands for all the channels behind a
socket (or the pool's MHD). It exposes the analytic service/queueing
estimate the timing model consumes and can also drive a set of functional
:class:`DramChannel` instances for detailed replay (examples and tests).
"""

from __future__ import annotations

from typing import List, Optional

from repro.config.parameters import CACHE_BLOCK_BYTES
from repro.interconnect.queueing import mdl_wait_ns, service_time_ns
from repro.memory.dram import DramChannel, DramTiming, RequestKind


class MemoryControllerModel:
    """Channels behind one memory controller, with interleaved placement."""

    def __init__(self, n_channels: int, channel_gbps: float,
                 timing: Optional[DramTiming] = None):
        if n_channels < 1:
            raise ValueError(f"need at least one channel, got {n_channels}")
        if channel_gbps <= 0:
            raise ValueError(f"channel bandwidth must be positive, got {channel_gbps}")
        self.n_channels = n_channels
        self.channel_gbps = channel_gbps
        self.channels: List[DramChannel] = [
            DramChannel(timing) for _ in range(n_channels)
        ]

    @property
    def aggregate_gbps(self) -> float:
        return self.n_channels * self.channel_gbps

    def channel_for(self, address: int) -> int:
        """Cache-block interleaving of addresses across channels."""
        return (address // CACHE_BLOCK_BYTES) % self.n_channels

    def access(self, address: int, kind: RequestKind,
               arrival_ns: float) -> float:
        """Functional replay: service a request on its interleaved channel."""
        channel = self.channels[self.channel_for(address)]
        return channel.access(address, kind, arrival_ns)

    def reset(self) -> None:
        for channel in self.channels:
            channel.reset()

    # -- analytic interface --------------------------------------------------

    def queueing_delay_ns(self, offered_gbps: float) -> float:
        """Expected controller queueing delay at the given offered load.

        Models the controller as ``n_channels`` parallel M/D/1 servers fed
        by an interleaved (balanced) arrival stream.
        """
        if offered_gbps < 0:
            raise ValueError(f"offered load must be >= 0, got {offered_gbps}")
        per_channel = offered_gbps / self.n_channels
        utilization = per_channel / self.channel_gbps
        service = service_time_ns(CACHE_BLOCK_BYTES, self.channel_gbps)
        return mdl_wait_ns(utilization, service)

    def loaded_latency_ns(self, unloaded_ns: float,
                          offered_gbps: float) -> float:
        """Unloaded DRAM latency plus load-dependent queueing."""
        return unloaded_ns + self.queueing_delay_ns(offered_gbps)
