"""Functional DDR5 channel model with row-buffer state.

The model services one request at a time per bank group (FR-FCFS style is
approximated by servicing row hits ahead of conflicts within the pending
queue). Timing parameters default to DDR5-4800 class values.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.config.parameters import CACHE_BLOCK_BYTES


class RequestKind(enum.Enum):
    READ = "read"
    WRITE = "write"


@dataclass(frozen=True)
class DramTiming:
    """DDR5-4800 class timing parameters, nanoseconds."""

    t_cas_ns: float = 16.0      # column access (CL)
    t_rcd_ns: float = 16.0      # row activate to column
    t_rp_ns: float = 16.0       # precharge
    burst_ns: float = 1.67      # 64B burst at 38.4 GB/s
    n_banks: int = 32
    row_bytes: int = 8192

    @property
    def row_hit_ns(self) -> float:
        """Service latency of a row-buffer hit."""
        return self.t_cas_ns + self.burst_ns

    @property
    def row_miss_ns(self) -> float:
        """Service latency of an access to a closed row."""
        return self.t_rcd_ns + self.t_cas_ns + self.burst_ns

    @property
    def row_conflict_ns(self) -> float:
        """Service latency when another row occupies the buffer."""
        return self.t_rp_ns + self.t_rcd_ns + self.t_cas_ns + self.burst_ns


@dataclass
class _BankState:
    open_row: Optional[int] = None
    ready_at_ns: float = 0.0


@dataclass
class DramChannelStats:
    """Counters accumulated by :class:`DramChannel`."""

    reads: int = 0
    writes: int = 0
    row_hits: int = 0
    row_misses: int = 0
    row_conflicts: int = 0
    total_service_ns: float = 0.0
    total_queue_ns: float = 0.0

    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    @property
    def row_hit_rate(self) -> float:
        if not self.accesses:
            return 0.0
        return self.row_hits / self.accesses

    @property
    def average_latency_ns(self) -> float:
        if not self.accesses:
            return 0.0
        return (self.total_service_ns + self.total_queue_ns) / self.accesses


class DramChannel:
    """One DDR channel with per-bank row-buffer state.

    Requests are submitted with an arrival timestamp and return their
    completion time; the channel keeps per-bank availability so queueing
    at a busy bank is captured naturally. Addresses are physical byte
    addresses within the channel's slice of the address space.
    """

    def __init__(self, timing: Optional[DramTiming] = None):
        self.timing = timing or DramTiming()
        self.stats = DramChannelStats()
        self._banks: Dict[int, _BankState] = {
            bank: _BankState() for bank in range(self.timing.n_banks)
        }

    def reset(self) -> None:
        self.stats = DramChannelStats()
        for bank in self._banks.values():
            bank.open_row = None
            bank.ready_at_ns = 0.0

    def map_address(self, address: int) -> Tuple[int, int]:
        """Map a byte address to (bank, row).

        Consecutive cache blocks interleave across banks so that streaming
        accesses exploit bank-level parallelism, as real controllers do.
        """
        block = address // CACHE_BLOCK_BYTES
        bank = block % self.timing.n_banks
        row = address // (self.timing.row_bytes * self.timing.n_banks)
        return bank, row

    def access(self, address: int, kind: RequestKind,
               arrival_ns: float) -> float:
        """Service one request; return its completion time (ns).

        The request waits for its bank to become ready, then pays a row
        hit / miss / conflict service latency depending on the bank's
        row-buffer state.
        """
        if arrival_ns < 0:
            raise ValueError(f"arrival time must be >= 0, got {arrival_ns}")
        bank_id, row = self.map_address(address)
        bank = self._banks[bank_id]

        start_ns = max(arrival_ns, bank.ready_at_ns)
        queue_ns = start_ns - arrival_ns
        if bank.open_row is None:
            service_ns = self.timing.row_miss_ns
            self.stats.row_misses += 1
        elif bank.open_row == row:
            service_ns = self.timing.row_hit_ns
            self.stats.row_hits += 1
        else:
            service_ns = self.timing.row_conflict_ns
            self.stats.row_conflicts += 1

        bank.open_row = row
        bank.ready_at_ns = start_ns + service_ns
        if kind is RequestKind.READ:
            self.stats.reads += 1
        else:
            self.stats.writes += 1
        self.stats.total_service_ns += service_ns
        self.stats.total_queue_ns += queue_ns
        return start_ns + service_ns

    def effective_bandwidth_gbps(self, row_hit_rate: float) -> float:
        """Sustainable bandwidth for a mix with the given row hit rate.

        With ``n_banks`` independent banks the channel is burst-limited
        once enough parallelism exists, so the bound is the burst rate;
        with poor locality it degrades toward the conflict-service rate
        across banks.
        """
        if not 0.0 <= row_hit_rate <= 1.0:
            raise ValueError(f"row hit rate must be in [0, 1], got {row_hit_rate}")
        mean_service = (row_hit_rate * self.timing.row_hit_ns
                        + (1 - row_hit_rate) * self.timing.row_conflict_ns)
        burst_limited = CACHE_BLOCK_BYTES / self.timing.burst_ns
        bank_limited = (CACHE_BLOCK_BYTES / mean_service) * self.timing.n_banks
        return min(burst_limited, bank_limited)
