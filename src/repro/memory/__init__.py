"""DRAM and memory-controller substrate.

Two levels of detail are provided, mirroring the paper's mixed-modality
methodology (Section IV-B):

* :class:`DramTiming` / :class:`DramChannel` -- a functional DDR5 channel
  model with row-buffer state and FR-FCFS-style service estimation. Used
  by unit tests, the cache-replay example, and to derive the effective
  channel bandwidth assumed by the analytic model.
* :class:`MemoryControllerModel` -- the "light" model: aggregate channel
  bandwidth with M/D/1 queueing, which is what the phase-level timing
  model charges for DRAM service at each socket and at the pool.
"""

from repro.memory.dram import DramChannel, DramTiming, RequestKind
from repro.memory.controller import MemoryControllerModel

__all__ = [
    "DramChannel",
    "DramTiming",
    "MemoryControllerModel",
    "RequestKind",
]
