"""Fault injection: degraded links, failed devices, and pool outages.

The reproduction's ideal-device model answers "how fast is StarNUMA when
everything works"; this package answers "what happens when it doesn't".
A :class:`FaultSchedule` lists :class:`FaultEvent`\\ s applied at phase
boundaries; folding the events up to a phase yields a
:class:`FaultState`, and :func:`faulted_topology` projects that state
onto a :class:`~repro.topology.Topology` (links removed or derated, pool
latency inflated). Route recomputation around the surviving links lives
in :class:`~repro.topology.routing.RouteTable`; the graceful-degradation
policy response lives in :mod:`repro.sim.engine`.
"""

from repro.faults.schedule import (
    FaultEvent,
    FaultKind,
    FaultSchedule,
    FaultState,
)
from repro.faults.apply import FaultedTopology, faulted_topology
from repro.faults.errors import FaultModelError, PartitionedTopologyError

__all__ = [
    "FaultEvent",
    "FaultKind",
    "FaultModelError",
    "FaultSchedule",
    "FaultState",
    "FaultedTopology",
    "PartitionedTopologyError",
    "faulted_topology",
]
