"""Fault events, schedules, and the folded per-phase fault state.

A :class:`FaultEvent` fires at one phase boundary and stays in effect for
the rest of the run (faults here model hardware going bad, not blips; a
repaired device would be a second schedule). Folding all events with
``phase <= p`` yields the :class:`FaultState` governing phase ``p``,
which is hashable so downstream consumers (route tables, timing models)
can cache per distinct state rather than per phase.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass
from typing import (TYPE_CHECKING, Dict, FrozenSet, Iterator, List, Optional,
                    Sequence, Tuple)

from repro.faults.errors import FaultModelError

if TYPE_CHECKING:
    from repro.topology import Topology


class FaultKind(enum.Enum):
    """The injectable fault families."""

    #: One link's per-direction capacity multiplied by ``capacity_factor``.
    LINK_DEGRADE = "link-degrade"
    #: One coherent link removed from the fabric entirely.
    LINK_FAIL = "link-fail"
    #: A chassis' FLEX ASIC dies, taking every socket<->ASIC UPI link of
    #: that chassis -- and with them all of its inter-chassis ports.
    ASIC_FAIL = "asic-fail"
    #: The CXL path slows down: pool access latency multiplied by
    #: ``latency_factor``, CXL/pool-DRAM capacity by ``capacity_factor``.
    POOL_DEGRADE = "pool-degrade"
    #: The pool device goes offline: no new pool placements, resident
    #: pages must be evacuated, in-flight accesses pay a failover penalty.
    POOL_FAIL = "pool-fail"


@dataclass(frozen=True)
class FaultEvent:
    """One fault injected at the boundary into phase ``phase``."""

    kind: FaultKind
    phase: int = 0
    #: Target link id for LINK_DEGRADE / LINK_FAIL.
    link_id: Optional[str] = None
    #: Target chassis for ASIC_FAIL.
    chassis: Optional[int] = None
    #: Capacity multiplier for LINK_DEGRADE / POOL_DEGRADE, in (0, 1].
    capacity_factor: float = 1.0
    #: Unloaded-latency multiplier for POOL_DEGRADE, >= 1.
    latency_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.phase < 0:
            raise FaultModelError(f"fault phase must be >= 0, got {self.phase}")
        if self.kind in (FaultKind.LINK_DEGRADE, FaultKind.LINK_FAIL):
            if not self.link_id:
                raise FaultModelError(f"{self.kind.value} needs a link_id")
            if self.link_id.startswith("dram:") and self.kind is FaultKind.LINK_FAIL:
                raise FaultModelError(
                    "DRAM channel failure would lose memory contents; "
                    "model it as LINK_DEGRADE instead"
                )
        if self.kind is FaultKind.ASIC_FAIL and self.chassis is None:
            raise FaultModelError("asic-fail needs a chassis index")
        if self.kind in (FaultKind.LINK_DEGRADE, FaultKind.POOL_DEGRADE):
            if not 0.0 < self.capacity_factor <= 1.0:
                raise FaultModelError(
                    f"capacity_factor must be in (0, 1], got "
                    f"{self.capacity_factor}"
                )
        if self.latency_factor < 1.0:
            raise FaultModelError(
                f"latency_factor must be >= 1, got {self.latency_factor}"
            )

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {"kind": self.kind.value, "phase": self.phase}
        if self.link_id is not None:
            out["link_id"] = self.link_id
        if self.chassis is not None:
            out["chassis"] = self.chassis
        if self.capacity_factor != 1.0:
            out["capacity_factor"] = self.capacity_factor
        if self.latency_factor != 1.0:
            out["latency_factor"] = self.latency_factor
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultEvent":
        try:
            kind = FaultKind(data["kind"])
        except (KeyError, ValueError) as exc:
            raise FaultModelError(f"bad fault event {data!r}: {exc}") from None
        return cls(
            kind=kind,
            phase=int(data.get("phase", 0)),
            link_id=data.get("link_id"),  # type: ignore[arg-type]
            chassis=(int(data["chassis"]) if "chassis" in data else None),
            capacity_factor=float(data.get("capacity_factor", 1.0)),
            latency_factor=float(data.get("latency_factor", 1.0)),
        )


@dataclass(frozen=True)
class FaultState:
    """Cumulative effect of every fault in force during one phase.

    Hashable: two phases governed by the same set of events share one
    state object's hash, letting simulators cache one faulted topology /
    route table / timing model per distinct state.
    """

    failed_links: FrozenSet[str] = frozenset()
    failed_asics: FrozenSet[int] = frozenset()
    #: Combined (multiplicative) capacity factors, sorted by link id.
    capacity_factors: Tuple[Tuple[str, float], ...] = ()
    pool_latency_factor: float = 1.0
    pool_failed: bool = False

    @property
    def is_clean(self) -> bool:
        """True when this state changes nothing about the ideal system."""
        return (not self.failed_links and not self.failed_asics
                and not self.capacity_factors
                and self.pool_latency_factor == 1.0
                and not self.pool_failed)

    def capacity_factor(self, link_id: str) -> float:
        for candidate, factor in self.capacity_factors:
            if candidate == link_id:
                return factor
        return 1.0


class FaultSchedule:
    """An ordered set of fault events over a run's phases."""

    def __init__(self, events: Sequence[FaultEvent] = ()):
        self.events: List[FaultEvent] = sorted(
            events, key=lambda event: (event.phase, event.kind.value,
                                       event.link_id or "",
                                       -1 if event.chassis is None
                                       else event.chassis)
        )
        self._state_cache: Dict[int, FaultState] = {}

    @property
    def is_empty(self) -> bool:
        return not self.events

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> "Iterator[FaultEvent]":
        return iter(self.events)

    def events_at(self, phase: int) -> List[FaultEvent]:
        """Events firing exactly at the boundary into ``phase``."""
        return [event for event in self.events if event.phase == phase]

    def first_fault_phase(self) -> Optional[int]:
        return self.events[0].phase if self.events else None

    def pool_failure_phase(self) -> Optional[int]:
        """Earliest phase at which the pool device fails, if ever."""
        phases = [event.phase for event in self.events
                  if event.kind is FaultKind.POOL_FAIL]
        return min(phases) if phases else None

    def at_phase_zero(self) -> "FaultSchedule":
        """The worst-case variant: every event moved to phase 0.

        A fault can only hurt for the phases it is in force, so folding
        the whole schedule onto phase 0 maximizes exposure -- the
        degradation floor any staggered variant of the same events
        should stay above.
        """
        import dataclasses

        return FaultSchedule([dataclasses.replace(event, phase=0)
                              for event in self.events])

    def state_at(self, phase: int) -> FaultState:
        """Fold every event with ``event.phase <= phase`` into one state."""
        if phase < 0:
            raise FaultModelError(f"phase must be >= 0, got {phase}")
        if phase in self._state_cache:
            return self._state_cache[phase]

        failed_links = set()
        failed_asics = set()
        factors: Dict[str, float] = {}
        pool_latency = 1.0
        pool_failed = False
        for event in self.events:
            if event.phase > phase:
                break
            if event.kind is FaultKind.LINK_FAIL:
                failed_links.add(event.link_id)
            elif event.kind is FaultKind.LINK_DEGRADE:
                factors[event.link_id] = (factors.get(event.link_id, 1.0)
                                          * event.capacity_factor)
            elif event.kind is FaultKind.ASIC_FAIL:
                failed_asics.add(event.chassis)
            elif event.kind is FaultKind.POOL_DEGRADE:
                pool_latency *= event.latency_factor
                if event.capacity_factor != 1.0:
                    for target in ("cxl:*", "dram:pool"):
                        factors[target] = (factors.get(target, 1.0)
                                           * event.capacity_factor)
            elif event.kind is FaultKind.POOL_FAIL:
                pool_failed = True
        state = FaultState(
            failed_links=frozenset(failed_links),
            failed_asics=frozenset(failed_asics),
            capacity_factors=tuple(sorted(factors.items())),
            pool_latency_factor=pool_latency,
            pool_failed=pool_failed,
        )
        self._state_cache[phase] = state
        return state

    def validate(self, topology: "Topology") -> None:
        """Check every event targets something that exists in ``topology``."""
        for event in self.events:
            if event.link_id is not None and event.link_id not in topology.links:
                raise FaultModelError(
                    f"fault targets unknown link {event.link_id!r}"
                )
            if event.chassis is not None and not (
                    0 <= event.chassis < topology.n_chassis):
                raise FaultModelError(
                    f"fault targets unknown chassis {event.chassis}"
                )
            if event.kind in (FaultKind.POOL_DEGRADE, FaultKind.POOL_FAIL) \
                    and not topology.has_pool:
                raise FaultModelError(
                    f"{event.kind.value} on a system without a pool"
                )

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {"events": [event.to_dict() for event in self.events]}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultSchedule":
        events = data.get("events", [])
        if not isinstance(events, list):
            raise FaultModelError("fault schedule 'events' must be a list")
        return cls([FaultEvent.from_dict(event) for event in events])

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultSchedule":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultModelError(f"bad fault schedule JSON: {exc}") from None
        return cls.from_dict(data)
