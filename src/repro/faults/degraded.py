"""Graceful degradation of the StarNUMA policy after a pool failure.

When the pool device fails, Algorithm 1 loses its destination for
widely shared regions. The degraded-mode response (Pond-style fail-safe
drain) is:

1. stop every pool-bound migration immediately;
2. evacuate pool-resident regions back to their best-home socket -- the
   socket that accessed the region most this phase, falling back to the
   region's lowest-id sharer when it went untouched -- spending the
   normal per-phase migration budget until the pool is drained;
3. once drained, fall back to the baseline perfect-knowledge policy, so
   the system degrades *toward* the baseline rather than below it.

The :class:`PoolEvacuator` implements steps 1-2; the simulator engine
(:mod:`repro.sim.engine`) sequences it with the fallback policy.
"""

from __future__ import annotations

import numpy as np

from repro.migration.records import MigrationBatch, RegionMove
from repro.migration.regions import RegionTable
from repro.placement.capacity import PoolCapacityManager
from repro.placement.pagemap import PageMap
from repro.topology.model import POOL_LOCATION


class PoolEvacuator:
    """Budget-bounded drain of pool-resident regions to best-home sockets."""

    def __init__(self, regions: RegionTable, capacity: PoolCapacityManager,
                 sharer_mask: np.ndarray, n_sockets: int):
        self.regions = regions
        self.capacity = capacity
        self.sharer_mask = np.asarray(sharer_mask, dtype=np.uint32)
        self.n_sockets = n_sockets

    def drained(self, locations: np.ndarray) -> bool:
        """Whether no region remains on the (failed) pool."""
        return not bool(np.any(locations == POOL_LOCATION))

    def best_home(self, region: int, region_counts: np.ndarray) -> int:
        """The evacuation destination of ``region``.

        The socket with the most accesses this phase; for an untouched
        region, its lowest-id sharer (every page has at least one).
        """
        counts = region_counts[:, region]
        if counts.sum() > 0:
            return int(np.argmax(counts))
        first_page = int(self.regions.pages_of(region)[0])
        mask = int(self.sharer_mask[first_page])
        for socket in range(self.n_sockets):
            if mask >> socket & 1:
                return socket
        return 0

    def evacuate_phase(self, region_counts: np.ndarray,
                       locations: np.ndarray, page_map: PageMap,
                       budget_pages: int,
                       batch: MigrationBatch) -> int:
        """Move pool regions out until the budget is spent; return pages.

        Hotter regions evacuate first: they are the ones paying the
        failed-device latency penalty on every access while they wait.
        """
        resident = np.flatnonzero(locations == POOL_LOCATION)
        if resident.size == 0:
            return 0
        heat = region_counts[:, resident].sum(axis=0)
        order = resident[np.argsort(heat, kind="stable")[::-1]]
        moved = 0
        for region in order:
            pages = self.regions.pages_of(int(region))
            size = int(pages.size)
            if moved + size > budget_pages:
                continue
            destination = self.best_home(int(region), region_counts)
            self.capacity.release(size)
            page_map.move(pages, destination)
            locations[region] = destination
            batch.add(RegionMove(pages=pages, source=POOL_LOCATION,
                                 destination=destination))
            moved += size
            if moved >= budget_pages:
                break
        return moved
