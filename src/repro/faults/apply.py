"""Project a :class:`FaultState` onto a topology.

:func:`faulted_topology` is the single entry point: given the ideal
:class:`~repro.topology.Topology` and a folded fault state it returns a
view with failed links removed, degraded links derated, and pool latency
inflated. A clean state returns the base object itself, so the fault
layer is exactly zero-cost (and bit-identical) when no faults are
scheduled.
"""

from __future__ import annotations

from typing import Dict, FrozenSet

from repro.faults.schedule import FaultState
from repro.obs import OBS
from repro.topology.model import AccessType, Link, LinkKind, Topology

#: Latency multiplier on accesses that still hit a *failed* pool device
#: while its pages drain: the CXL path is in fail-over (retries, degraded
#: lane width), so the drain phases pay heavily for every leftover access.
POOL_FAILURE_LATENCY_FACTOR = 4.0


class FaultedTopology(Topology):
    """A topology with a fault state applied to its link inventory.

    Shares the base topology's config and structure; only the link table
    and the pool-latency figures differ. Never constructed for a clean
    state -- use :func:`faulted_topology`.
    """

    def __init__(self, base: Topology, state: FaultState):
        # Deliberately not calling Topology.__init__: the base already
        # validated the config, and links are derived from its inventory
        # rather than rebuilt from scratch.
        self.config = base.config
        self.n_chassis = base.n_chassis
        self.sockets_per_chassis = base.sockets_per_chassis
        self.n_sockets = base.n_sockets
        self.has_pool = base.has_pool
        self.state = state
        self.removed_links = self._removed_link_ids(base, state)
        self._links = self._transform_links(base, state)

    # -- fault-aware views -------------------------------------------------

    @property
    def pool_usable(self) -> bool:
        """Whether new pages may still be placed on the pool."""
        return self.has_pool and not self.state.pool_failed

    def unloaded_latency_ns(self, access_type: AccessType) -> float:
        base_ns = super().unloaded_latency_ns(access_type)
        if access_type in (AccessType.POOL, AccessType.BLOCK_TRANSFER_POOL):
            factor = self.state.pool_latency_factor
            if self.state.pool_failed:
                factor *= POOL_FAILURE_LATENCY_FACTOR
            return base_ns * factor
        return base_ns

    # -- construction ------------------------------------------------------

    @staticmethod
    def _removed_link_ids(base: Topology, state: FaultState) -> FrozenSet[str]:
        removed = set(state.failed_links)
        for chassis in state.failed_asics:
            for socket in base.sockets_in_chassis(chassis):
                removed.add(base.upi_asic_link_id(socket))
            for other in range(base.n_chassis):
                if other != chassis:
                    removed.add(base.numalink_id(chassis, other))
        return frozenset(link for link in removed if link in base.links)

    def _transform_links(self, base: Topology,
                         state: FaultState) -> Dict[str, Link]:
        links: Dict[str, Link] = {}
        for link_id, link in base.links.items():
            if link_id in self.removed_links:
                continue
            factor = state.capacity_factor(link_id)
            if link.kind is LinkKind.CXL:
                factor *= state.capacity_factor("cxl:*")
            if factor != 1.0:
                link = Link(link_id, link.kind, link.capacity_gbps * factor)
            links[link_id] = link
        return links


def faulted_topology(base: Topology, state: FaultState) -> Topology:
    """The topology as seen under ``state`` (the base itself when clean)."""
    if state.is_clean:
        return base
    view = FaultedTopology(base, state)
    if OBS.enabled:
        derated = sum(
            1 for link_id, link in view.links.items()
            if link.capacity_gbps != base.links[link_id].capacity_gbps
        )
        OBS.counter("faults.topologies_applied")
        OBS.event(
            "faults.applied",
            n_removed_links=len(view.removed_links),
            n_failed_links=len(state.failed_links),
            n_failed_asics=len(state.failed_asics),
            n_derated_links=derated,
            pool_failed=state.pool_failed,
            pool_latency_factor=state.pool_latency_factor,
        )
    return view
