"""Structured errors raised by the fault model."""

from __future__ import annotations

from typing import FrozenSet, Optional


class FaultModelError(ValueError):
    """An invalid fault event or schedule (bad target, bad factor...)."""


class PartitionedTopologyError(RuntimeError):
    """A socket can no longer reach a memory location it needs.

    Raised during route recomputation when the surviving links leave
    ``requester`` with no path to ``location`` (a socket id, or
    :data:`~repro.topology.model.POOL_LOCATION` for the pool). Carries
    the failed link set so harnesses can report *which* faults cut the
    fabric rather than a bare traceback.
    """

    def __init__(self, requester: int, location: int,
                 failed_links: Optional[FrozenSet[str]] = None):
        self.requester = requester
        self.location = location
        self.failed_links = frozenset(failed_links or ())
        target = "the memory pool" if location < 0 else f"socket {location}"
        detail = ""
        if self.failed_links:
            detail = " (failed links: " + ", ".join(
                sorted(self.failed_links)) + ")"
        super().__init__(
            f"socket {requester} cannot reach {target}: the fault "
            f"schedule partitions the topology{detail}"
        )
