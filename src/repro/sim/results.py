"""Result containers for phase timings and whole runs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.metrics.breakdown import AccessBreakdown
from repro.topology.model import AccessType


@dataclass
class PhaseTiming:
    """Timing outcome of one simulated phase (one checkpoint of Step C)."""

    phase: int
    ipc: float
    duration_ns: float
    amat_ns: float
    unloaded_amat_ns: float
    breakdown: AccessBreakdown
    total_accesses: float
    migrated_pages: int = 0
    migrated_pages_to_pool: int = 0
    migration_stall_ns_per_access: float = 0.0
    fixed_point_iterations: int = 0
    converged: bool = True
    #: Peak link utilization observed, for diagnostics (link id -> util).
    hottest_links: Dict[str, float] = field(default_factory=dict)

    @property
    def contention_ns(self) -> float:
        """Queueing component of AMAT (Fig. 8b's 'Contention Delay')."""
        return self.amat_ns - self.unloaded_amat_ns


@dataclass
class SimulationResult:
    """Aggregate of a whole run (all checkpoints of one workload+config)."""

    workload: str
    config_name: str
    phases: List[PhaseTiming]
    #: Demand-migrated pages over the run, and those that went to the pool
    #: (Table IV's numerator/denominator).
    pages_migrated: int = 0
    pages_migrated_to_pool: int = 0
    calibration_note: str = ""

    def __post_init__(self) -> None:
        if not self.phases:
            raise ValueError("a result needs at least one phase")

    @property
    def ipc(self) -> float:
        """Aggregate IPC: total instructions over total time.

        Phases execute equal instruction counts, so this is the harmonic
        mean of per-phase IPC.
        """
        inverse = sum(1.0 / phase.ipc for phase in self.phases)
        return len(self.phases) / inverse

    @property
    def amat_ns(self) -> float:
        """Access-weighted AMAT over all phases."""
        weighted = sum(phase.amat_ns * phase.total_accesses
                       for phase in self.phases)
        accesses = sum(phase.total_accesses for phase in self.phases)
        return weighted / accesses

    @property
    def unloaded_amat_ns(self) -> float:
        weighted = sum(phase.unloaded_amat_ns * phase.total_accesses
                       for phase in self.phases)
        accesses = sum(phase.total_accesses for phase in self.phases)
        return weighted / accesses

    @property
    def contention_ns(self) -> float:
        return self.amat_ns - self.unloaded_amat_ns

    def breakdown(self) -> AccessBreakdown:
        merged = AccessBreakdown()
        for phase in self.phases:
            merged.merge(phase.breakdown)
        return merged

    def access_fractions(self) -> Dict[AccessType, float]:
        return self.breakdown().fractions()

    @property
    def pool_migration_fraction(self) -> float:
        """Table IV: share of demand migrations that targeted the pool."""
        if self.pages_migrated == 0:
            return 0.0
        return self.pages_migrated_to_pool / self.pages_migrated

    def speedup_over(self, baseline: "SimulationResult") -> float:
        """IPC ratio against a baseline run of the same workload."""
        if baseline.workload != self.workload:
            raise ValueError(
                f"speedup compares like workloads, got {self.workload} vs "
                f"{baseline.workload}"
            )
        return self.ipc / baseline.ipc

    def amat_reduction_over(self, baseline: "SimulationResult") -> float:
        """Fractional AMAT reduction against a baseline run."""
        if baseline.amat_ns <= 0:
            raise ValueError("baseline AMAT must be positive")
        return 1.0 - self.amat_ns / baseline.amat_ns
