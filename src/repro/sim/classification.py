"""Vectorized access classification for one phase.

Given a phase's (socket, page) access counts and the current page map,
split every access into demand traffic by destination and coherence block
transfers by home type, producing the compact aggregates the timing model
charges to links.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.placement.pagemap import PageMap
from repro.topology.model import POOL_LOCATION
from repro.workloads.population import PagePopulation


@dataclass
class PhaseClassification:
    """Aggregated access counts of one phase.

    ``demand[s, l]`` counts demand (memory-serviced) accesses of socket
    ``s`` to location ``l``; column ``n_sockets`` is the pool.
    ``demand_writes`` is the expected store share of the same cells (the
    writeback traffic driver). ``bt_socket[s, h]`` counts block transfers
    whose home is socket ``h``; ``bt_pool[s]`` those homed at the pool,
    with ``bt_pool_owner[u]`` the expected owner-side CXL load.
    """

    demand: np.ndarray
    demand_writes: np.ndarray
    bt_socket: np.ndarray
    bt_pool: np.ndarray
    bt_pool_owner: np.ndarray
    total_accesses: float
    #: Writes to software-replicated pages (each pays the replication
    #: plan's coherence penalty on top of its local access).
    replicated_writes: float = 0.0

    @property
    def n_sockets(self) -> int:
        return int(self.demand.shape[0])

    @property
    def pool_column(self) -> int:
        return self.n_sockets

    def demand_to_pool(self) -> float:
        return float(self.demand[:, self.pool_column].sum())

    def block_transfers(self) -> float:
        return float(self.bt_socket.sum() + self.bt_pool.sum())


def block_transfer_fractions(population: PagePopulation) -> np.ndarray:
    """Per-page probability that a miss is served cache-to-cache.

    Vectorized form of
    :meth:`repro.coherence.transfers.SharingModel.block_transfer_fraction`.
    Cached on the population: its inputs (profile coupling, sharer
    counts, write fractions) are fixed once the population is built, and
    every phase evaluation of every system variant re-reads them.
    """
    cached = getattr(population, "_bt_fractions", None)
    if cached is None:
        coupling = population.profile.coupling
        sharers = population.sharer_count.astype(np.float64)
        writes = population.write_fraction
        intensity = writes * (2.0 - writes)
        remote_writer = np.where(sharers > 1, (sharers - 1) / sharers, 0.0)
        cached = np.minimum(1.0, coupling * intensity * remote_writer)
        population._bt_fractions = cached
    return cached


def classify_phase(counts: np.ndarray, page_map: PageMap,
                   population: PagePopulation,
                   replication: Optional["ReplicationPlan"] = None
                   ) -> PhaseClassification:
    """Build the phase aggregates from raw per-page counts.

    With a ``replication`` plan, accesses to replicated pages are served
    by the local replica (demand at the requester's own socket, no block
    transfers -- software keeps replicas coherent instead), and their
    write volume is reported separately so the timing model can charge
    the software-coherence penalty.
    """
    n_sockets, n_pages = counts.shape
    if n_pages != page_map.n_pages:
        raise ValueError(
            f"trace covers {n_pages} pages, map has {page_map.n_pages}"
        )

    replicated_writes = 0.0
    replica_local = None
    if replication is not None:
        if replication.replicated.size != n_pages:
            raise ValueError("replication plan covers a different footprint")
        mask = replication.replicated
        if mask.any():
            rep_counts = counts[:, mask].astype(np.float64)
            rep_writes = rep_counts * population.write_fraction[None, mask]
            replica_local = (rep_counts.sum(axis=1),
                             rep_writes.sum(axis=1))
            replicated_writes = float(rep_writes.sum())
            counts = counts.copy()
            counts[:, mask] = 0

    locations = page_map.locations.astype(np.int64)
    location_index = np.where(locations == POOL_LOCATION, n_sockets,
                              locations)

    bt_fraction = block_transfer_fractions(population)
    counts = counts.astype(np.float64)
    bt_counts = counts * bt_fraction[None, :]
    demand_counts = counts - bt_counts

    n_locations = n_sockets + 1
    writes = population.write_fraction
    pool_pages = locations == POOL_LOCATION

    # One 2-D scatter over flattened (socket, location) indices instead
    # of a Python-level loop of per-socket np.add.at calls: bincount
    # accumulates in the same element order, row-major by socket. Pool
    # pages map to the last column, so the same flat index serves both
    # the demand aggregates and the block-transfer split (its pool
    # column IS bt_pool -- no boolean masking copies).
    socket_base = np.arange(n_sockets, dtype=np.int64)[:, None]
    flat_index = (socket_base * n_locations
                  + location_index[None, :]).ravel()
    n_bins = n_sockets * n_locations
    demand = np.bincount(
        flat_index, weights=demand_counts.ravel(), minlength=n_bins,
    ).reshape(n_sockets, n_locations)
    demand_writes = np.bincount(
        flat_index, weights=(demand_counts * writes).ravel(),
        minlength=n_bins,
    ).reshape(n_sockets, n_locations)
    bt_by_location = np.bincount(
        flat_index, weights=bt_counts.ravel(), minlength=n_bins,
    ).reshape(n_sockets, n_locations)
    bt_socket = bt_by_location[:, :n_sockets]
    bt_pool = bt_by_location[:, n_sockets]

    # Owner-side CXL load of pool-homed transfers: the owner is a uniform
    # random sharer of the page, so each sharer carries weight/k of the
    # page's transfer volume.
    bt_pool_per_page = bt_counts.sum(axis=0) * pool_pages
    per_sharer = bt_pool_per_page / population.sharer_count
    membership = getattr(population, "_membership_f64", None)
    if membership is None:
        membership = population.membership().astype(np.float64)
        population._membership_f64 = membership
    bt_pool_owner = membership @ per_sharer

    if replica_local is not None:
        local_counts, local_writes = replica_local
        demand[np.arange(n_sockets), np.arange(n_sockets)] += local_counts
        demand_writes[np.arange(n_sockets),
                      np.arange(n_sockets)] += local_writes

    return PhaseClassification(
        demand=demand,
        demand_writes=demand_writes,
        bt_socket=bt_socket,
        bt_pool=bt_pool,
        bt_pool_owner=bt_pool_owner,
        total_accesses=float(counts.sum())
        + (float(replica_local[0].sum()) if replica_local is not None
           else 0.0),
        replicated_writes=replicated_writes,
    )
