"""Step C: phase-level timing via link loading and an AMAT<->IPC fixed point.

For one phase the model:

1. classifies every access (demand by destination, block transfers by
   home type) from the page map;
2. charges request/fill/writeback bytes to every link each access class
   traverses, plus migration page copies and tracker-update traffic;
3. iterates the closed loop: a guessed IPC fixes the phase's wall-clock
   window, hence every link's offered bandwidth, hence M/D/1 waiting
   times, hence the loaded AMAT, hence -- through the calibrated CPI
   model -- a new IPC. Damped iteration converges because waiting time
   is monotone in IPC.

The per-access latency of each class is its unloaded latency plus the
queueing delay accumulated along its route (request and fill directions;
DRAM queues are shared between directions and counted once).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.config import SystemConfig
from repro.config.parameters import CACHE_BLOCK_BYTES, PAGE_SIZE_BYTES
from repro.interconnect.loads import MESSAGE_HEADER_BYTES, LinkLoads
from repro.metrics.breakdown import AccessBreakdown
from repro.metrics.calibration import CalibratedCpi
from repro.migration.costs import MigrationCostModel
from repro.obs import OBS
from repro.migration.records import MigrationBatch
from repro.sim.classification import PhaseClassification, classify_phase
from repro.sim.results import PhaseTiming
from repro.placement.pagemap import PageMap
from repro.topology.model import (
    POOL_LOCATION,
    AccessType,
    LinkKind,
    Topology,
)
from repro.topology.routing import Route, RouteTable
from repro.trace.records import PhaseTrace
from repro.workloads.population import PagePopulation

if TYPE_CHECKING:
    from repro.replication import ReplicationPlan

#: Per-access bytes of tracker-update traffic (annex flushes by the PTW
#: into the metadata region); a small constant charge on local DRAM.
TRACKER_BYTES_PER_ACCESS = 0.8

#: Contention multiplier of pool-homed block transfers relative to one
#: pool round trip: the 4-hop path crosses the CXL fabric twice.
BT_POOL_CONTENTION_FACTOR = 1.5


@dataclass
class FixedPointSettings:
    """Convergence controls of the IPC<->AMAT iteration."""

    max_iterations: int = 60
    tolerance: float = 1e-3
    damping: float = 0.5
    #: Arrival-burstiness multiplier fed to the queueing model (defaults
    #: to :data:`repro.interconnect.queueing.DEFAULT_BURSTINESS`).
    burstiness: Optional[float] = None
    #: Which AMAT evaluation runs inside the fixed point: ``"vector"``
    #: (array kernel over the route-incidence matrix, the default) or
    #: ``"scalar"`` (the historical per-route Python loop, kept as the
    #: reference implementation for the equivalence suite).
    kernel: str = "vector"

    def __post_init__(self) -> None:
        if self.burstiness is None:
            from repro.interconnect.queueing import DEFAULT_BURSTINESS

            self.burstiness = DEFAULT_BURSTINESS
        if self.kernel not in ("vector", "scalar"):
            raise ValueError(
                f"kernel must be 'vector' or 'scalar', got {self.kernel!r}"
            )


class _VectorKernel:
    """Precompiled array form of one model's route/latency geometry.

    Routes and unloaded latencies are fixed per (topology, route table)
    pair -- one kernel per timing model, so each fault state's model
    compiles its own incidence against its own rerouted table. Rows are
    the access families the scalar kernel iterates:

    * ``demand`` rows, one per (socket, location column) pair;
    * ``bt-socket`` rows, one per (requester, home) pair (the data leg
      of the 3-hop transfer, zero incidence on the diagonal);
    * ``bt-pool`` rows, one per socket, pre-scaled by the pool
      contention factor.

    ``incidence[r] @ wait_ns_vector`` reproduces the scalar kernel's
    request+fill queueing sum of family ``r``'s route; the per-phase
    contraction ``counts @ incidence`` collapses all families into one
    charge vector, making each fixed-point iteration a single
    utilization -> waiting-time -> dot-product pipeline.
    """

    def __init__(self, model: "PhaseTimingModel"):
        topology = model.topology
        routes = model.routes
        index = topology.link_index()
        n = topology.n_sockets
        n_locations = n + 1
        self.has_pool = topology.has_pool
        self.n_demand_rows = n * n_locations
        self.n_bt_rows = n * n
        rows = self.n_demand_rows + self.n_bt_rows + n
        incidence = np.zeros((rows, index.n_slots), dtype=np.float64)
        unloaded = np.zeros(rows, dtype=np.float64)
        #: Byte-charge matrices: row r scattered onto the slots its
        #: request (route direction) and fill (reverse direction)
        #: messages traverse; block-transfer rows carry the data block
        #: forward and the header-sized ack backward.
        request_inc = np.zeros_like(incidence)
        fill_inc = np.zeros_like(incidence)

        def scatter(matrix: np.ndarray, row: int,
                    slots: np.ndarray) -> None:
            np.add.at(matrix[row], slots, 1.0)

        for socket in range(n):
            for column in range(n_locations):
                location = POOL_LOCATION if column == n else column
                if location == POOL_LOCATION and not topology.has_pool:
                    continue  # row stays zero; counts there must be zero
                row = socket * n_locations + column
                kind = topology.classify(socket, location)
                unloaded[row] = (
                    topology.unloaded_latency_ns(kind)
                    + routes.detour_penalty_ns(socket, location)
                )
                incidence[row] = index.incidence_row(
                    routes.route(socket, location)
                )
                compiled = routes.compiled(socket, location)
                scatter(request_inc, row, compiled.forward_slots)
                scatter(fill_inc, row, compiled.reverse_slots)

        bt_socket_ns = topology.unloaded_latency_ns(
            AccessType.BLOCK_TRANSFER_SOCKET
        )
        for socket in range(n):
            for home in range(n):
                row = self.n_demand_rows + socket * n + home
                unloaded[row] = bt_socket_ns
                if home != socket:
                    leg = routes.route(socket, home)[:-1]
                    incidence[row] = index.incidence_row(leg)
                    compiled = index.compile_route(leg)
                    scatter(request_inc, row, compiled.forward_slots)
                    scatter(fill_inc, row, compiled.reverse_slots)

        if topology.has_pool:
            bt_pool_ns = topology.unloaded_latency_ns(
                AccessType.BLOCK_TRANSFER_POOL
            )
            #: First hop of each socket's pool route (the CXL link on the
            #: ideal fabric, possibly a detour under faults): pool-homed
            #: transfer data flows to the requester on its reverse, the
            #: owner's supply on its forward.
            self.pool_fwd_slots = np.empty(n, dtype=np.intp)
            self.pool_rev_slots = np.empty(n, dtype=np.intp)
            self.dram_slots = np.empty(n, dtype=np.intp)
            for socket in range(n):
                row = self.n_demand_rows + self.n_bt_rows + socket
                unloaded[row] = bt_pool_ns
                incidence[row] = index.incidence_row(
                    routes.route(socket, POOL_LOCATION),
                    weight=BT_POOL_CONTENTION_FACTOR,
                )
                first_hop = routes.route(socket, POOL_LOCATION)[0]
                self.pool_fwd_slots[socket] = index.slot(first_hop)
                self.pool_rev_slots[socket] = index.slot(
                    first_hop.reversed()
                )
                self.dram_slots[socket] = index.slot(
                    routes.route(socket, socket)[0]
                )

        self.incidence = incidence
        self.unloaded = unloaded
        self.request_inc = request_inc
        self.fill_inc = fill_inc

    def charge(self, classification: PhaseClassification,
               loads: LinkLoads) -> None:
        """Vectorized :meth:`PhaseTimingModel._build_loads` charging.

        Charges demand, socket-homed block transfers, pool-homed
        transfer legs, and tracker traffic as a handful of
        matrix-vector contractions against the per-slot byte vector --
        the array equivalent of the scalar kernel's per-route
        ``add_access_traffic``/``add_transfer_traffic`` loops.
        """
        if not self.has_pool and classification.demand_to_pool() > 0:
            raise ValueError("pool accesses on a pool-less system")
        header = MESSAGE_HEADER_BYTES
        block = CACHE_BLOCK_BYTES + MESSAGE_HEADER_BYTES
        demand = classification.demand.ravel()
        writes = classification.demand_writes.ravel()
        bt = classification.bt_socket.ravel()
        n_demand, n_bt = self.n_demand_rows, self.n_bt_rows
        row_request = np.zeros(self.unloaded.size, dtype=np.float64)
        row_fill = np.zeros(self.unloaded.size, dtype=np.float64)
        # Demand: per-access request header (+ writeback block share)
        # forward, one data fill backward.
        row_request[:n_demand] = demand * header + writes * block
        row_fill[:n_demand] = demand * block
        # Socket-homed block transfers: data block forward, header ack
        # backward, along the DRAM-less data leg.
        row_request[n_demand:n_demand + n_bt] = bt * block
        row_fill[n_demand:n_demand + n_bt] = bt * header
        vec = loads.bytes_vector
        vec += row_request @ self.request_inc
        vec += row_fill @ self.fill_inc

        if self.has_pool:
            # Pool-homed transfers: data to the requester flows pool ->
            # socket (reverse of the request route's first hop); the
            # owner's supply flows socket -> pool (forward).
            down = classification.bt_pool * (64 + MESSAGE_HEADER_BYTES)
            up = classification.bt_pool_owner * (64 + MESSAGE_HEADER_BYTES)
            np.add.at(vec, self.pool_rev_slots, down)
            np.add.at(vec, self.pool_fwd_slots, up)
            # Tracker-update traffic (StarNUMA's monitoring hardware).
            issued = (classification.demand.sum(axis=1)
                      + classification.bt_socket.sum(axis=1)
                      + classification.bt_pool)
            np.add.at(vec, self.dram_slots,
                      issued * TRACKER_BYTES_PER_ACCESS)

    def phase_weights(self, classification: PhaseClassification
                      ) -> tuple:
        """Contract one phase's counts against the precompiled geometry.

        Returns ``(charge, weighted_unloaded)``: the per-slot charge
        vector whose dot product with the waiting-time vector is the
        phase's total queueing-weighted delay, and the IPC-independent
        unloaded-latency sum.
        """
        counts = np.concatenate((
            classification.demand.ravel(),
            classification.bt_socket.ravel(),
            classification.bt_pool,
        ))
        charge = counts @ self.incidence
        weighted_unloaded = float(counts @ self.unloaded)
        return charge, weighted_unloaded


class PhaseTimingModel:
    """Evaluates the loaded AMAT and IPC of one phase."""

    def __init__(self, system: SystemConfig, topology: Topology,
                 routes: RouteTable, population: PagePopulation,
                 settings: Optional[FixedPointSettings] = None,
                 replication: Optional["ReplicationPlan"] = None):
        self.system = system
        self.topology = topology
        self.routes = routes
        self.population = population
        self.settings = settings or FixedPointSettings()
        self.cost_model = MigrationCostModel(system)
        #: Optional :class:`~repro.replication.ReplicationPlan`; accesses
        #: to replicated pages are served locally, writes pay the plan's
        #: software-coherence penalty.
        self.replication = replication
        self._pool_index = topology.n_sockets
        self._kernel: Optional[_VectorKernel] = None

    def _vector_kernel(self) -> _VectorKernel:
        """The compiled array kernel of this model (built on first use)."""
        if self._kernel is None:
            self._kernel = _VectorKernel(self)
        return self._kernel

    # -- public ------------------------------------------------------------

    def evaluate(self, trace: PhaseTrace, page_map: PageMap,
                 calibration: CalibratedCpi,
                 batch: Optional[MigrationBatch] = None,
                 fixed_ipc: Optional[float] = None,
                 initial_ipc: Optional[float] = None) -> PhaseTiming:
        """Run Step C for one phase.

        ``batch`` holds the migrations performed during this phase (their
        copies and stalls are charged here). With ``fixed_ipc`` the closed
        loop is bypassed -- used for the calibration pass, where the
        baseline runs at its published IPC.
        """
        obs_span = OBS.span("sim.phase", phase=trace.phase,
                            kernel=self.settings.kernel,
                            loop="open" if fixed_ipc is not None
                            else "closed")
        with obs_span:
            classification = classify_phase(trace.counts, page_map,
                                            self.population,
                                            self.replication)
            with OBS.span("sim.charge", phase=trace.phase,
                          kernel=self.settings.kernel):
                loads = self._build_loads(classification, batch)
            stall_total_ns, extra_cpi = self._migration_overheads(trace,
                                                                  batch)
            stall_per_access = (
                stall_total_ns / classification.total_accesses
                if classification.total_accesses else 0.0
            )

            weights = None
            if self.settings.kernel == "vector":
                weights = self._vector_kernel().phase_weights(
                    classification
                )

            if fixed_ipc is not None:
                ipc = fixed_ipc
                amat_ns, unloaded_ns = self._amat_at(
                    ipc, trace, classification, loads, stall_per_access,
                    weights
                )
                iterations, converged = 0, True
            else:
                ipc, amat_ns, unloaded_ns, iterations, converged = (
                    self._fixed_point(trace, classification, loads,
                                      stall_per_access, calibration,
                                      extra_cpi, initial_ipc, weights)
                )

            breakdown = self._breakdown(classification)
            duration = self._duration_ns(ipc, trace)
            busiest = loads.busiest(duration, top=3)
            hottest = {
                sample.link_id: sample.utilization
                for sample in busiest
            }

        if OBS.enabled:
            obs_span.set(ipc=ipc, iterations=iterations,
                         converged=converged)
            OBS.counter("sim.phases")
            OBS.counter("sim.fixed_point.iterations", iterations)
            OBS.observe("sim.fixed_point.iterations_per_phase",
                        iterations)
            OBS.event(
                "sim.timing", phase=trace.phase,
                kernel=self.settings.kernel, ipc=ipc, amat_ns=amat_ns,
                unloaded_amat_ns=unloaded_ns, duration_ns=duration,
                iterations=iterations, converged=converged,
                total_accesses=classification.total_accesses,
                migrated_pages=batch.n_pages if batch else 0,
            )
            if busiest:
                OBS.event(
                    "interconnect.utilization", phase=trace.phase,
                    top=[sample.as_attrs() for sample in busiest],
                )
        return PhaseTiming(
            phase=trace.phase,
            ipc=ipc,
            duration_ns=duration,
            amat_ns=amat_ns,
            unloaded_amat_ns=unloaded_ns,
            breakdown=breakdown,
            total_accesses=classification.total_accesses,
            migrated_pages=batch.n_pages if batch else 0,
            migrated_pages_to_pool=batch.pages_to_pool if batch else 0,
            migration_stall_ns_per_access=stall_per_access,
            fixed_point_iterations=iterations,
            converged=converged,
            hottest_links=hottest,
        )

    # -- loading -------------------------------------------------------------

    def _duration_ns(self, ipc: float, trace: PhaseTrace) -> float:
        cycles = trace.instructions_per_thread / ipc
        return self.system.core.cycles_to_ns(cycles)

    def _location_of_column(self, column: int) -> int:
        return POOL_LOCATION if column == self._pool_index else column

    def _build_loads(self, classification: PhaseClassification,
                     batch: Optional[MigrationBatch]) -> LinkLoads:
        loads = LinkLoads(self.topology, burstiness=self.settings.burstiness)
        if self.settings.kernel == "vector":
            self._vector_kernel().charge(classification, loads)
        else:
            self._build_loads_scalar(classification, loads)
        if batch is not None:
            self._charge_migrations(loads, batch)
        return loads

    def _build_loads_scalar(self, classification: PhaseClassification,
                            loads: LinkLoads) -> None:
        n_sockets = classification.n_sockets

        for socket in range(n_sockets):
            for column in range(n_sockets + 1):
                count = classification.demand[socket, column]
                if count <= 0:
                    continue
                location = self._location_of_column(column)
                if location == POOL_LOCATION and not self.topology.has_pool:
                    raise ValueError("pool accesses on a pool-less system")
                writes = classification.demand_writes[socket, column]
                loads.add_access_traffic(
                    self.routes.route(socket, location),
                    accesses=count,
                    writeback_fraction=writes / count,
                )

            # Socket-homed block transfers: the dominant data hop runs
            # owner -> requester; we charge it along the requester<->home
            # route as a proxy for the averaged three-leg path.
            for home in range(n_sockets):
                count = classification.bt_socket[socket, home]
                if count <= 0 or home == socket:
                    continue
                loads.add_transfer_traffic(
                    self.routes.route(socket, home)[:-1],  # no DRAM hop
                    transfers=count,
                )

        if self.topology.has_pool:
            for socket in range(n_sockets):
                down = classification.bt_pool[socket]
                up = classification.bt_pool_owner[socket]
                if down <= 0 and up <= 0:
                    continue
                cxl = self.routes.route(socket, POOL_LOCATION)[0]
                # Data to the requester flows pool -> socket (reverse of
                # the request route); the owner's supply flows socket ->
                # pool (forward).
                loads.add(cxl.reversed(), down * (64 + MESSAGE_HEADER_BYTES))
                loads.add(cxl, up * (64 + MESSAGE_HEADER_BYTES))

            # Tracker-update traffic (StarNUMA's monitoring hardware).
            for socket in range(n_sockets):
                issued = float(classification.demand[socket].sum()
                               + classification.bt_socket[socket].sum()
                               + classification.bt_pool[socket])
                dram = self.routes.route(socket, socket)[0]
                loads.add(dram, issued * TRACKER_BYTES_PER_ACCESS)

    def _charge_migrations(self, loads: LinkLoads,
                           batch: MigrationBatch) -> None:
        for move in batch.moves:
            copy_bytes = move.n_pages * PAGE_SIZE_BYTES * (
                1.0 + MESSAGE_HEADER_BYTES / 64.0
            )
            if move.source == POOL_LOCATION:
                # Data flows pool -> destination: reverse of the
                # destination's pool route.
                route = self.routes.route(move.destination, POOL_LOCATION)
                for hop in route:
                    loads.add(hop.reversed(), copy_bytes)
            else:
                route = self.routes.route(move.source, move.destination)
                for hop in route:
                    loads.add(hop, copy_bytes)
                # Source DRAM read of the page being copied.
                source_dram = self.routes.route(move.source, move.source)[0]
                loads.add(source_dram, copy_bytes)

    # -- AMAT ----------------------------------------------------------------

    def _route_delay_ns(self, route: Route, loads: LinkLoads,
                        window_ns: float) -> float:
        """Request+fill queueing along a route; DRAM queues counted once."""
        total = 0.0
        for hop in route:
            if hop.link.kind is LinkKind.DRAM:
                total += loads.delay_ns(hop, window_ns)
            else:
                total += loads.delay_ns(hop, window_ns)
                total += loads.delay_ns(hop.reversed(), window_ns)
        return total

    def _amat_at(self, ipc: float, trace: PhaseTrace,
                 classification: PhaseClassification, loads: LinkLoads,
                 stall_per_access: float,
                 weights: Optional[tuple] = None) -> tuple:
        """Loaded and unloaded AMAT at one IPC guess (kernel dispatch)."""
        if weights is not None:
            return self._amat_at_vector(ipc, trace, classification, loads,
                                        stall_per_access, weights)
        return self._amat_at_scalar(ipc, trace, classification, loads,
                                    stall_per_access)

    def _amat_at_vector(self, ipc: float, trace: PhaseTrace,
                        classification: PhaseClassification,
                        loads: LinkLoads, stall_per_access: float,
                        weights: tuple) -> tuple:
        """Array kernel: one waiting-time vector, one dot product."""
        total = classification.total_accesses
        if total == 0:
            local = self.system.latency.local_ns
            return local, local
        charge, weighted_unloaded = weights
        window = self._duration_ns(ipc, trace)
        wait = loads.wait_ns_vector(window)
        weighted_loaded = weighted_unloaded + float(charge @ wait)
        amat = weighted_loaded / total + stall_per_access
        unloaded_amat = weighted_unloaded / total
        return self._apply_replication_penalty(classification, total,
                                               amat, unloaded_amat)

    def _amat_at_scalar(self, ipc: float, trace: PhaseTrace,
                        classification: PhaseClassification,
                        loads: LinkLoads, stall_per_access: float) -> tuple:
        window = self._duration_ns(ipc, trace)
        latency = self.system.latency
        n_sockets = classification.n_sockets

        weighted_loaded = 0.0
        weighted_unloaded = 0.0

        for socket in range(n_sockets):
            for column in range(n_sockets + 1):
                count = classification.demand[socket, column]
                if count <= 0:
                    continue
                location = self._location_of_column(column)
                kind = self.topology.classify(socket, location)
                unloaded = (self.topology.unloaded_latency_ns(kind)
                            + self.routes.detour_penalty_ns(socket, location))
                route = self.routes.route(socket, location)
                loaded = unloaded + self._route_delay_ns(route, loads, window)
                weighted_loaded += count * loaded
                weighted_unloaded += count * unloaded

            for home in range(n_sockets):
                count = classification.bt_socket[socket, home]
                if count <= 0:
                    continue
                unloaded = self.topology.unloaded_latency_ns(
                    AccessType.BLOCK_TRANSFER_SOCKET
                )
                if home == socket:
                    contention = 0.0
                else:
                    contention = self._route_delay_ns(
                        self.routes.route(socket, home)[:-1], loads, window
                    )
                weighted_loaded += count * (unloaded + contention)
                weighted_unloaded += count * unloaded

            count = classification.bt_pool[socket]
            if count > 0:
                unloaded = self.topology.unloaded_latency_ns(
                    AccessType.BLOCK_TRANSFER_POOL
                )
                contention = BT_POOL_CONTENTION_FACTOR * self._route_delay_ns(
                    self.routes.route(socket, POOL_LOCATION), loads, window
                )
                weighted_loaded += count * (unloaded + contention)
                weighted_unloaded += count * unloaded

        total = classification.total_accesses
        if total == 0:
            local = latency.local_ns
            return local, local
        amat = weighted_loaded / total + stall_per_access
        unloaded_amat = weighted_unloaded / total
        return self._apply_replication_penalty(classification, total,
                                               amat, unloaded_amat)

    def _apply_replication_penalty(self, classification: PhaseClassification,
                                   total: float, amat: float,
                                   unloaded_amat: float) -> tuple:
        if self.replication is not None and classification.replicated_writes:
            # Software coherence for replicas: every write to a replicated
            # page pays the invalidation broadcast.
            penalty = (classification.replicated_writes
                       * self.replication.write_penalty_ns) / total
            amat += penalty
            unloaded_amat += penalty
        return amat, unloaded_amat

    def _fixed_point(self, trace: PhaseTrace,
                     classification: PhaseClassification, loads: LinkLoads,
                     stall_per_access: float, calibration: CalibratedCpi,
                     extra_cpi: float,
                     initial_ipc: Optional[float],
                     weights: Optional[tuple] = None) -> tuple:
        settings = self.settings
        core = self.system.core
        ipc = initial_ipc or self.population.profile.ipc_16
        amat_ns = unloaded_ns = 0.0
        #: Relative-step trajectory, recorded only when obs is armed; the
        #: iteration itself is byte-identical either way.
        residuals: Optional[list] = [] if OBS.enabled else None
        for iteration in range(1, settings.max_iterations + 1):
            amat_ns, unloaded_ns = self._amat_at(
                ipc, trace, classification, loads, stall_per_access, weights
            )
            target = calibration.ipc(core.ns_to_cycles(amat_ns), extra_cpi)
            new_ipc = (settings.damping * target
                       + (1.0 - settings.damping) * ipc)
            if residuals is not None:
                residuals.append(abs(new_ipc - ipc) / ipc)
            if abs(new_ipc - ipc) <= settings.tolerance * ipc:
                self._emit_fixed_point(trace, iteration, True, residuals)
                return new_ipc, amat_ns, unloaded_ns, iteration, True
            ipc = new_ipc
        self._emit_fixed_point(trace, settings.max_iterations, False,
                               residuals)
        return ipc, amat_ns, unloaded_ns, settings.max_iterations, False

    def _emit_fixed_point(self, trace: PhaseTrace, iterations: int,
                          converged: bool,
                          residuals: Optional[list]) -> None:
        """Detail-level provenance of one closed-loop solve."""
        if residuals is None:
            return
        OBS.detail("sim.fixed_point", phase=trace.phase,
                   kernel=self.settings.kernel, iterations=iterations,
                   converged=converged, residuals=residuals)

    # -- overheads -----------------------------------------------------------

    def _migration_overheads(self, trace: PhaseTrace,
                             batch: Optional[MigrationBatch]) -> tuple:
        """(total stall ns, amortized extra CPI) of this phase's batch."""
        if batch is None or batch.n_pages == 0:
            return 0.0, 0.0
        # Phase duration for the stall estimate uses the anchor IPC; the
        # second-order error of not re-evaluating it inside the fixed
        # point is negligible (stalls are a small AMAT term).
        duration = self._duration_ns(self.population.profile.ipc_16, trace)
        costs = self.cost_model.costs_for(batch, trace.counts, duration)
        threads = self.system.cores_per_socket * self.topology.n_sockets
        extra_cpi = costs.shootdown_cycles / (
            trace.instructions_per_thread * threads
        )
        return costs.stall_ns_total, extra_cpi

    def _breakdown(self, classification: PhaseClassification
                   ) -> AccessBreakdown:
        breakdown = AccessBreakdown()
        n_sockets = classification.n_sockets
        for socket in range(n_sockets):
            for column in range(n_sockets + 1):
                count = classification.demand[socket, column]
                if count <= 0:
                    continue
                kind = self.topology.classify(
                    socket, self._location_of_column(column)
                )
                breakdown.add(kind, count)
        bt_socket_total = float(classification.bt_socket.sum())
        bt_pool_total = float(classification.bt_pool.sum())
        if bt_socket_total:
            breakdown.add(AccessType.BLOCK_TRANSFER_SOCKET, bt_socket_total)
        if bt_pool_total:
            breakdown.add(AccessType.BLOCK_TRANSFER_POOL, bt_pool_total)
        return breakdown
