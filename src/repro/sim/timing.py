"""Step C: phase-level timing via link loading and an AMAT<->IPC fixed point.

For one phase the model:

1. classifies every access (demand by destination, block transfers by
   home type) from the page map;
2. charges request/fill/writeback bytes to every link each access class
   traverses, plus migration page copies and tracker-update traffic;
3. iterates the closed loop: a guessed IPC fixes the phase's wall-clock
   window, hence every link's offered bandwidth, hence M/D/1 waiting
   times, hence the loaded AMAT, hence -- through the calibrated CPI
   model -- a new IPC. Damped iteration converges because waiting time
   is monotone in IPC.

The per-access latency of each class is its unloaded latency plus the
queueing delay accumulated along its route (request and fill directions;
DRAM queues are shared between directions and counted once).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.config import SystemConfig
from repro.config.parameters import PAGE_SIZE_BYTES
from repro.interconnect.loads import MESSAGE_HEADER_BYTES, LinkLoads
from repro.metrics.breakdown import AccessBreakdown
from repro.metrics.calibration import CalibratedCpi
from repro.migration.costs import MigrationCostModel
from repro.migration.records import MigrationBatch
from repro.sim.classification import PhaseClassification, classify_phase
from repro.sim.results import PhaseTiming
from repro.placement.pagemap import PageMap
from repro.topology.model import (
    POOL_LOCATION,
    AccessType,
    LinkKind,
    Topology,
)
from repro.topology.routing import Route, RouteTable
from repro.trace.records import PhaseTrace
from repro.workloads.population import PagePopulation

if TYPE_CHECKING:
    from repro.replication import ReplicationPlan

#: Per-access bytes of tracker-update traffic (annex flushes by the PTW
#: into the metadata region); a small constant charge on local DRAM.
TRACKER_BYTES_PER_ACCESS = 0.8

#: Contention multiplier of pool-homed block transfers relative to one
#: pool round trip: the 4-hop path crosses the CXL fabric twice.
BT_POOL_CONTENTION_FACTOR = 1.5


@dataclass
class FixedPointSettings:
    """Convergence controls of the IPC<->AMAT iteration."""

    max_iterations: int = 60
    tolerance: float = 1e-3
    damping: float = 0.5
    #: Arrival-burstiness multiplier fed to the queueing model (defaults
    #: to :data:`repro.interconnect.queueing.DEFAULT_BURSTINESS`).
    burstiness: Optional[float] = None

    def __post_init__(self) -> None:
        if self.burstiness is None:
            from repro.interconnect.queueing import DEFAULT_BURSTINESS

            self.burstiness = DEFAULT_BURSTINESS


class PhaseTimingModel:
    """Evaluates the loaded AMAT and IPC of one phase."""

    def __init__(self, system: SystemConfig, topology: Topology,
                 routes: RouteTable, population: PagePopulation,
                 settings: Optional[FixedPointSettings] = None,
                 replication: Optional["ReplicationPlan"] = None):
        self.system = system
        self.topology = topology
        self.routes = routes
        self.population = population
        self.settings = settings or FixedPointSettings()
        self.cost_model = MigrationCostModel(system)
        #: Optional :class:`~repro.replication.ReplicationPlan`; accesses
        #: to replicated pages are served locally, writes pay the plan's
        #: software-coherence penalty.
        self.replication = replication
        self._pool_index = topology.n_sockets

    # -- public ------------------------------------------------------------

    def evaluate(self, trace: PhaseTrace, page_map: PageMap,
                 calibration: CalibratedCpi,
                 batch: Optional[MigrationBatch] = None,
                 fixed_ipc: Optional[float] = None,
                 initial_ipc: Optional[float] = None) -> PhaseTiming:
        """Run Step C for one phase.

        ``batch`` holds the migrations performed during this phase (their
        copies and stalls are charged here). With ``fixed_ipc`` the closed
        loop is bypassed -- used for the calibration pass, where the
        baseline runs at its published IPC.
        """
        classification = classify_phase(trace.counts, page_map,
                                        self.population, self.replication)
        loads = self._build_loads(classification, batch)
        stall_total_ns, extra_cpi = self._migration_overheads(trace, batch)
        stall_per_access = (stall_total_ns / classification.total_accesses
                            if classification.total_accesses else 0.0)

        if fixed_ipc is not None:
            ipc = fixed_ipc
            amat_ns, unloaded_ns = self._amat_at(ipc, trace, classification,
                                                 loads, stall_per_access)
            iterations, converged = 0, True
        else:
            ipc, amat_ns, unloaded_ns, iterations, converged = (
                self._fixed_point(trace, classification, loads,
                                  stall_per_access, calibration, extra_cpi,
                                  initial_ipc)
            )

        breakdown = self._breakdown(classification)
        duration = self._duration_ns(ipc, trace)
        hottest = {
            sample.link_id: sample.utilization
            for sample in loads.busiest(duration, top=3)
        }
        return PhaseTiming(
            phase=trace.phase,
            ipc=ipc,
            duration_ns=duration,
            amat_ns=amat_ns,
            unloaded_amat_ns=unloaded_ns,
            breakdown=breakdown,
            total_accesses=classification.total_accesses,
            migrated_pages=batch.n_pages if batch else 0,
            migrated_pages_to_pool=batch.pages_to_pool if batch else 0,
            migration_stall_ns_per_access=stall_per_access,
            fixed_point_iterations=iterations,
            converged=converged,
            hottest_links=hottest,
        )

    # -- loading -------------------------------------------------------------

    def _duration_ns(self, ipc: float, trace: PhaseTrace) -> float:
        cycles = trace.instructions_per_thread / ipc
        return self.system.core.cycles_to_ns(cycles)

    def _location_of_column(self, column: int) -> int:
        return POOL_LOCATION if column == self._pool_index else column

    def _build_loads(self, classification: PhaseClassification,
                     batch: Optional[MigrationBatch]) -> LinkLoads:
        loads = LinkLoads(self.topology, burstiness=self.settings.burstiness)
        n_sockets = classification.n_sockets

        for socket in range(n_sockets):
            for column in range(n_sockets + 1):
                count = classification.demand[socket, column]
                if count <= 0:
                    continue
                location = self._location_of_column(column)
                if location == POOL_LOCATION and not self.topology.has_pool:
                    raise ValueError("pool accesses on a pool-less system")
                writes = classification.demand_writes[socket, column]
                loads.add_access_traffic(
                    self.routes.route(socket, location),
                    accesses=count,
                    writeback_fraction=writes / count,
                )

            # Socket-homed block transfers: the dominant data hop runs
            # owner -> requester; we charge it along the requester<->home
            # route as a proxy for the averaged three-leg path.
            for home in range(n_sockets):
                count = classification.bt_socket[socket, home]
                if count <= 0 or home == socket:
                    continue
                loads.add_transfer_traffic(
                    self.routes.route(socket, home)[:-1],  # no DRAM hop
                    transfers=count,
                )

        if self.topology.has_pool:
            for socket in range(n_sockets):
                down = classification.bt_pool[socket]
                up = classification.bt_pool_owner[socket]
                if down <= 0 and up <= 0:
                    continue
                cxl = self.routes.route(socket, POOL_LOCATION)[0]
                # Data to the requester flows pool -> socket (reverse of
                # the request route); the owner's supply flows socket ->
                # pool (forward).
                loads.add(cxl.reversed(), down * (64 + MESSAGE_HEADER_BYTES))
                loads.add(cxl, up * (64 + MESSAGE_HEADER_BYTES))

            # Tracker-update traffic (StarNUMA's monitoring hardware).
            for socket in range(n_sockets):
                issued = float(classification.demand[socket].sum()
                               + classification.bt_socket[socket].sum()
                               + classification.bt_pool[socket])
                dram = self.routes.route(socket, socket)[0]
                loads.add(dram, issued * TRACKER_BYTES_PER_ACCESS)

        if batch is not None:
            self._charge_migrations(loads, batch)
        return loads

    def _charge_migrations(self, loads: LinkLoads,
                           batch: MigrationBatch) -> None:
        for move in batch.moves:
            copy_bytes = move.n_pages * PAGE_SIZE_BYTES * (
                1.0 + MESSAGE_HEADER_BYTES / 64.0
            )
            if move.source == POOL_LOCATION:
                # Data flows pool -> destination: reverse of the
                # destination's pool route.
                route = self.routes.route(move.destination, POOL_LOCATION)
                for hop in route:
                    loads.add(hop.reversed(), copy_bytes)
            else:
                route = self.routes.route(move.source, move.destination)
                for hop in route:
                    loads.add(hop, copy_bytes)
                # Source DRAM read of the page being copied.
                source_dram = self.routes.route(move.source, move.source)[0]
                loads.add(source_dram, copy_bytes)

    # -- AMAT ----------------------------------------------------------------

    def _route_delay_ns(self, route: Route, loads: LinkLoads,
                        window_ns: float) -> float:
        """Request+fill queueing along a route; DRAM queues counted once."""
        total = 0.0
        for hop in route:
            if hop.link.kind is LinkKind.DRAM:
                total += loads.delay_ns(hop, window_ns)
            else:
                total += loads.delay_ns(hop, window_ns)
                total += loads.delay_ns(hop.reversed(), window_ns)
        return total

    def _amat_at(self, ipc: float, trace: PhaseTrace,
                 classification: PhaseClassification, loads: LinkLoads,
                 stall_per_access: float) -> tuple:
        window = self._duration_ns(ipc, trace)
        latency = self.system.latency
        n_sockets = classification.n_sockets

        weighted_loaded = 0.0
        weighted_unloaded = 0.0

        for socket in range(n_sockets):
            for column in range(n_sockets + 1):
                count = classification.demand[socket, column]
                if count <= 0:
                    continue
                location = self._location_of_column(column)
                kind = self.topology.classify(socket, location)
                unloaded = (self.topology.unloaded_latency_ns(kind)
                            + self.routes.detour_penalty_ns(socket, location))
                route = self.routes.route(socket, location)
                loaded = unloaded + self._route_delay_ns(route, loads, window)
                weighted_loaded += count * loaded
                weighted_unloaded += count * unloaded

            for home in range(n_sockets):
                count = classification.bt_socket[socket, home]
                if count <= 0:
                    continue
                unloaded = self.topology.unloaded_latency_ns(
                    AccessType.BLOCK_TRANSFER_SOCKET
                )
                if home == socket:
                    contention = 0.0
                else:
                    contention = self._route_delay_ns(
                        self.routes.route(socket, home)[:-1], loads, window
                    )
                weighted_loaded += count * (unloaded + contention)
                weighted_unloaded += count * unloaded

            count = classification.bt_pool[socket]
            if count > 0:
                unloaded = self.topology.unloaded_latency_ns(
                    AccessType.BLOCK_TRANSFER_POOL
                )
                contention = BT_POOL_CONTENTION_FACTOR * self._route_delay_ns(
                    self.routes.route(socket, POOL_LOCATION), loads, window
                )
                weighted_loaded += count * (unloaded + contention)
                weighted_unloaded += count * unloaded

        total = classification.total_accesses
        if total == 0:
            local = latency.local_ns
            return local, local
        amat = weighted_loaded / total + stall_per_access
        unloaded_amat = weighted_unloaded / total
        if self.replication is not None and classification.replicated_writes:
            # Software coherence for replicas: every write to a replicated
            # page pays the invalidation broadcast.
            penalty = (classification.replicated_writes
                       * self.replication.write_penalty_ns) / total
            amat += penalty
            unloaded_amat += penalty
        return amat, unloaded_amat

    def _fixed_point(self, trace: PhaseTrace,
                     classification: PhaseClassification, loads: LinkLoads,
                     stall_per_access: float, calibration: CalibratedCpi,
                     extra_cpi: float,
                     initial_ipc: Optional[float]) -> tuple:
        settings = self.settings
        core = self.system.core
        ipc = initial_ipc or self.population.profile.ipc_16
        amat_ns = unloaded_ns = 0.0
        for iteration in range(1, settings.max_iterations + 1):
            amat_ns, unloaded_ns = self._amat_at(
                ipc, trace, classification, loads, stall_per_access
            )
            target = calibration.ipc(core.ns_to_cycles(amat_ns), extra_cpi)
            new_ipc = (settings.damping * target
                       + (1.0 - settings.damping) * ipc)
            if abs(new_ipc - ipc) <= settings.tolerance * ipc:
                return new_ipc, amat_ns, unloaded_ns, iteration, True
            ipc = new_ipc
        return ipc, amat_ns, unloaded_ns, settings.max_iterations, False

    # -- overheads -----------------------------------------------------------

    def _migration_overheads(self, trace: PhaseTrace,
                             batch: Optional[MigrationBatch]) -> tuple:
        """(total stall ns, amortized extra CPI) of this phase's batch."""
        if batch is None or batch.n_pages == 0:
            return 0.0, 0.0
        # Phase duration for the stall estimate uses the anchor IPC; the
        # second-order error of not re-evaluating it inside the fixed
        # point is negligible (stalls are a small AMAT term).
        duration = self._duration_ns(self.population.profile.ipc_16, trace)
        costs = self.cost_model.costs_for(batch, trace.counts, duration)
        threads = self.system.cores_per_socket * self.topology.n_sockets
        extra_cpi = costs.shootdown_cycles / (
            trace.instructions_per_thread * threads
        )
        return costs.stall_ns_total, extra_cpi

    def _breakdown(self, classification: PhaseClassification
                   ) -> AccessBreakdown:
        breakdown = AccessBreakdown()
        n_sockets = classification.n_sockets
        for socket in range(n_sockets):
            for column in range(n_sockets + 1):
                count = classification.demand[socket, column]
                if count <= 0:
                    continue
                kind = self.topology.classify(
                    socket, self._location_of_column(column)
                )
                breakdown.add(kind, count)
        bt_socket_total = float(classification.bt_socket.sum())
        bt_pool_total = float(classification.bt_pool.sum())
        if bt_socket_total:
            breakdown.add(AccessType.BLOCK_TRANSFER_SOCKET, bt_socket_total)
        if bt_pool_total:
            breakdown.add(AccessType.BLOCK_TRANSFER_POOL, bt_pool_total)
        return breakdown
