"""Step C: phase-level timing via link loading and an AMAT<->IPC fixed point.

For one phase the model:

1. classifies every access (demand by destination, block transfers by
   home type) from the page map;
2. charges request/fill/writeback bytes to every link each access class
   traverses, plus migration page copies and tracker-update traffic;
3. iterates the closed loop: a guessed IPC fixes the phase's wall-clock
   window, hence every link's offered bandwidth, hence M/D/1 waiting
   times, hence the loaded AMAT, hence -- through the calibrated CPI
   model -- a new IPC. Damped iteration converges because waiting time
   is monotone in IPC.

The per-access latency of each class is its unloaded latency plus the
queueing delay accumulated along its route (request and fill directions;
DRAM queues are shared between directions and counted once).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, List, Optional, Sequence

import numpy as np

from repro.config import CoreConfig, SystemConfig
from repro.config.parameters import CACHE_BLOCK_BYTES, PAGE_SIZE_BYTES
from repro.interconnect.loads import MESSAGE_HEADER_BYTES, LinkLoads
from repro.interconnect.queueing import (
    MAX_STABLE_UTILIZATION,
    mdl_wait_ns_array,
)
from repro.metrics.breakdown import AccessBreakdown
from repro.metrics.calibration import CalibratedCpi
from repro.migration.costs import MigrationCostModel
from repro.obs import OBS
from repro.migration.records import MigrationBatch
from repro.sim.classification import PhaseClassification, classify_phase
from repro.sim.results import PhaseTiming
from repro.placement.pagemap import PageMap
from repro.topology.model import (
    POOL_LOCATION,
    AccessType,
    LinkKind,
    Topology,
)
from repro.topology.routing import Route, RouteTable
from repro.trace.records import PhaseTrace
from repro.workloads.population import PagePopulation

if TYPE_CHECKING:
    from repro.replication import ReplicationPlan

#: Per-access bytes of tracker-update traffic (annex flushes by the PTW
#: into the metadata region); a small constant charge on local DRAM.
TRACKER_BYTES_PER_ACCESS = 0.8

#: Contention multiplier of pool-homed block transfers relative to one
#: pool round trip: the 4-hop path crosses the CXL fabric twice.
BT_POOL_CONTENTION_FACTOR = 1.5


@dataclass
class FixedPointSettings:
    """Convergence controls of the IPC<->AMAT iteration."""

    max_iterations: int = 60
    tolerance: float = 1e-3
    damping: float = 0.5
    #: Arrival-burstiness multiplier fed to the queueing model (defaults
    #: to :data:`repro.interconnect.queueing.DEFAULT_BURSTINESS`).
    burstiness: Optional[float] = None
    #: Which AMAT evaluation runs inside the fixed point: ``"vector"``
    #: (array kernel over the route-incidence matrix, the default),
    #: ``"scalar"`` (the historical per-route Python loop, kept as the
    #: reference implementation for the equivalence suite),
    #: ``"batched"`` (the vector kernel per phase, plus eligibility for
    #: sweep-level lane stacking via :mod:`repro.sim.batch`), or
    #: ``"batched-jit"`` (same, with a numba-compiled masked inner loop
    #: that degrades gracefully to the numpy path when numba is absent).
    kernel: str = "vector"

    #: Kernel names accepted by :attr:`kernel`.
    KERNELS = ("vector", "scalar", "batched", "batched-jit")

    def __post_init__(self) -> None:
        if self.burstiness is None:
            from repro.interconnect.queueing import DEFAULT_BURSTINESS

            self.burstiness = DEFAULT_BURSTINESS
        if self.kernel not in self.KERNELS:
            raise ValueError(
                f"kernel must be one of {self.KERNELS}, got {self.kernel!r}"
            )

    @property
    def uses_vector_weights(self) -> bool:
        """Whether per-phase evaluation runs on the array kernel."""
        return self.kernel != "scalar"


class _VectorKernel:
    """Precompiled array form of one model's route/latency geometry.

    Routes and unloaded latencies are fixed per (topology, route table)
    pair. Kernels are deduped across models through a module cache keyed
    by :meth:`RouteTable.fingerprint`, so fault states whose reroutes
    collapse to identical surviving geometry share one compiled
    incidence (see :func:`_compiled_kernel`). Rows are the access
    families the scalar kernel iterates:

    * ``demand`` rows, one per (socket, location column) pair;
    * ``bt-socket`` rows, one per (requester, home) pair (the data leg
      of the 3-hop transfer, zero incidence on the diagonal);
    * ``bt-pool`` rows, one per socket, pre-scaled by the pool
      contention factor.

    ``incidence[r] @ wait_ns_vector`` reproduces the scalar kernel's
    request+fill queueing sum of family ``r``'s route; the per-phase
    contraction ``counts @ incidence`` collapses all families into one
    charge vector, making each fixed-point iteration a single
    utilization -> waiting-time -> dot-product pipeline.
    """

    def __init__(self, model: "PhaseTimingModel"):
        topology = model.topology
        routes = model.routes
        index = topology.link_index()
        n = topology.n_sockets
        n_locations = n + 1
        self.has_pool = topology.has_pool
        self.n_demand_rows = n * n_locations
        self.n_bt_rows = n * n
        rows = self.n_demand_rows + self.n_bt_rows + n
        incidence = np.zeros((rows, index.n_slots), dtype=np.float64)
        unloaded = np.zeros(rows, dtype=np.float64)
        #: Byte-charge matrices: row r scattered onto the slots its
        #: request (route direction) and fill (reverse direction)
        #: messages traverse; block-transfer rows carry the data block
        #: forward and the header-sized ack backward.
        request_inc = np.zeros_like(incidence)
        fill_inc = np.zeros_like(incidence)

        def scatter(matrix: np.ndarray, row: int,
                    slots: np.ndarray) -> None:
            np.add.at(matrix[row], slots, 1.0)

        for socket in range(n):
            for column in range(n_locations):
                location = POOL_LOCATION if column == n else column
                if location == POOL_LOCATION and not topology.has_pool:
                    continue  # row stays zero; counts there must be zero
                row = socket * n_locations + column
                kind = topology.classify(socket, location)
                unloaded[row] = (
                    topology.unloaded_latency_ns(kind)
                    + routes.detour_penalty_ns(socket, location)
                )
                incidence[row] = index.incidence_row(
                    routes.route(socket, location)
                )
                compiled = routes.compiled(socket, location)
                scatter(request_inc, row, compiled.forward_slots)
                scatter(fill_inc, row, compiled.reverse_slots)

        bt_socket_ns = topology.unloaded_latency_ns(
            AccessType.BLOCK_TRANSFER_SOCKET
        )
        for socket in range(n):
            for home in range(n):
                row = self.n_demand_rows + socket * n + home
                unloaded[row] = bt_socket_ns
                if home != socket:
                    leg = routes.route(socket, home)[:-1]
                    incidence[row] = index.incidence_row(leg)
                    compiled = index.compile_route(leg)
                    scatter(request_inc, row, compiled.forward_slots)
                    scatter(fill_inc, row, compiled.reverse_slots)

        if topology.has_pool:
            bt_pool_ns = topology.unloaded_latency_ns(
                AccessType.BLOCK_TRANSFER_POOL
            )
            #: First hop of each socket's pool route (the CXL link on the
            #: ideal fabric, possibly a detour under faults): pool-homed
            #: transfer data flows to the requester on its reverse, the
            #: owner's supply on its forward.
            self.pool_fwd_slots = np.empty(n, dtype=np.intp)
            self.pool_rev_slots = np.empty(n, dtype=np.intp)
            self.dram_slots = np.empty(n, dtype=np.intp)
            for socket in range(n):
                row = self.n_demand_rows + self.n_bt_rows + socket
                unloaded[row] = bt_pool_ns
                incidence[row] = index.incidence_row(
                    routes.route(socket, POOL_LOCATION),
                    weight=BT_POOL_CONTENTION_FACTOR,
                )
                first_hop = routes.route(socket, POOL_LOCATION)[0]
                self.pool_fwd_slots[socket] = index.slot(first_hop)
                self.pool_rev_slots[socket] = index.slot(
                    first_hop.reversed()
                )
                self.dram_slots[socket] = index.slot(
                    routes.route(socket, socket)[0]
                )

        self.incidence = incidence
        self.unloaded = unloaded
        self.request_inc = request_inc
        self.fill_inc = fill_inc

    def charge(self, classification: PhaseClassification,
               loads: LinkLoads) -> None:
        """Vectorized :meth:`PhaseTimingModel._build_loads` charging.

        Charges demand, socket-homed block transfers, pool-homed
        transfer legs, and tracker traffic as a handful of
        matrix-vector contractions against the per-slot byte vector --
        the array equivalent of the scalar kernel's per-route
        ``add_access_traffic``/``add_transfer_traffic`` loops.
        """
        if not self.has_pool and classification.demand_to_pool() > 0:
            raise ValueError("pool accesses on a pool-less system")
        header = MESSAGE_HEADER_BYTES
        block = CACHE_BLOCK_BYTES + MESSAGE_HEADER_BYTES
        demand = classification.demand.ravel()
        writes = classification.demand_writes.ravel()
        bt = classification.bt_socket.ravel()
        n_demand, n_bt = self.n_demand_rows, self.n_bt_rows
        row_request = np.zeros(self.unloaded.size, dtype=np.float64)
        row_fill = np.zeros(self.unloaded.size, dtype=np.float64)
        # Demand: per-access request header (+ writeback block share)
        # forward, one data fill backward.
        row_request[:n_demand] = demand * header + writes * block
        row_fill[:n_demand] = demand * block
        # Socket-homed block transfers: data block forward, header ack
        # backward, along the DRAM-less data leg.
        row_request[n_demand:n_demand + n_bt] = bt * block
        row_fill[n_demand:n_demand + n_bt] = bt * header
        vec = loads.bytes_vector
        vec += row_request @ self.request_inc
        vec += row_fill @ self.fill_inc

        if self.has_pool:
            # Pool-homed transfers: data to the requester flows pool ->
            # socket (reverse of the request route's first hop); the
            # owner's supply flows socket -> pool (forward).
            down = classification.bt_pool * (64 + MESSAGE_HEADER_BYTES)
            up = classification.bt_pool_owner * (64 + MESSAGE_HEADER_BYTES)
            np.add.at(vec, self.pool_rev_slots, down)
            np.add.at(vec, self.pool_fwd_slots, up)
            # Tracker-update traffic (StarNUMA's monitoring hardware).
            issued = (classification.demand.sum(axis=1)
                      + classification.bt_socket.sum(axis=1)
                      + classification.bt_pool)
            np.add.at(vec, self.dram_slots,
                      issued * TRACKER_BYTES_PER_ACCESS)

    def phase_weights(self, classification: PhaseClassification
                      ) -> tuple:
        """Contract one phase's counts against the precompiled geometry.

        Returns ``(charge, weighted_unloaded)``: the per-slot charge
        vector whose dot product with the waiting-time vector is the
        phase's total queueing-weighted delay, and the IPC-independent
        unloaded-latency sum.
        """
        counts = np.concatenate((
            classification.demand.ravel(),
            classification.bt_socket.ravel(),
            classification.bt_pool,
        ))
        charge = counts @ self.incidence
        weighted_unloaded = float(counts @ self.unloaded)
        return charge, weighted_unloaded


#: Compiled-kernel dedup cache, keyed by route-table fingerprint. A
#: kernel is immutable after construction and reads nothing per-phase,
#: so models whose route tables hash identically (e.g. consecutive
#: fault states that reroute to the same surviving geometry, or the
#: many sweep lanes sharing one config) can share one instance. Bounded
#: LRU: a 16-socket kernel's matrices run to a few MB.
_KERNEL_CACHE: "OrderedDict[str, _VectorKernel]" = OrderedDict()
_KERNEL_CACHE_LIMIT = 16


def _compiled_kernel(model: "PhaseTimingModel") -> _VectorKernel:
    """Fetch or build the compiled kernel for ``model``'s route table."""
    key = model.routes.fingerprint()
    cached = _KERNEL_CACHE.get(key)
    if cached is not None:
        _KERNEL_CACHE.move_to_end(key)
        OBS.counter("sim.kernel.compile_cache_hit")
        return cached
    kernel = _VectorKernel(model)
    OBS.counter("sim.kernel.compiled")
    _KERNEL_CACHE[key] = kernel
    while len(_KERNEL_CACHE) > _KERNEL_CACHE_LIMIT:
        _KERNEL_CACHE.popitem(last=False)
    return kernel


class PhaseTimingModel:
    """Evaluates the loaded AMAT and IPC of one phase."""

    def __init__(self, system: SystemConfig, topology: Topology,
                 routes: RouteTable, population: PagePopulation,
                 settings: Optional[FixedPointSettings] = None,
                 replication: Optional["ReplicationPlan"] = None):
        self.system = system
        self.topology = topology
        self.routes = routes
        self.population = population
        self.settings = settings or FixedPointSettings()
        self.cost_model = MigrationCostModel(system)
        #: Optional :class:`~repro.replication.ReplicationPlan`; accesses
        #: to replicated pages are served locally, writes pay the plan's
        #: software-coherence penalty.
        self.replication = replication
        self._pool_index = topology.n_sockets
        self._kernel: Optional[_VectorKernel] = None

    def _vector_kernel(self) -> _VectorKernel:
        """The compiled array kernel of this model (built on first use).

        Resolved through the fingerprint-keyed module cache, so models
        with identical route geometry (repeated fault states, sweep
        lanes of one config) share one compiled kernel.
        """
        if self._kernel is None:
            self._kernel = _compiled_kernel(self)
        return self._kernel

    # -- public ------------------------------------------------------------

    def evaluate(self, trace: PhaseTrace, page_map: PageMap,
                 calibration: CalibratedCpi,
                 batch: Optional[MigrationBatch] = None,
                 fixed_ipc: Optional[float] = None,
                 initial_ipc: Optional[float] = None) -> PhaseTiming:
        """Run Step C for one phase.

        ``batch`` holds the migrations performed during this phase (their
        copies and stalls are charged here). With ``fixed_ipc`` the closed
        loop is bypassed -- used for the calibration pass, where the
        baseline runs at its published IPC.
        """
        obs_span = OBS.span("sim.phase", phase=trace.phase,
                            kernel=self.settings.kernel,
                            loop="open" if fixed_ipc is not None
                            else "closed")
        with obs_span:
            classification = classify_phase(trace.counts, page_map,
                                            self.population,
                                            self.replication)
            with OBS.span("sim.charge", phase=trace.phase,
                          kernel=self.settings.kernel):
                loads = self._build_loads(classification, batch)
            stall_total_ns, extra_cpi = self._migration_overheads(trace,
                                                                  batch)
            stall_per_access = (
                stall_total_ns / classification.total_accesses
                if classification.total_accesses else 0.0
            )

            weights = None
            if self.settings.uses_vector_weights:
                weights = self._vector_kernel().phase_weights(
                    classification
                )

            if fixed_ipc is not None:
                ipc = fixed_ipc
                amat_ns, unloaded_ns = self._amat_at(
                    ipc, trace, classification, loads, stall_per_access,
                    weights
                )
                iterations, converged = 0, True
            else:
                ipc, amat_ns, unloaded_ns, iterations, converged = (
                    self._fixed_point(trace, classification, loads,
                                      stall_per_access, calibration,
                                      extra_cpi, initial_ipc, weights)
                )

            breakdown = self._breakdown(classification)
            duration = self._duration_ns(ipc, trace)
            busiest = loads.busiest(duration, top=3)
            hottest = {
                sample.link_id: sample.utilization
                for sample in busiest
            }

        if OBS.enabled:
            obs_span.set(ipc=ipc, iterations=iterations,
                         converged=converged)
            OBS.counter("sim.phases")
            OBS.counter("sim.fixed_point.iterations", iterations)
            OBS.observe("sim.fixed_point.iterations_per_phase",
                        iterations)
            OBS.event(
                "sim.timing", phase=trace.phase,
                kernel=self.settings.kernel, ipc=ipc, amat_ns=amat_ns,
                unloaded_amat_ns=unloaded_ns, duration_ns=duration,
                iterations=iterations, converged=converged,
                total_accesses=classification.total_accesses,
                migrated_pages=batch.n_pages if batch else 0,
            )
            if busiest:
                OBS.event(
                    "interconnect.utilization", phase=trace.phase,
                    top=[sample.as_attrs() for sample in busiest],
                )
        return PhaseTiming(
            phase=trace.phase,
            ipc=ipc,
            duration_ns=duration,
            amat_ns=amat_ns,
            unloaded_amat_ns=unloaded_ns,
            breakdown=breakdown,
            total_accesses=classification.total_accesses,
            migrated_pages=batch.n_pages if batch else 0,
            migrated_pages_to_pool=batch.pages_to_pool if batch else 0,
            migration_stall_ns_per_access=stall_per_access,
            fixed_point_iterations=iterations,
            converged=converged,
            hottest_links=hottest,
        )

    # -- batched seam --------------------------------------------------------

    def phase_inputs(self, trace: PhaseTrace, page_map: PageMap,
                     batch: Optional[MigrationBatch] = None) -> "PhaseInputs":
        """Collect one phase's IPC-independent state for a stacked solve.

        Performs classification, link charging, and the per-phase
        contractions of :meth:`evaluate` -- everything except the fixed
        point itself -- with the identical operations, so a batched
        solve over the result is bit-identical to :meth:`evaluate`.
        Pairs with :meth:`finish_phase`.
        """
        classification = classify_phase(trace.counts, page_map,
                                        self.population, self.replication)
        with OBS.span("sim.charge", phase=trace.phase,
                      kernel=self.settings.kernel):
            loads = self._build_loads(classification, batch)
        stall_total_ns, extra_cpi = self._migration_overheads(trace, batch)
        stall_per_access = (
            stall_total_ns / classification.total_accesses
            if classification.total_accesses else 0.0
        )
        charge, weighted_unloaded = self._vector_kernel().phase_weights(
            classification
        )
        penalty = 0.0
        if (self.replication is not None
                and classification.replicated_writes
                and classification.total_accesses):
            penalty = (classification.replicated_writes
                       * self.replication.write_penalty_ns
                       ) / classification.total_accesses
        return PhaseInputs(
            trace=trace,
            classification=classification,
            loads=loads,
            batch=batch,
            charge=charge,
            weighted_unloaded=weighted_unloaded,
            stall_per_access=stall_per_access,
            extra_cpi=extra_cpi,
            replication_penalty_ns=penalty,
        )

    def batched_lane(self, inputs: "PhaseInputs",
                     calibration: Optional[CalibratedCpi],
                     initial_ipc: Optional[float] = None,
                     fixed_ipc: Optional[float] = None) -> "BatchedLane":
        """Package :meth:`phase_inputs` output as one stacked-solver lane."""
        index = self.topology.link_index()
        return BatchedLane(
            n_slots=index.n_slots,
            weighted_unloaded=inputs.weighted_unloaded,
            total=float(inputs.classification.total_accesses),
            stall_per_access=inputs.stall_per_access,
            replication_penalty_ns=inputs.replication_penalty_ns,
            extra_cpi=inputs.extra_cpi,
            local_ns=self.system.latency.local_ns,
            instructions_per_thread=inputs.trace.instructions_per_thread,
            core=self.system.core,
            calibration=calibration,
            initial_ipc=initial_ipc or self.population.profile.ipc_16,
            fixed_ipc=fixed_ipc,
            charge=inputs.charge,
            bytes_vec=inputs.loads.bytes_vector,
            capacity=index.capacity_gbps,
            service=index.service_ns,
        )

    def finish_phase(self, inputs: "PhaseInputs", ipc: float,
                     amat_ns: float, unloaded_ns: float,
                     iterations: int, converged: bool) -> PhaseTiming:
        """Assemble the :class:`PhaseTiming` of a batch-solved phase.

        Mirrors the tail of :meth:`evaluate` (breakdown, duration,
        hottest links, obs emission) so batched results are
        indistinguishable from solo ones.
        """
        trace = inputs.trace
        classification = inputs.classification
        batch = inputs.batch
        breakdown = self._breakdown(classification)
        duration = self._duration_ns(ipc, trace)
        busiest = inputs.loads.busiest(duration, top=3)
        hottest = {
            sample.link_id: sample.utilization
            for sample in busiest
        }
        if OBS.enabled:
            OBS.counter("sim.phases")
            OBS.counter("sim.fixed_point.iterations", iterations)
            OBS.observe("sim.fixed_point.iterations_per_phase",
                        iterations)
            OBS.event(
                "sim.timing", phase=trace.phase,
                kernel=self.settings.kernel, ipc=ipc, amat_ns=amat_ns,
                unloaded_amat_ns=unloaded_ns, duration_ns=duration,
                iterations=iterations, converged=converged,
                total_accesses=classification.total_accesses,
                migrated_pages=batch.n_pages if batch else 0,
            )
            if busiest:
                OBS.event(
                    "interconnect.utilization", phase=trace.phase,
                    top=[sample.as_attrs() for sample in busiest],
                )
        return PhaseTiming(
            phase=trace.phase,
            ipc=ipc,
            duration_ns=duration,
            amat_ns=amat_ns,
            unloaded_amat_ns=unloaded_ns,
            breakdown=breakdown,
            total_accesses=classification.total_accesses,
            migrated_pages=batch.n_pages if batch else 0,
            migrated_pages_to_pool=batch.pages_to_pool if batch else 0,
            migration_stall_ns_per_access=inputs.stall_per_access,
            fixed_point_iterations=iterations,
            converged=converged,
            hottest_links=hottest,
        )

    # -- loading -------------------------------------------------------------

    def _duration_ns(self, ipc: float, trace: PhaseTrace) -> float:
        cycles = trace.instructions_per_thread / ipc
        return self.system.core.cycles_to_ns(cycles)

    def _location_of_column(self, column: int) -> int:
        return POOL_LOCATION if column == self._pool_index else column

    def _build_loads(self, classification: PhaseClassification,
                     batch: Optional[MigrationBatch]) -> LinkLoads:
        loads = LinkLoads(self.topology, burstiness=self.settings.burstiness)
        if self.settings.uses_vector_weights:
            self._vector_kernel().charge(classification, loads)
        else:
            self._build_loads_scalar(classification, loads)
        if batch is not None:
            self._charge_migrations(loads, batch)
        return loads

    def _build_loads_scalar(self, classification: PhaseClassification,
                            loads: LinkLoads) -> None:
        n_sockets = classification.n_sockets

        for socket in range(n_sockets):
            for column in range(n_sockets + 1):
                count = classification.demand[socket, column]
                if count <= 0:
                    continue
                location = self._location_of_column(column)
                if location == POOL_LOCATION and not self.topology.has_pool:
                    raise ValueError("pool accesses on a pool-less system")
                writes = classification.demand_writes[socket, column]
                loads.add_access_traffic(
                    self.routes.route(socket, location),
                    accesses=count,
                    writeback_fraction=writes / count,
                )

            # Socket-homed block transfers: the dominant data hop runs
            # owner -> requester; we charge it along the requester<->home
            # route as a proxy for the averaged three-leg path.
            for home in range(n_sockets):
                count = classification.bt_socket[socket, home]
                if count <= 0 or home == socket:
                    continue
                loads.add_transfer_traffic(
                    self.routes.route(socket, home)[:-1],  # no DRAM hop
                    transfers=count,
                )

        if self.topology.has_pool:
            for socket in range(n_sockets):
                down = classification.bt_pool[socket]
                up = classification.bt_pool_owner[socket]
                if down <= 0 and up <= 0:
                    continue
                cxl = self.routes.route(socket, POOL_LOCATION)[0]
                # Data to the requester flows pool -> socket (reverse of
                # the request route); the owner's supply flows socket ->
                # pool (forward).
                loads.add(cxl.reversed(), down * (64 + MESSAGE_HEADER_BYTES))
                loads.add(cxl, up * (64 + MESSAGE_HEADER_BYTES))

            # Tracker-update traffic (StarNUMA's monitoring hardware).
            for socket in range(n_sockets):
                issued = float(classification.demand[socket].sum()
                               + classification.bt_socket[socket].sum()
                               + classification.bt_pool[socket])
                dram = self.routes.route(socket, socket)[0]
                loads.add(dram, issued * TRACKER_BYTES_PER_ACCESS)

    def _charge_migrations(self, loads: LinkLoads,
                           batch: MigrationBatch) -> None:
        for move in batch.moves:
            copy_bytes = move.n_pages * PAGE_SIZE_BYTES * (
                1.0 + MESSAGE_HEADER_BYTES / 64.0
            )
            if move.source == POOL_LOCATION:
                # Data flows pool -> destination: reverse of the
                # destination's pool route.
                route = self.routes.route(move.destination, POOL_LOCATION)
                for hop in route:
                    loads.add(hop.reversed(), copy_bytes)
            else:
                route = self.routes.route(move.source, move.destination)
                for hop in route:
                    loads.add(hop, copy_bytes)
                # Source DRAM read of the page being copied.
                source_dram = self.routes.route(move.source, move.source)[0]
                loads.add(source_dram, copy_bytes)

    # -- AMAT ----------------------------------------------------------------

    def _route_delay_ns(self, route: Route, loads: LinkLoads,
                        window_ns: float) -> float:
        """Request+fill queueing along a route; DRAM queues counted once."""
        total = 0.0
        for hop in route:
            if hop.link.kind is LinkKind.DRAM:
                total += loads.delay_ns(hop, window_ns)
            else:
                total += loads.delay_ns(hop, window_ns)
                total += loads.delay_ns(hop.reversed(), window_ns)
        return total

    def _amat_at(self, ipc: float, trace: PhaseTrace,
                 classification: PhaseClassification, loads: LinkLoads,
                 stall_per_access: float,
                 weights: Optional[tuple] = None) -> tuple:
        """Loaded and unloaded AMAT at one IPC guess (kernel dispatch)."""
        if weights is not None:
            return self._amat_at_vector(ipc, trace, classification, loads,
                                        stall_per_access, weights)
        return self._amat_at_scalar(ipc, trace, classification, loads,
                                    stall_per_access)

    def _amat_at_vector(self, ipc: float, trace: PhaseTrace,
                        classification: PhaseClassification,
                        loads: LinkLoads, stall_per_access: float,
                        weights: tuple) -> tuple:
        """Array kernel: one waiting-time vector, one dot product."""
        total = classification.total_accesses
        if total == 0:
            local = self.system.latency.local_ns
            return local, local
        charge, weighted_unloaded = weights
        window = self._duration_ns(ipc, trace)
        # Scratch buffers live on ``loads`` and are reused across the
        # fixed point's iterations; the wait vector is consumed by the
        # dot product before the next iteration overwrites it.
        wait = loads.wait_ns_vector(window, reuse_scratch=True)
        weighted_loaded = weighted_unloaded + float(charge @ wait)
        amat = weighted_loaded / total + stall_per_access
        unloaded_amat = weighted_unloaded / total
        return self._apply_replication_penalty(classification, total,
                                               amat, unloaded_amat)

    def _amat_at_scalar(self, ipc: float, trace: PhaseTrace,
                        classification: PhaseClassification,
                        loads: LinkLoads, stall_per_access: float) -> tuple:
        window = self._duration_ns(ipc, trace)
        latency = self.system.latency
        n_sockets = classification.n_sockets

        weighted_loaded = 0.0
        weighted_unloaded = 0.0

        for socket in range(n_sockets):
            for column in range(n_sockets + 1):
                count = classification.demand[socket, column]
                if count <= 0:
                    continue
                location = self._location_of_column(column)
                kind = self.topology.classify(socket, location)
                unloaded = (self.topology.unloaded_latency_ns(kind)
                            + self.routes.detour_penalty_ns(socket, location))
                route = self.routes.route(socket, location)
                loaded = unloaded + self._route_delay_ns(route, loads, window)
                weighted_loaded += count * loaded
                weighted_unloaded += count * unloaded

            for home in range(n_sockets):
                count = classification.bt_socket[socket, home]
                if count <= 0:
                    continue
                unloaded = self.topology.unloaded_latency_ns(
                    AccessType.BLOCK_TRANSFER_SOCKET
                )
                if home == socket:
                    contention = 0.0
                else:
                    contention = self._route_delay_ns(
                        self.routes.route(socket, home)[:-1], loads, window
                    )
                weighted_loaded += count * (unloaded + contention)
                weighted_unloaded += count * unloaded

            count = classification.bt_pool[socket]
            if count > 0:
                unloaded = self.topology.unloaded_latency_ns(
                    AccessType.BLOCK_TRANSFER_POOL
                )
                contention = BT_POOL_CONTENTION_FACTOR * self._route_delay_ns(
                    self.routes.route(socket, POOL_LOCATION), loads, window
                )
                weighted_loaded += count * (unloaded + contention)
                weighted_unloaded += count * unloaded

        total = classification.total_accesses
        if total == 0:
            local = latency.local_ns
            return local, local
        amat = weighted_loaded / total + stall_per_access
        unloaded_amat = weighted_unloaded / total
        return self._apply_replication_penalty(classification, total,
                                               amat, unloaded_amat)

    def _apply_replication_penalty(self, classification: PhaseClassification,
                                   total: float, amat: float,
                                   unloaded_amat: float) -> tuple:
        if self.replication is not None and classification.replicated_writes:
            # Software coherence for replicas: every write to a replicated
            # page pays the invalidation broadcast.
            penalty = (classification.replicated_writes
                       * self.replication.write_penalty_ns) / total
            amat += penalty
            unloaded_amat += penalty
        return amat, unloaded_amat

    def _fixed_point(self, trace: PhaseTrace,
                     classification: PhaseClassification, loads: LinkLoads,
                     stall_per_access: float, calibration: CalibratedCpi,
                     extra_cpi: float,
                     initial_ipc: Optional[float],
                     weights: Optional[tuple] = None) -> tuple:
        settings = self.settings
        core = self.system.core
        ipc = initial_ipc or self.population.profile.ipc_16
        amat_ns = unloaded_ns = 0.0
        #: Relative-step trajectory, recorded only when obs is armed; the
        #: iteration itself is byte-identical either way.
        residuals: Optional[list] = [] if OBS.enabled else None
        for iteration in range(1, settings.max_iterations + 1):
            amat_ns, unloaded_ns = self._amat_at(
                ipc, trace, classification, loads, stall_per_access, weights
            )
            target = calibration.ipc(core.ns_to_cycles(amat_ns), extra_cpi)
            new_ipc = (settings.damping * target
                       + (1.0 - settings.damping) * ipc)
            if residuals is not None:
                residuals.append(abs(new_ipc - ipc) / ipc)
            if abs(new_ipc - ipc) <= settings.tolerance * ipc:
                self._emit_fixed_point(trace, iteration, True, residuals)
                return new_ipc, amat_ns, unloaded_ns, iteration, True
            ipc = new_ipc
        self._emit_fixed_point(trace, settings.max_iterations, False,
                               residuals)
        return ipc, amat_ns, unloaded_ns, settings.max_iterations, False

    def _emit_fixed_point(self, trace: PhaseTrace, iterations: int,
                          converged: bool,
                          residuals: Optional[list]) -> None:
        """Detail-level provenance of one closed-loop solve."""
        if residuals is None:
            return
        OBS.detail("sim.fixed_point", phase=trace.phase,
                   kernel=self.settings.kernel, iterations=iterations,
                   converged=converged, residuals=residuals)

    # -- overheads -----------------------------------------------------------

    def _migration_overheads(self, trace: PhaseTrace,
                             batch: Optional[MigrationBatch]) -> tuple:
        """(total stall ns, amortized extra CPI) of this phase's batch."""
        if batch is None or batch.n_pages == 0:
            return 0.0, 0.0
        # Phase duration for the stall estimate uses the anchor IPC; the
        # second-order error of not re-evaluating it inside the fixed
        # point is negligible (stalls are a small AMAT term).
        duration = self._duration_ns(self.population.profile.ipc_16, trace)
        costs = self.cost_model.costs_for(batch, trace.counts, duration)
        threads = self.system.cores_per_socket * self.topology.n_sockets
        extra_cpi = costs.shootdown_cycles / (
            trace.instructions_per_thread * threads
        )
        return costs.stall_ns_total, extra_cpi

    def _breakdown(self, classification: PhaseClassification
                   ) -> AccessBreakdown:
        breakdown = AccessBreakdown()
        n_sockets = classification.n_sockets
        for socket in range(n_sockets):
            for column in range(n_sockets + 1):
                count = classification.demand[socket, column]
                if count <= 0:
                    continue
                kind = self.topology.classify(
                    socket, self._location_of_column(column)
                )
                breakdown.add(kind, count)
        bt_socket_total = float(classification.bt_socket.sum())
        bt_pool_total = float(classification.bt_pool.sum())
        if bt_socket_total:
            breakdown.add(AccessType.BLOCK_TRANSFER_SOCKET, bt_socket_total)
        if bt_pool_total:
            breakdown.add(AccessType.BLOCK_TRANSFER_POOL, bt_pool_total)
        return breakdown


# -- sweep-level batching ----------------------------------------------------


@dataclass
class PhaseInputs:
    """IPC-independent pieces of one phase's Step-C evaluation.

    Produced by :meth:`PhaseTimingModel.phase_inputs` so a sweep batch
    (:mod:`repro.sim.batch`) can collect every lane's charge state up
    front and run one stacked fixed point across lanes; consumed by
    :meth:`PhaseTimingModel.finish_phase` after the solve.
    """

    trace: PhaseTrace
    classification: PhaseClassification
    loads: LinkLoads
    batch: Optional[MigrationBatch]
    charge: np.ndarray
    weighted_unloaded: float
    stall_per_access: float
    extra_cpi: float
    replication_penalty_ns: float


@dataclass
class BatchedLane:
    """One lane (sweep point) of a stacked fixed point, for one phase.

    Array fields hold the lane's *unpadded* per-slot vectors (length
    ``n_slots``); the solver pads to the group width with exact-zero
    contributions (bytes/charge 0, capacity/service 1, so utilization
    and wait are 0 on padded slots). They may be omitted when the
    caller supplies pre-stacked matrices (the shared-memory path).
    """

    n_slots: int
    weighted_unloaded: float
    total: float
    stall_per_access: float
    replication_penalty_ns: float
    extra_cpi: float
    local_ns: float
    instructions_per_thread: float
    core: "CoreConfig"
    calibration: Optional[CalibratedCpi]
    initial_ipc: float
    fixed_ipc: Optional[float] = None
    charge: Optional[np.ndarray] = None
    bytes_vec: Optional[np.ndarray] = None
    capacity: Optional[np.ndarray] = None
    service: Optional[np.ndarray] = None


class _BatchedKernel:
    """Masked, stacked fixed point across the lanes of one phase.

    Stacks every lane's per-slot byte/capacity/service/charge vectors
    into ``(lanes, width)`` matrices (padded as described on
    :class:`BatchedLane`) and iterates the damped AMAT<->IPC loop over
    all lanes at once: per iteration, one gathered elementwise
    utilization -> waiting-time evaluation over the still-active rows,
    then a per-lane scalar tail that mirrors the solo loop's float
    arithmetic operation for operation. Converged lanes are masked out
    of the next iteration's gather instead of exiting the loop.

    Because the matrix stage is elementwise (each row sees exactly the
    arithmetic the solo vector kernel would run on its own vectors) and
    the reduction collapses into one batched ``(lanes, 1, width) @
    (lanes, width, 1)`` matmul whose per-row BLAS kernel matches the
    solo path's ``charge @ wait`` (per-lane sliced dots when lane
    widths differ), with Python-float tail updates mirroring
    :meth:`PhaseTimingModel._fixed_point`, every lane's result is
    bit-identical to evaluating that lane alone with
    ``kernel="vector"``.
    """

    def __init__(self, lanes: Sequence[BatchedLane],
                 settings: FixedPointSettings,
                 stacks: Optional[tuple] = None):
        if not lanes:
            raise ValueError("batched kernel needs at least one lane")
        self.lanes = list(lanes)
        self.settings = settings
        n = len(self.lanes)
        if stacks is not None:
            self.bytes, self.capacity, self.service, self.charge = stacks
            if self.bytes.shape[0] != n:
                raise ValueError(
                    f"stacks carry {self.bytes.shape[0]} lanes, "
                    f"expected {n}"
                )
            self.width = self.bytes.shape[1]
        else:
            self.width = max(lane.n_slots for lane in self.lanes)
            shape = (n, self.width)
            self.bytes = np.zeros(shape, dtype=np.float64)
            self.capacity = np.ones(shape, dtype=np.float64)
            self.service = np.ones(shape, dtype=np.float64)
            self.charge = np.zeros(shape, dtype=np.float64)
            for row, lane in enumerate(self.lanes):
                if (lane.bytes_vec is None or lane.capacity is None
                        or lane.service is None or lane.charge is None):
                    raise ValueError(
                        "lane arrays required when stacks are not given"
                    )
                s = lane.n_slots
                self.bytes[row, :s] = lane.bytes_vec
                self.capacity[row, :s] = lane.capacity
                self.service[row, :s] = lane.service
                self.charge[row, :s] = lane.charge
        # Iteration scratch, allocated once per solver and reused by
        # every iteration's gather/evaluate (satellite of the
        # allocation-churn fix; see LinkLoads.wait_ns_vector for the
        # solo-path equivalent).
        shape = (n, self.width)
        self._gather_bytes = np.empty(shape, dtype=np.float64)
        self._gather_cap = np.empty(shape, dtype=np.float64)
        self._gather_service = np.empty(shape, dtype=np.float64)
        self._util = np.empty(shape, dtype=np.float64)
        self._wait = np.empty(shape, dtype=np.float64)
        self._tmp = np.empty(shape, dtype=np.float64)
        self._mask = np.empty(shape, dtype=np.bool_)
        self._windows = np.empty(n, dtype=np.float64)
        self._wincap = np.empty(shape, dtype=np.float64)
        self._gather_charge = np.empty(shape, dtype=np.float64)
        self._dots = np.empty(n, dtype=np.float64)
        self._last_active: Optional[tuple] = None
        self._uniform = all(lane.n_slots == self.width
                            for lane in self.lanes)

    def load(self, lanes: Sequence[BatchedLane]) -> None:
        """Refill the stacks for a new phase, reusing every buffer.

        The lane count and stack width must match the solver's; the
        padding is re-zeroed before the per-lane rows are written, so
        the refilled state is indistinguishable from a fresh solver.
        """
        if len(lanes) != len(self.lanes):
            raise ValueError(
                f"solver holds {len(self.lanes)} lanes, got {len(lanes)}"
            )
        if max(lane.n_slots for lane in lanes) != self.width:
            raise ValueError("stack width changed; build a new solver")
        self.lanes = list(lanes)
        self.bytes[:] = 0.0
        self.capacity[:] = 1.0
        self.service[:] = 1.0
        self.charge[:] = 0.0
        for row, lane in enumerate(self.lanes):
            if (lane.bytes_vec is None or lane.capacity is None
                    or lane.service is None or lane.charge is None):
                raise ValueError(
                    "lane arrays required when stacks are not given"
                )
            s = lane.n_slots
            self.bytes[row, :s] = lane.bytes_vec
            self.capacity[row, :s] = lane.capacity
            self.service[row, :s] = lane.service
            self.charge[row, :s] = lane.charge
        self._last_active = None
        self._uniform = all(lane.n_slots == self.width
                            for lane in self.lanes)

    def solve(self, jit: bool = False) -> List[tuple]:
        """Per-lane ``(ipc, amat_ns, unloaded_ns, iterations, converged)``.

        With ``jit`` the numba-compiled inner loop is used when numba
        is importable; otherwise the numpy masked loop runs and a
        ``sim.kernel.jit_fallback`` counter records the degradation.
        """
        if jit:
            compiled = _jit_solver()
            if compiled is not None:
                return self._solve_jit(compiled)
            OBS.counter("sim.kernel.jit_fallback")
        return self._solve_numpy()

    # -- numpy masked loop -------------------------------------------------

    def _solve_numpy(self) -> List[tuple]:
        lanes = self.lanes
        settings = self.settings
        n = len(lanes)
        results: List[Optional[tuple]] = [None] * n
        ipc = [lane.fixed_ipc if lane.fixed_ipc is not None
               else lane.initial_ipc for lane in lanes]
        last = [(0.0, 0.0)] * n
        # Hoisted per-lane constants: the tail below inlines the
        # ``CalibratedCpi.ipc`` / ``CoreConfig`` call chains with the
        # identical float expressions (``ns * f``, ``c / f``,
        # ``1 / (cpi_core + k * amat**alpha + extra)``), keeping every
        # result bit-identical while dropping five Python calls per lane
        # per iteration; dataclass attribute lookups move out of the
        # loop the same way.
        freq = [lane.core.frequency_ghz for lane in lanes]
        instr = [lane.instructions_per_thread for lane in lanes]
        total = [lane.total for lane in lanes]
        slots = [lane.n_slots for lane in lanes]
        wunl = [lane.weighted_unloaded for lane in lanes]
        stall = [lane.stall_per_access for lane in lanes]
        repl = [lane.replication_penalty_ns for lane in lanes]
        local = [lane.local_ns for lane in lanes]
        extra = [lane.extra_cpi for lane in lanes]
        fixed = [lane.fixed_ipc for lane in lanes]
        cal_core = [lane.calibration.cpi_core if lane.calibration else 0.0
                    for lane in lanes]
        cal_k = [lane.calibration.k_mem if lane.calibration else 0.0
                 for lane in lanes]
        cal_alpha = [lane.calibration.alpha if lane.calibration else 1.0
                     for lane in lanes]
        # The unloaded AMAT never depends on the IPC guess, so its two
        # float ops (the same two the solo loop performs) hoist out of
        # the iteration entirely.
        unloaded = []
        for i in range(n):
            if total[i] == 0:
                unloaded.append(local[i])
            else:
                u = wunl[i] / total[i]
                if repl[i]:
                    u += repl[i]
                unloaded.append(u)
        damping = settings.damping
        undamped = 1.0 - settings.damping
        tolerance = settings.tolerance
        charge = self.charge
        wait = self._wait
        dot = np.dot
        dots = self._dots
        # When every lane fills the full stack width there is no padding
        # to keep out of the reductions, so all the row dot products
        # collapse into one batched matmul. BLAS evaluates each
        # (1, width) @ (width, 1) slice with the same ddot kernel the
        # solo path's ``charge @ wait`` uses, so the results are
        # bit-identical (mixed-width groups fall back to per-lane sliced
        # dots, which exclude the padding by construction).
        uniform = self._uniform
        matmul = np.matmul
        active = list(range(n))
        iteration = 0
        while active:
            iteration += 1
            if iteration > settings.max_iterations:
                for i in active:
                    amat_ns, unloaded_ns = last[i]
                    results[i] = (ipc[i], amat_ns, unloaded_ns,
                                  settings.max_iterations, False)
                break
            k = len(active)
            windows = self._windows[:k]
            for row, i in enumerate(active):
                windows[row] = (instr[i] / ipc[i]) / freq[i]
            charge_rows = self._eval_wait(active, windows, k)
            if uniform:
                matmul(charge_rows[:, None, :], wait[:k, :, None],
                       out=dots[:k, None, None])
            still_active = []
            for row, i in enumerate(active):
                unloaded_ns = unloaded[i]
                if total[i] == 0:
                    amat_ns = local[i]
                else:
                    if uniform:
                        queueing_ns = float(dots[row])
                    else:
                        s = slots[i]
                        queueing_ns = float(dot(charge[i, :s],
                                               wait[row, :s]))
                    weighted_loaded = wunl[i] + queueing_ns
                    amat_ns = weighted_loaded / total[i] + stall[i]
                    if repl[i]:
                        amat_ns += repl[i]
                last[i] = (amat_ns, unloaded_ns)
                if fixed[i] is not None:
                    results[i] = (ipc[i], amat_ns, unloaded_ns, 0, True)
                    continue
                target = 1.0 / (
                    cal_core[i]
                    + cal_k[i] * (amat_ns * freq[i]) ** cal_alpha[i]
                    + extra[i]
                )
                new_ipc = damping * target + undamped * ipc[i]
                if abs(new_ipc - ipc[i]) <= tolerance * ipc[i]:
                    results[i] = (new_ipc, amat_ns, unloaded_ns,
                                  iteration, True)
                else:
                    ipc[i] = new_ipc
                    still_active.append(i)
            active = still_active
        assert all(result is not None for result in results)
        return results  # type: ignore[return-value]

    def _eval_wait(self, active: List[int], windows: np.ndarray,
                   k: int) -> np.ndarray:
        """Utilization -> wait over the active rows, into scratch.

        Row ``r`` of the ``_wait`` scratch holds lane ``active[r]``'s
        per-slot waiting times; every operation is elementwise and
        bit-identical to the solo path (window * capacity, bytes over
        that, then the M/D/1 array expression). Returns the charge rows
        in the same order for the caller's batched contraction.
        """
        if k == len(self.lanes):
            # All lanes still active: active is the identity permutation,
            # so skip the gathers and read the stacks directly.
            bytes_rows, cap_rows, service_rows, charge_rows = (
                self.bytes, self.capacity, self.service, self.charge
            )
        else:
            key = tuple(active)
            if key != self._last_active:
                # The active set only changes when a lane converges, so
                # most iterations reuse the previous gather verbatim.
                rows = np.asarray(active, dtype=np.intp)
                self.bytes.take(rows, axis=0,
                                out=self._gather_bytes[:k])
                self.capacity.take(rows, axis=0,
                                   out=self._gather_cap[:k])
                self.service.take(rows, axis=0,
                                  out=self._gather_service[:k])
                self.charge.take(rows, axis=0,
                                 out=self._gather_charge[:k])
                self._last_active = key
            bytes_rows = self._gather_bytes[:k]
            cap_rows = self._gather_cap[:k]
            service_rows = self._gather_service[:k]
            charge_rows = self._gather_charge[:k]
        np.multiply(windows[:, None], cap_rows, out=self._wincap[:k])
        np.divide(bytes_rows, self._wincap[:k], out=self._util[:k])
        mdl_wait_ns_array(
            self._util[:k], service_rows,
            burstiness=self.settings.burstiness,
            out=self._wait[:k], scratch=self._tmp[:k],
            mask=self._mask[:k],
        )
        return charge_rows

    # -- numba-compiled loop -----------------------------------------------

    def _solve_jit(self, compiled: Callable) -> List[tuple]:
        lanes = self.lanes
        settings = self.settings
        n = len(lanes)

        def per_lane(getter: Callable) -> np.ndarray:
            return np.array([getter(lane) for lane in lanes],
                            dtype=np.float64)

        open_loop = np.array(
            [lane.fixed_ipc is not None for lane in lanes], dtype=np.bool_
        )
        ipc0 = per_lane(lambda lane: lane.fixed_ipc
                        if lane.fixed_ipc is not None else lane.initial_ipc)
        cpi_core = per_lane(lambda lane: lane.calibration.cpi_core
                            if lane.calibration else 0.0)
        k_mem = per_lane(lambda lane: lane.calibration.k_mem
                         if lane.calibration else 0.0)
        alpha = per_lane(lambda lane: lane.calibration.alpha
                         if lane.calibration else 1.0)
        ipc, amat, unloaded, iters, conv = compiled(
            self.bytes, self.capacity, self.service, self.charge,
            np.array([lane.n_slots for lane in lanes], dtype=np.int64),
            per_lane(lambda lane: lane.weighted_unloaded),
            per_lane(lambda lane: lane.total),
            per_lane(lambda lane: lane.stall_per_access),
            per_lane(lambda lane: lane.replication_penalty_ns),
            per_lane(lambda lane: lane.extra_cpi),
            per_lane(lambda lane: lane.local_ns),
            per_lane(lambda lane: lane.instructions_per_thread),
            per_lane(lambda lane: lane.core.frequency_ghz),
            cpi_core, k_mem, alpha, ipc0, open_loop,
            settings.damping, settings.tolerance,
            settings.max_iterations, float(settings.burstiness),
            MAX_STABLE_UTILIZATION,
        )
        return [
            (float(ipc[i]), float(amat[i]), float(unloaded[i]),
             int(iters[i]), bool(conv[i]))
            for i in range(n)
        ]


def _batched_lanes_loop(bytes_m, capacity_m, service_m, charge_m, n_slots,
                        weighted_unloaded, total, stall, penalty,
                        extra_cpi, local_ns, instructions, frequency_ghz,
                        cpi_core, k_mem, alpha, ipc0, open_loop, damping,
                        tolerance, max_iterations, burstiness,
                        max_utilization):
    """JIT-compilable form of the stacked fixed point (plain loops).

    Mirrors the damped solo iteration per lane: window from IPC,
    per-slot M/D/1 wait, charge-weighted sum, calibrated-CPI target,
    damped update, per-lane convergence. Compiled with ``numba.njit``
    when available; never called otherwise. Summation order differs
    from the BLAS dot of the numpy path, so results agree to ~1e-12
    rel rather than bit-for-bit (covered by the 1e-9 equivalence
    suite).
    """
    n = bytes_m.shape[0]
    ipc = ipc0.copy()
    amat = np.zeros(n, dtype=np.float64)
    unloaded = np.zeros(n, dtype=np.float64)
    iterations = np.zeros(n, dtype=np.int64)
    converged = np.zeros(n, dtype=np.bool_)
    base = max_utilization / (2.0 * (1.0 - max_utilization))
    slope = 1.0 / (2.0 * (1.0 - max_utilization) ** 2)
    for lane in range(n):
        iteration = 0
        while True:
            iteration += 1
            window = (instructions[lane] / ipc[lane]) / frequency_ghz[lane]
            if total[lane] == 0.0:
                amat_ns = local_ns[lane]
                unloaded_ns = local_ns[lane]
            else:
                queueing_ns = 0.0
                for s in range(n_slots[lane]):
                    util = bytes_m[lane, s] / (window * capacity_m[lane, s])
                    if util <= 0.0:
                        wait = 0.0
                    elif util < max_utilization:
                        wait = (service_m[lane, s] * util
                                / (2.0 * (1.0 - util)))
                    else:
                        wait = service_m[lane, s] * (
                            base + slope * (util - max_utilization)
                        )
                    queueing_ns += charge_m[lane, s] * (burstiness * wait)
                loaded = weighted_unloaded[lane] + queueing_ns
                amat_ns = loaded / total[lane] + stall[lane]
                unloaded_ns = weighted_unloaded[lane] / total[lane]
                amat_ns += penalty[lane]
                unloaded_ns += penalty[lane]
            amat[lane] = amat_ns
            unloaded[lane] = unloaded_ns
            if open_loop[lane]:
                iterations[lane] = 0
                converged[lane] = True
                break
            amat_cycles = amat_ns * frequency_ghz[lane]
            target = 1.0 / (cpi_core[lane]
                            + k_mem[lane] * amat_cycles ** alpha[lane]
                            + extra_cpi[lane])
            new_ipc = damping * target + (1.0 - damping) * ipc[lane]
            if abs(new_ipc - ipc[lane]) <= tolerance * ipc[lane]:
                ipc[lane] = new_ipc
                iterations[lane] = iteration
                converged[lane] = True
                break
            ipc[lane] = new_ipc
            if iteration >= max_iterations:
                iterations[lane] = max_iterations
                converged[lane] = False
                break
    return ipc, amat, unloaded, iterations, converged


#: Lazily numba-compiled :func:`_batched_lanes_loop`; ``None`` until the
#: first ``kernel="batched-jit"`` solve, and permanently unavailable
#: (numpy fallback) when numba cannot be imported.
_JIT_SOLVER: Optional[Callable] = None
_JIT_UNAVAILABLE = False


def _jit_solver() -> Optional[Callable]:
    global _JIT_SOLVER, _JIT_UNAVAILABLE
    if _JIT_UNAVAILABLE:
        return None
    if _JIT_SOLVER is None:
        try:
            import numba
        except ImportError:
            _JIT_UNAVAILABLE = True
            return None
        _JIT_SOLVER = numba.njit(cache=False)(_batched_lanes_loop)
    return _JIT_SOLVER
