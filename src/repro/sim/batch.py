"""Sweep-level batched evaluation: many simulations, one fixed point.

A *lane* is one sweep point -- a (system, workload, mode) simulation
the sweep would otherwise run on its own. This module stacks the
per-lane byte/capacity/service/charge vectors of every phase into
``(phases, lanes, width)`` arrays and drives the shared masked fixed
point of :class:`repro.sim.timing._BatchedKernel`, so a whole sweep
evaluates phase by phase as a few stacked array contractions instead of
one full simulation at a time.

Compatibility: lanes batch together when they share the phase count and
the fixed-point loop shape (``max_iterations``, ``tolerance``,
``damping``, ``burstiness`` -- see :func:`lane_signature`). Different
topologies (baseline vs StarNUMA, faulted vs clean) stack fine: each
lane's slot vectors are padded to the group width with exact-zero
contributions, so padding never changes a result. Open-loop
(calibration) and closed-loop lanes may share a group.

Every lane's numbers are bit-identical to running that lane alone with
``kernel="vector"`` -- the stacked matrix stage is elementwise and the
reduction tail reuses the solo loop's float arithmetic -- which is what
keeps sweep checkpoints and exports byte-identical to sequential runs.

Two entry points:

* :func:`run_lanes` -- in-process: collect every lane's phase inputs,
  then solve phase by phase.
* :func:`fill_lane` + :func:`solve_stacks` -- the split form used by
  the shared-memory fan-out (:mod:`repro.experiments.lanes`): workers
  fill disjoint lane columns of (typically shared-memory backed)
  stacks and ship small :class:`LaneMeta` records; the parent solves
  zero-copy and assembles results without re-touching the models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.config import CoreConfig
from repro.interconnect.loads import TrafficSample
from repro.interconnect.queueing import mdl_wait_ns
from repro.metrics.breakdown import AccessBreakdown
from repro.metrics.calibration import CalibratedCpi
from repro.obs import OBS
from repro.placement.pagemap import PageMap
from repro.sim.engine import Simulator
from repro.sim.results import PhaseTiming, SimulationResult
from repro.sim.timing import BatchedLane, FixedPointSettings, _BatchedKernel

#: Kernel names the batched solver accepts.
BATCH_KERNELS = ("batched", "batched-jit")

#: Names and build order of the stacked arrays, each ``(P, L, W)``.
STACK_NAMES = ("bytes", "capacity", "service", "charge")


@dataclass
class LaneSpec:
    """One sweep point: a simulator plus how to drive it.

    Mirrors the arguments of :meth:`repro.sim.engine.Simulator.run`;
    ``fixed_ipc`` marks an open-loop (calibration) lane.
    """

    simulator: Simulator
    mode: str = "dynamic"
    static_map: Optional[PageMap] = None
    calibration: Optional[CalibratedCpi] = None
    fixed_ipc: Optional[float] = None
    warmup_phases: int = 2


def lane_signature(spec: LaneSpec) -> Tuple:
    """Batching-compatibility key: lanes batch iff signatures match.

    Covers the shared fixed-point loop shape (one masked loop drives
    the whole group) and the phase count (phases advance in lockstep).
    Topology, workload, mode, and open- vs closed-loop may all differ
    within one group.
    """
    settings = spec.simulator.timing.settings
    return (
        len(spec.simulator.setup.traces),
        settings.max_iterations,
        settings.tolerance,
        settings.damping,
        settings.burstiness,
    )


def plan_groups(specs: Sequence[LaneSpec],
                batch_lanes: int) -> List[List[int]]:
    """Partition lane indices into compatible groups of ``batch_lanes``.

    Lanes with matching :func:`lane_signature` batch together (chunked
    to the requested group size); incompatible lanes land in their own
    groups and fall back to per-scenario evaluation naturally (a group
    of one is just the solo vector kernel with extra steps).
    """
    if batch_lanes < 1:
        raise ValueError(f"batch_lanes must be >= 1, got {batch_lanes}")
    by_signature: Dict[Tuple, List[int]] = {}
    order: List[Tuple] = []
    for i, spec in enumerate(specs):
        signature = lane_signature(spec)
        if signature not in by_signature:
            by_signature[signature] = []
            order.append(signature)
        by_signature[signature].append(i)
    groups: List[List[int]] = []
    for signature in order:
        members = by_signature[signature]
        for start in range(0, len(members), batch_lanes):
            groups.append(members[start:start + batch_lanes])
    return groups


def _validate_group(specs: Sequence[LaneSpec], kernel: str) -> None:
    if not specs:
        raise ValueError("batched run needs at least one lane")
    if kernel not in BATCH_KERNELS:
        raise ValueError(
            f"kernel must be one of {BATCH_KERNELS}, got {kernel!r}"
        )
    signature = lane_signature(specs[0])
    for spec in specs[1:]:
        if lane_signature(spec) != signature:
            raise ValueError(
                "lanes are not batch-compatible; group them with "
                "plan_groups() first"
            )
    for spec in specs:
        if spec.fixed_ipc is None and spec.calibration is None:
            raise ValueError("closed-loop lane needs a calibration")
        n_phases = len(spec.simulator.setup.traces)
        if spec.warmup_phases >= n_phases:
            raise ValueError(
                f"warmup ({spec.warmup_phases}) must leave at least one "
                f"measured phase of {n_phases}"
            )


def run_lanes(specs: Sequence[LaneSpec],
              kernel: str = "batched") -> List[SimulationResult]:
    """Evaluate a compatible lane group as one stacked fixed point.

    Returns one :class:`SimulationResult` per lane, in order,
    bit-identical to ``spec.simulator.run(...)`` per lane. The group's
    loop shape comes from the first lane's settings (signatures
    guarantee they agree); ``kernel`` selects the numpy masked loop or
    the numba one (which falls back to numpy when numba is absent).
    """
    _validate_group(specs, kernel)
    settings = specs[0].simulator.timing.settings
    all_checkpoints = []
    all_inputs = []
    all_models = []
    for spec in specs:
        simulator = spec.simulator
        checkpoints = simulator.checkpoints(spec.mode, spec.static_map)
        inputs = []
        models = []
        for checkpoint, trace in zip(checkpoints, simulator.setup.traces):
            model = simulator._phase_timing_model(trace.phase)
            inputs.append(
                model.phase_inputs(trace, checkpoint.page_map,
                                   checkpoint.batch)
            )
            models.append(model)
        all_checkpoints.append(checkpoints)
        all_inputs.append(inputs)
        all_models.append(models)

    n_phases = len(specs[0].simulator.setup.traces)
    previous: List[Optional[float]] = [None] * len(specs)
    timings: List[List[PhaseTiming]] = [[] for _ in specs]
    jit = kernel == "batched-jit"
    solver: Optional[_BatchedKernel] = None
    with OBS.span("sim.batch.run", lanes=len(specs), phases=n_phases,
                  kernel=kernel):
        for p in range(n_phases):
            lanes = [
                all_models[i][p].batched_lane(
                    all_inputs[i][p], spec.calibration,
                    initial_ipc=previous[i], fixed_ipc=spec.fixed_ipc,
                )
                for i, spec in enumerate(specs)
            ]
            width = max(lane.n_slots for lane in lanes)
            if solver is not None and width == solver.width:
                # Reuse the solver's stacks and scratch across phases;
                # a fault that changes the link count forces a rebuild.
                solver.load(lanes)
            else:
                solver = _BatchedKernel(lanes, settings)
            for i, solution in enumerate(solver.solve(jit=jit)):
                ipc, amat_ns, unloaded_ns, iterations, converged = solution
                timing = all_models[i][p].finish_phase(
                    all_inputs[i][p], ipc, amat_ns, unloaded_ns,
                    iterations, converged,
                )
                previous[i] = timing.ipc
                timings[i].append(timing)

    return [
        _assemble_result(spec, all_checkpoints[i], timings[i])
        for i, spec in enumerate(specs)
    ]


def _migration_totals(checkpoints) -> Tuple[int, int]:
    """(demand pages, pool pages) migrated -- Simulator.run's aggregation."""
    demand_pages = 0
    pool_pages = 0
    for checkpoint in checkpoints:
        if checkpoint.batch is None:
            continue
        for move in checkpoint.batch.moves:
            if move.from_pool:
                continue  # victim evictions are not demand migrations
            demand_pages += move.n_pages
            if move.to_pool:
                pool_pages += move.n_pages
    return demand_pages, pool_pages


def _assemble_result(spec: LaneSpec, checkpoints,
                     timings: List[PhaseTiming]) -> SimulationResult:
    demand_pages, pool_pages = _migration_totals(checkpoints)
    setup = spec.simulator.setup
    return SimulationResult(
        workload=setup.profile.name,
        config_name=spec.simulator.system.name,
        phases=timings[spec.warmup_phases:],
        pages_migrated=demand_pages,
        pages_migrated_to_pool=pool_pages,
    )


# -- split form: fill in workers, solve in the parent ------------------------


@dataclass
class LanePhaseMeta:
    """Scalar state of one (lane, phase) pair for the split solve.

    ``charged_slots`` holds ``(slot, link_id, forward, capacity_gbps,
    service_ns)`` for every charged slot, in slot order, so the parent
    can rebuild the hottest-link diagnostics without the topology.
    """

    phase: int
    n_slots: int
    weighted_unloaded: float
    total: float
    stall_per_access: float
    replication_penalty_ns: float
    extra_cpi: float
    instructions_per_thread: float
    total_accesses: float
    migrated_pages: int
    migrated_pages_to_pool: int
    breakdown: AccessBreakdown
    charged_slots: List[Tuple[int, str, bool, float, float]]


@dataclass
class LaneMeta:
    """Everything the parent needs to solve and assemble one lane."""

    workload: str
    config_name: str
    local_ns: float
    core: CoreConfig
    calibration: Optional[CalibratedCpi]
    fixed_ipc: Optional[float]
    anchor_ipc: float
    warmup_phases: int
    demand_pages: int
    pool_pages: int
    phases: List[LanePhaseMeta]


def lane_width(specs: Sequence[LaneSpec]) -> int:
    """Slot-axis width of the group's stacks.

    The clean topology's slot count bounds every fault state's (faults
    only remove links), so the maximum clean width fits all phases.
    """
    return max(
        spec.simulator.topology.link_index().n_slots for spec in specs
    )


def fill_lane(spec: LaneSpec, lane: int,
              stacks: Dict[str, np.ndarray]) -> LaneMeta:
    """Run one lane's Step B + charging, writing its stack columns.

    ``stacks`` maps :data:`STACK_NAMES` to ``(P, L, W)`` arrays
    (typically shared-memory backed); this writes ``[:, lane, :]`` only,
    so workers with disjoint lane assignments never race. Returns the
    lane's :class:`LaneMeta` (small, picklable).
    """
    simulator = spec.simulator
    bytes_m = stacks["bytes"]
    capacity_m = stacks["capacity"]
    service_m = stacks["service"]
    charge_m = stacks["charge"]
    width = bytes_m.shape[2]
    checkpoints = simulator.checkpoints(spec.mode, spec.static_map)
    phases: List[LanePhaseMeta] = []
    for p, (checkpoint, trace) in enumerate(
            zip(checkpoints, simulator.setup.traces)):
        model = simulator._phase_timing_model(trace.phase)
        inputs = model.phase_inputs(trace, checkpoint.page_map,
                                    checkpoint.batch)
        index = model.topology.link_index()
        s = index.n_slots
        if s > width:
            raise ValueError(
                f"lane {lane} phase {p} needs {s} slots, stacks have "
                f"{width}"
            )
        vec = inputs.loads.bytes_vector
        bytes_m[p, lane, :s] = vec
        bytes_m[p, lane, s:] = 0.0
        capacity_m[p, lane, :s] = index.capacity_gbps
        capacity_m[p, lane, s:] = 1.0
        service_m[p, lane, :s] = index.service_ns
        service_m[p, lane, s:] = 1.0
        charge_m[p, lane, :s] = inputs.charge
        charge_m[p, lane, s:] = 0.0
        charged_slots = []
        for slot in np.flatnonzero(vec):
            hop = index.hop_at(int(slot))
            charged_slots.append((
                int(slot), hop.link.link_id, hop.forward,
                hop.link.capacity_gbps, float(index.service_ns[slot]),
            ))
        batch = checkpoint.batch
        phases.append(LanePhaseMeta(
            phase=trace.phase,
            n_slots=s,
            weighted_unloaded=inputs.weighted_unloaded,
            total=float(inputs.classification.total_accesses),
            stall_per_access=inputs.stall_per_access,
            replication_penalty_ns=inputs.replication_penalty_ns,
            extra_cpi=inputs.extra_cpi,
            instructions_per_thread=trace.instructions_per_thread,
            total_accesses=inputs.classification.total_accesses,
            migrated_pages=batch.n_pages if batch else 0,
            migrated_pages_to_pool=batch.pages_to_pool if batch else 0,
            breakdown=model._breakdown(inputs.classification),
            charged_slots=charged_slots,
        ))
    demand_pages, pool_pages = _migration_totals(checkpoints)
    setup = simulator.setup
    return LaneMeta(
        workload=setup.profile.name,
        config_name=simulator.system.name,
        local_ns=simulator.system.latency.local_ns,
        core=simulator.system.core,
        calibration=spec.calibration,
        fixed_ipc=spec.fixed_ipc,
        anchor_ipc=setup.profile.ipc_16,
        warmup_phases=spec.warmup_phases,
        demand_pages=demand_pages,
        pool_pages=pool_pages,
        phases=phases,
    )


def solve_stacks(metas: Sequence[LaneMeta], stacks: Dict[str, np.ndarray],
                 settings: FixedPointSettings,
                 kernel: str = "batched") -> List[SimulationResult]:
    """Solve pre-filled stacks (the parent side of the split form).

    Reads the stacked arrays zero-copy (phase slices are handed to the
    solver as-is) and rebuilds per-phase timings purely from
    :class:`LaneMeta`, so the caller needs no simulator objects --
    exactly what the shared-memory fan-out wants after its workers
    exit.
    """
    if not metas:
        return []
    if kernel not in BATCH_KERNELS:
        raise ValueError(
            f"kernel must be one of {BATCH_KERNELS}, got {kernel!r}"
        )
    n_phases = len(metas[0].phases)
    for meta in metas:
        if len(meta.phases) != n_phases:
            raise ValueError("lanes disagree on phase count")
    bytes_m = stacks["bytes"]
    jit = kernel == "batched-jit"
    previous: List[Optional[float]] = [None] * len(metas)
    timings: List[List[PhaseTiming]] = [[] for _ in metas]
    with OBS.span("sim.batch.solve", lanes=len(metas), phases=n_phases,
                  kernel=kernel):
        for p in range(n_phases):
            lanes = [
                BatchedLane(
                    n_slots=meta.phases[p].n_slots,
                    weighted_unloaded=meta.phases[p].weighted_unloaded,
                    total=meta.phases[p].total,
                    stall_per_access=meta.phases[p].stall_per_access,
                    replication_penalty_ns=(
                        meta.phases[p].replication_penalty_ns
                    ),
                    extra_cpi=meta.phases[p].extra_cpi,
                    local_ns=meta.local_ns,
                    instructions_per_thread=(
                        meta.phases[p].instructions_per_thread
                    ),
                    core=meta.core,
                    calibration=meta.calibration,
                    initial_ipc=previous[i] or meta.anchor_ipc,
                    fixed_ipc=meta.fixed_ipc,
                )
                for i, meta in enumerate(metas)
            ]
            solver = _BatchedKernel(
                lanes, settings,
                stacks=(stacks["bytes"][p], stacks["capacity"][p],
                        stacks["service"][p], stacks["charge"][p]),
            )
            for i, solution in enumerate(solver.solve(jit=jit)):
                ipc, amat_ns, unloaded_ns, iterations, converged = solution
                timing = _meta_phase_timing(
                    metas[i], metas[i].phases[p], bytes_m[p, i],
                    ipc, amat_ns, unloaded_ns, iterations, converged,
                    settings, kernel,
                )
                previous[i] = timing.ipc
                timings[i].append(timing)
    return [
        SimulationResult(
            workload=meta.workload,
            config_name=meta.config_name,
            phases=timings[i][meta.warmup_phases:],
            pages_migrated=meta.demand_pages,
            pages_migrated_to_pool=meta.pool_pages,
        )
        for i, meta in enumerate(metas)
    ]


def _meta_phase_timing(meta: LaneMeta, phase_meta: LanePhaseMeta,
                       bytes_row: np.ndarray, ipc: float, amat_ns: float,
                       unloaded_ns: float, iterations: int,
                       converged: bool, settings: FixedPointSettings,
                       kernel: str) -> PhaseTiming:
    """Rebuild one phase's :class:`PhaseTiming` from metadata alone.

    Replicates the solo tail's arithmetic (duration from the lane's
    core, hottest-link utilizations from the charged slots) operation
    for operation, so the values match the in-process path bit for
    bit.
    """
    duration = meta.core.cycles_to_ns(
        phase_meta.instructions_per_thread / ipc
    )
    samples = _busiest_from_meta(phase_meta, bytes_row, duration,
                                 settings.burstiness, top=3)
    hottest = {sample.link_id: sample.utilization for sample in samples}
    if OBS.enabled:
        OBS.counter("sim.phases")
        OBS.counter("sim.fixed_point.iterations", iterations)
        OBS.observe("sim.fixed_point.iterations_per_phase", iterations)
        OBS.event(
            "sim.timing", phase=phase_meta.phase, kernel=kernel,
            ipc=ipc, amat_ns=amat_ns, unloaded_amat_ns=unloaded_ns,
            duration_ns=duration, iterations=iterations,
            converged=converged,
            total_accesses=phase_meta.total_accesses,
            migrated_pages=phase_meta.migrated_pages,
        )
        if samples:
            OBS.event(
                "interconnect.utilization", phase=phase_meta.phase,
                top=[sample.as_attrs() for sample in samples],
            )
    return PhaseTiming(
        phase=phase_meta.phase,
        ipc=ipc,
        duration_ns=duration,
        amat_ns=amat_ns,
        unloaded_amat_ns=unloaded_ns,
        breakdown=phase_meta.breakdown,
        total_accesses=phase_meta.total_accesses,
        migrated_pages=phase_meta.migrated_pages,
        migrated_pages_to_pool=phase_meta.migrated_pages_to_pool,
        migration_stall_ns_per_access=phase_meta.stall_per_access,
        fixed_point_iterations=iterations,
        converged=converged,
        hottest_links=hottest,
    )


def _busiest_from_meta(phase_meta: LanePhaseMeta, bytes_row: np.ndarray,
                       window_ns: float, burstiness: float,
                       top: int = 3) -> List[TrafficSample]:
    """Top utilized link directions from charged-slot metadata.

    Same ranking as :meth:`LinkLoads.busiest` -- utilization
    ``bytes / (window * capacity)``, stable descending over the charged
    slots in slot order -- and the same per-sample float expressions.
    """
    if not phase_meta.charged_slots:
        return []
    slots = np.array([entry[0] for entry in phase_meta.charged_slots],
                     dtype=np.intp)
    capacities = np.array(
        [entry[3] for entry in phase_meta.charged_slots],
        dtype=np.float64,
    )
    utilization = bytes_row[slots] / (window_ns * capacities)
    order = np.argsort(-utilization, kind="stable")[:top]
    samples = []
    for rank in order:
        slot, link_id, forward, capacity, service = (
            phase_meta.charged_slots[int(rank)]
        )
        offered = float(bytes_row[slot]) / window_ns
        samples.append(TrafficSample(
            link_id=link_id,
            forward=forward,
            offered_gbps=offered,
            capacity_gbps=capacity,
            wait_ns=mdl_wait_ns(offered / capacity, service,
                                burstiness=burstiness),
        ))
    return samples
