"""The three-step simulation pipeline (Section IV).

* **Step A** -- trace synthesis (:mod:`repro.trace`): per-phase access
  count matrices statistically matching the workload's published
  structure.
* **Step B** -- trace-driven migration simulation
  (:class:`~repro.sim.engine.Simulator` + the policies in
  :mod:`repro.migration`): per-phase tracker updates, Algorithm 1 (or the
  baseline's perfect-knowledge policy), and page-map checkpoints.
* **Step C** -- timing (:mod:`repro.sim.timing`): per-phase access
  classification, link/channel loading, M/D/1 queueing, and a closed-loop
  AMAT <-> IPC fixed point using the calibrated CPI model.

The paper's Step C is cycle-level ChampSim; ours is the analytic queueing
model described in DESIGN.md -- the structural substitution of this
reproduction.
"""

from repro.sim.results import PhaseTiming, SimulationResult
from repro.sim.engine import SimulationSetup, Simulator
from repro.sim.timing import PhaseTimingModel

__all__ = [
    "PhaseTiming",
    "PhaseTimingModel",
    "SimulationResult",
    "SimulationSetup",
    "Simulator",
]
