"""Consistency validators for simulation results.

Invariants any healthy run must satisfy, factored out so tests, the CLI,
and downstream users can all assert them. ``validate_result`` raises
:class:`ValidationError` with a list of violations; ``check_result``
returns the list instead.
"""

from __future__ import annotations

from typing import List, Optional

from repro.config import LatencyConfig
from repro.sim.results import SimulationResult


#: Float-noise tolerance for comparisons between derived quantities; a
#: unitless guard, not a latency.
_EPSILON = 1e-6


class ValidationError(AssertionError):
    """One or more result invariants were violated."""

    def __init__(self, violations: List[str]):
        self.violations = violations
        super().__init__("; ".join(violations))


def check_result(result: SimulationResult,
                 latency: Optional[LatencyConfig] = None) -> List[str]:
    """Return all invariant violations of ``result`` (empty if healthy)."""
    latency = latency or LatencyConfig()
    violations: List[str] = []

    slowest = max(latency.inter_chassis_ns, latency.block_transfer_socket_ns)
    if result.unloaded_amat_ns < latency.local_ns - _EPSILON:
        violations.append(
            f"unloaded AMAT {result.unloaded_amat_ns:.1f} ns below local "
            f"latency {latency.local_ns} ns"
        )
    # Software-replication runs fold the write-coherence penalty into the
    # unloaded figure, so only a gross excess is flagged.
    if result.unloaded_amat_ns > 10 * slowest:
        violations.append(
            f"unloaded AMAT {result.unloaded_amat_ns:.1f} ns grossly above "
            f"the slowest access class {slowest} ns"
        )
    if result.amat_ns < result.unloaded_amat_ns - _EPSILON:
        violations.append("loaded AMAT below unloaded AMAT")
    if result.ipc <= 0:
        violations.append(f"non-positive IPC {result.ipc}")

    fractions = result.access_fractions()
    total = sum(fractions.values())
    if fractions and abs(total - 1.0) > _EPSILON:
        violations.append(f"access fractions sum to {total:.6f}")
    if any(value < 0 for value in fractions.values()):
        violations.append("negative access fraction")

    if result.pages_migrated_to_pool > result.pages_migrated:
        violations.append("more pages to pool than migrated in total")
    if not 0.0 <= result.pool_migration_fraction <= 1.0:
        violations.append(
            f"pool migration fraction {result.pool_migration_fraction}"
        )

    for phase in result.phases:
        if phase.duration_ns <= 0:
            violations.append(f"phase {phase.phase}: non-positive duration")
        if phase.total_accesses < 0:
            violations.append(f"phase {phase.phase}: negative accesses")
        if not phase.converged:
            violations.append(f"phase {phase.phase}: fixed point did not "
                              "converge")
    return violations


def validate_result(result: SimulationResult,
                    latency: Optional[LatencyConfig] = None) -> None:
    """Raise :class:`ValidationError` if any invariant is violated."""
    violations = check_result(result, latency)
    if violations:
        raise ValidationError(violations)
