"""Simulation engine: orchestrates trace synthesis, migration, and timing.

Scaling: the simulated footprint (tens of thousands of pages) stands in
for the real multi-gigabyte one, so per-phase access volumes are scaled by
the footprint ratio. This keeps per-region access densities -- and hence
tracker-threshold dynamics -- identical to the full-scale system's, while
offered bandwidths are unchanged (both accesses and wall-clock window
scale together). It is the same commensurate-scaling idea the paper
applies to cores, channels, and link bandwidths (Table II).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

import numpy as np

from repro.config import SystemConfig, units
from repro.config.parameters import PAGE_SIZE_BYTES
from repro.faults import FaultSchedule, FaultState, faulted_topology
from repro.faults.degraded import PoolEvacuator
from repro.metrics.calibration import CalibratedCpi, calibrate_cpi
from repro.migration import (
    BaselinePolicy,
    MigrationBatch,
    RegionTable,
    StarNumaPolicy,
    oracular_static_placement,
)
from repro.obs import OBS
from repro.placement import PoolCapacityManager, first_touch_placement
from repro.placement.pagemap import PageMap
from repro.sim.results import PhaseTiming, SimulationResult
from repro.sim.timing import FixedPointSettings, PhaseTimingModel
from repro.topology import RouteTable, Topology
from repro.trace import PhaseTrace, TraceSynthesizer
from repro.workloads import PagePopulation, WorkloadProfile, build_population

if TYPE_CHECKING:
    from repro.replication import ReplicationPlan

#: Floor on the simulated per-phase instruction count after footprint
#: scaling, so tiny simulated footprints still execute meaningful phases.
MIN_PHASE_INSTRUCTIONS = 1_000_000

#: Minimum effective per-phase migration budget, in regions, after
#: footprint scaling. The paper picks the best-performing limit per
#: workload/system from a 0..256K-page sweep; scaling the budget exactly
#: with the footprint would starve small simulated instances, so a floor
#: keeps the policy inside its productive operating range.
MIN_MIGRATION_REGIONS = 32


@dataclass
class Checkpoint:
    """Step B output for one phase: memory state plus in-flight migrations."""

    phase: int
    page_map: PageMap
    batch: Optional[MigrationBatch]


@dataclass
class SimulationSetup:
    """Shared, config-independent inputs of one workload instance.

    Population and traces depend only on the workload, the socket count,
    the per-socket thread count, and the seed -- never on which system
    variant is being timed -- so one setup is reused across every
    configuration of an experiment for a like-for-like comparison.
    """

    profile: WorkloadProfile
    population: PagePopulation
    traces: List[PhaseTrace]
    seed: int

    @classmethod
    def create(cls, profile: WorkloadProfile, system: SystemConfig,
               n_phases: int = 8, seed: int = 0,
               layout: str = "clustered") -> "SimulationSetup":
        population = build_population(
            profile,
            n_sockets=system.n_sockets,
            sockets_per_chassis=system.sockets_per_chassis,
            seed=seed,
            layout=layout,
        )
        instructions = cls.scaled_phase_instructions(profile, system)
        synthesizer = TraceSynthesizer(
            population,
            threads_per_socket=system.cores_per_socket,
            instructions_per_thread=instructions,
            seed=seed,
        )
        return cls(
            profile=profile,
            population=population,
            traces=synthesizer.synthesize(n_phases),
            seed=seed,
        )

    @staticmethod
    def footprint_scale(profile: WorkloadProfile) -> float:
        """Simulated-to-real footprint ratio."""
        real_bytes = units.gb_to_bytes(profile.footprint_gb)
        sim_bytes = profile.n_pages_sim * PAGE_SIZE_BYTES
        return sim_bytes / real_bytes

    @staticmethod
    def scaled_phase_instructions(profile: WorkloadProfile,
                                  system: SystemConfig,
                                  multiplier: int = 1) -> int:
        """Per-thread instructions of one simulated phase.

        The nominal phase length comes from the system configuration
        (``migration.phase_instructions``), scaled by the footprint ratio
        and floored so small simulated instances still run meaningful
        phases. ``multiplier`` lengthens phases (the SC2 configuration of
        Fig. 14 runs 3x-longer phases).
        """
        nominal = system.migration.phase_instructions
        scale = SimulationSetup.footprint_scale(profile)
        return max(MIN_PHASE_INSTRUCTIONS, int(nominal * scale * multiplier))

    def total_counts(self) -> np.ndarray:
        """Whole-run (socket, page) access counts -- the oracle's input."""
        return sum(trace.counts for trace in self.traces)


class Simulator:
    """Runs Steps B and C for one (workload, system) pair."""

    def __init__(self, system: SystemConfig, setup: SimulationSetup,
                 settings: Optional[FixedPointSettings] = None,
                 replication: Optional["ReplicationPlan"] = None,
                 faults: Optional[FaultSchedule] = None):
        system.validate()
        if setup.population.n_sockets != system.n_sockets:
            raise ValueError(
                "setup was built for a different socket count; create a "
                "new SimulationSetup for this system"
            )
        self.system = system
        self.setup = setup
        self.topology = Topology(system)
        self.routes = RouteTable(self.topology)
        self.faults = faults if faults is not None else FaultSchedule()
        self.faults.validate(self.topology)
        self._settings = settings
        self._replication = replication
        self.timing = PhaseTimingModel(
            system, self.topology, self.routes, setup.population, settings,
            replication=replication,
        )
        self._fault_timing: Dict[FaultState, PhaseTimingModel] = {}
        self._checkpoint_cache: Dict[str, List[Checkpoint]] = {}

    def _phase_timing_model(self, phase: int) -> PhaseTimingModel:
        """The timing model for one phase's fault state.

        Clean phases (and fault-free runs) reuse the single ideal model,
        so an empty schedule is exactly the historical code path. Faulted
        states are cached per distinct state, not per phase. May raise
        :class:`~repro.faults.PartitionedTopologyError` while recomputing
        routes if the state severs part of the fabric.
        """
        if self.faults.is_empty:
            return self.timing
        state = self.faults.state_at(phase)
        if state.is_clean:
            return self.timing
        if state not in self._fault_timing:
            topology = faulted_topology(self.topology, state)
            routes = RouteTable(topology)
            self._fault_timing[state] = PhaseTimingModel(
                self.system, topology, routes,
                self.setup.population, self._settings,
                replication=self._replication,
            )
            if OBS.enabled:
                OBS.counter("faults.states_compiled")
                OBS.event(
                    "faults.transition", phase=phase,
                    n_removed_links=len(
                        getattr(topology, "removed_links", ())
                    ),
                    pool_failed=bool(getattr(state, "pool_failed",
                                             False)),
                    reroutes=self._count_reroutes(routes),
                )
        return self._fault_timing[state]

    def _count_reroutes(self, routes: RouteTable) -> int:
        """(requester, location) pairs forced onto a detour path."""
        n = self.topology.n_sockets
        locations = list(range(n))
        if self.topology.has_pool:
            from repro.topology.model import POOL_LOCATION

            locations.append(POOL_LOCATION)
        return sum(
            1
            for socket in range(n)
            for location in locations
            if socket != location
            and routes.detour_penalty_ns(socket, location) > 0.0
        )

    # -- Step B --------------------------------------------------------------

    @property
    def effective_migration_limit(self) -> int:
        """Per-phase migration budget after footprint scaling, pages."""
        migration = self.system.migration
        if migration.migration_limit_override_pages is not None:
            return migration.migration_limit_override_pages
        scaled = int(migration.migration_limit_pages
                     * SimulationSetup.footprint_scale(self.setup.profile))
        floor = MIN_MIGRATION_REGIONS * migration.pages_per_region
        return max(floor, scaled)

    def initial_page_map(self) -> PageMap:
        rng = np.random.default_rng((self.setup.seed, 0xf157))
        return first_touch_placement(
            self.setup.population.sharer_mask,
            self.system.n_sockets,
            self.topology.has_pool,
            rng,
        )

    def static_oracle_map(self) -> PageMap:
        """The Fig. 9 oracular static placement for this architecture."""
        totals = self.setup.total_counts()
        capacity = None
        if self.topology.has_pool:
            capacity = PoolCapacityManager(
                self.setup.population.n_pages,
                self.system.pool.capacity_fraction,
            )
        return oracular_static_placement(
            totals,
            self.setup.population.sharer_count.astype(np.int64),
            has_pool=self.topology.has_pool,
            capacity=capacity,
            pool_sharer_threshold=self.system.migration.pool_sharer_threshold,
        )

    def checkpoints(self, mode: str = "dynamic",
                    static_map: Optional[PageMap] = None) -> List[Checkpoint]:
        """Run Step B once and cache it (decisions are timing-independent).

        ``mode``:

        * ``"dynamic"`` -- first-touch start, then the architecture's
          policy each phase (Algorithm 1 with the pool, the
          perfect-knowledge policy without);
        * ``"static"`` -- fixed ``static_map`` (or the oracle), no
          migrations;
        * ``"none"`` -- first-touch only, no migrations.
        """
        key = f"{mode}:{id(static_map) if static_map is not None else ''}"
        if key not in self._checkpoint_cache:
            with OBS.span("sim.step_b", mode=mode,
                          workload=self.setup.profile.name,
                          config=self.system.name):
                self._checkpoint_cache[key] = self._run_step_b(
                    mode, static_map
                )
        return self._checkpoint_cache[key]

    def _run_step_b(self, mode: str,
                    static_map: Optional[PageMap]) -> List[Checkpoint]:
        if mode not in ("dynamic", "static", "none"):
            raise ValueError(f"unknown mode {mode!r}")
        traces = self.setup.traces

        if mode == "static":
            page_map = static_map or self.static_oracle_map()
            return [Checkpoint(trace.phase, page_map.copy(), None)
                    for trace in traces]
        if mode == "none":
            page_map = self.initial_page_map()
            return [Checkpoint(trace.phase, page_map.copy(), None)
                    for trace in traces]

        page_map = self.initial_page_map()
        checkpoints: List[Checkpoint] = []
        pending: Optional[MigrationBatch] = None
        decide = self._make_policy(page_map)
        for trace in traces:
            # The map already reflects all prior decisions; the batch
            # decided at the previous phase's end executes (and is
            # charged) during this phase.
            checkpoints.append(
                Checkpoint(trace.phase, page_map.copy(), pending)
            )
            pending = decide(trace, page_map)
        return checkpoints

    def _make_policy(self, initial_map: PageMap):
        """Build this architecture's per-phase decision function."""
        migration = self.system.migration
        import dataclasses

        scaled = dataclasses.replace(
            migration, migration_limit_pages=self.effective_migration_limit
        )
        rng = np.random.default_rng((self.setup.seed, 0x9019))

        if self.topology.has_pool:
            regions = RegionTable(initial_map, migration.pages_per_region)
            capacity = PoolCapacityManager(
                self.setup.population.n_pages,
                self.system.pool.capacity_fraction,
            )
            from repro.tracking import RegionTrackerArray

            tracker = RegionTrackerArray(
                regions.n_regions, self.system.n_sockets, migration.tracker
            )
            policy = StarNumaPolicy(scaled, regions, capacity, rng)
            fail_phase = self.faults.pool_failure_phase()
            evacuator = PoolEvacuator(
                regions, capacity, self.setup.population.sharer_mask,
                self.system.n_sockets,
            )
            fallback = BaselinePolicy(scaled, rng=rng)

            def decide(trace: PhaseTrace, page_map: PageMap) -> MigrationBatch:
                region_counts = regions.aggregate_page_counts(trace.counts)
                tracker.update(region_counts)
                locations = regions.region_locations(page_map)
                # The batch decided here executes during the *next* phase,
                # so degraded mode engages as soon as that phase sees the
                # pool failed: no pool-bound moves, drain residents under
                # the budget, then behave like the baseline policy.
                if fail_phase is not None and trace.phase + 1 >= fail_phase:
                    if not evacuator.drained(locations):
                        batch = MigrationBatch(phase=trace.phase + 1)
                        evacuator.evacuate_phase(
                            region_counts, locations, page_map,
                            scaled.migration_limit_pages, batch,
                        )
                    else:
                        batch = fallback.decide(trace.counts, page_map)
                    tracker.reset()
                    return batch
                batch = policy.decide(tracker, locations, page_map)
                tracker.reset()
                return batch

            return decide

        policy = BaselinePolicy(scaled, rng=rng)

        def decide(trace: PhaseTrace, page_map: PageMap) -> MigrationBatch:
            return policy.decide(trace.counts, page_map)

        return decide

    # -- Step C --------------------------------------------------------------

    def run(self, calibration: Optional[CalibratedCpi] = None,
            mode: str = "dynamic",
            static_map: Optional[PageMap] = None,
            fixed_ipc: Optional[float] = None,
            warmup_phases: int = 2) -> SimulationResult:
        """Run Step C over every checkpoint and aggregate.

        ``fixed_ipc`` runs open-loop at that IPC (the calibration pass);
        otherwise ``calibration`` must be provided for the closed loop.
        The first ``warmup_phases`` phases are simulated (they evolve the
        page map) but excluded from aggregates, standing in for the longer
        pre-steady-state execution of the real runs.
        """
        if fixed_ipc is None and calibration is None:
            raise ValueError("closed-loop timing needs a calibration")
        checkpoints = self.checkpoints(mode, static_map)
        if warmup_phases >= len(checkpoints):
            raise ValueError(
                f"warmup ({warmup_phases}) must leave at least one "
                f"measured phase of {len(checkpoints)}"
            )

        timings: List[PhaseTiming] = []
        previous_ipc: Optional[float] = None
        with OBS.span("sim.run", workload=self.setup.profile.name,
                      config=self.system.name, mode=mode,
                      phases=len(checkpoints)):
            for checkpoint, trace in zip(checkpoints, self.setup.traces):
                timing = self._phase_timing_model(trace.phase).evaluate(
                    trace,
                    checkpoint.page_map,
                    calibration,
                    batch=checkpoint.batch,
                    fixed_ipc=fixed_ipc,
                    initial_ipc=previous_ipc,
                )
                previous_ipc = timing.ipc
                timings.append(timing)

        measured = timings[warmup_phases:]
        demand_pages = 0
        pool_pages = 0
        for checkpoint in checkpoints:
            if checkpoint.batch is None:
                continue
            for move in checkpoint.batch.moves:
                if move.from_pool:
                    continue  # victim evictions are not demand migrations
                demand_pages += move.n_pages
                if move.to_pool:
                    pool_pages += move.n_pages
        return SimulationResult(
            workload=self.setup.profile.name,
            config_name=self.system.name,
            phases=measured,
            pages_migrated=demand_pages,
            pages_migrated_to_pool=pool_pages,
        )

    # -- calibration -----------------------------------------------------------

    def calibrate(self, mode: str = "dynamic") -> CalibratedCpi:
        """Fit the CPI model from an open-loop pass at the published IPC.

        Only meaningful on the baseline architecture: the anchors of Table
        III were measured there.
        """
        open_loop = self.run(fixed_ipc=self.setup.profile.ipc_16, mode=mode)
        return calibrate_cpi(
            self.setup.profile,
            open_loop.amat_ns,
            self.system.core,
            self.system.latency.local_ns,
        )
