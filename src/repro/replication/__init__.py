"""Page replication: the alternative the paper weighs against pooling.

Section V-F analyzes replicating vagabond pages across sockets instead
of (or in addition to) pooling them. Replication converts remote reads
into local ones, but:

* every replica costs memory capacity (a page shared by 16 sockets
  replicated everywhere costs 15 extra copies), and
* writes to replicated pages require software coherence -- invalidating
  or updating every replica, at page-fault-and-IPI timescales, which the
  paper estimates at an unsustainable rate for read-write workloads (a
  coherence action every ~50 cycles for BFS).

This package implements a capacity-budgeted, read-only-biased replication
policy and the timing-model plan that reclassifies accesses to
replicated pages, so replication, pooling, and their combination can be
compared (the ``ext-replication`` experiment).
"""

from repro.replication.policy import ReplicationPolicy
from repro.replication.plan import ReplicationPlan

__all__ = ["ReplicationPlan", "ReplicationPolicy"]
