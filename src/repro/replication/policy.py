"""Capacity-budgeted selection of replication candidates.

Good replication candidates (Section V-F) are pages that are

* widely shared (remote accesses to save),
* hot (worth the copies),
* read-only or nearly so (writes pay software coherence), and
* collectively small (replicas multiply capacity).

The policy ranks pages by saved remote accesses per byte of replica and
takes them greedily until the capacity budget is exhausted.
"""

from __future__ import annotations

import numpy as np

from repro.replication.plan import DEFAULT_WRITE_PENALTY_NS, ReplicationPlan
from repro.workloads.population import PagePopulation


class ReplicationPolicy:
    """Greedy read-only-biased replication under a capacity budget."""

    def __init__(self, capacity_budget_fraction: float = 0.5,
                 min_sharers: int = 8,
                 max_write_fraction: float = 0.05,
                 write_penalty_ns: float = DEFAULT_WRITE_PENALTY_NS):
        if capacity_budget_fraction < 0:
            raise ValueError("capacity budget must be >= 0")
        if min_sharers < 2:
            raise ValueError("replication needs at least 2 sharers")
        if not 0.0 <= max_write_fraction <= 1.0:
            raise ValueError("max_write_fraction must be in [0, 1]")
        self.capacity_budget_fraction = capacity_budget_fraction
        self.min_sharers = min_sharers
        self.max_write_fraction = max_write_fraction
        self.write_penalty_ns = write_penalty_ns

    def plan(self, population: PagePopulation) -> ReplicationPlan:
        """Choose the replica set for one workload instance.

        The budget is expressed as extra copies relative to the footprint
        (0.5 means replicas may consume up to half a footprint of DRAM).
        """
        n_pages = population.n_pages
        sharers = population.sharer_count.astype(np.int64)
        eligible = (
            (sharers >= self.min_sharers)
            & (population.write_fraction <= self.max_write_fraction)
        )
        candidates = np.flatnonzero(eligible)
        if candidates.size == 0:
            return ReplicationPlan.empty(n_pages)

        # Benefit: remote accesses converted to local = weight * (k-1)/k.
        # Cost: k-1 extra page copies. Rank by benefit per copy.
        k = sharers[candidates].astype(np.float64)
        saved = population.weight[candidates] * (k - 1.0) / k
        copies = k - 1.0
        order = candidates[np.argsort(saved / copies)[::-1]]

        budget_copies = int(self.capacity_budget_fraction * n_pages)
        replicated = np.zeros(n_pages, dtype=bool)
        used = 0
        for page in order:
            need = int(sharers[page]) - 1
            if used + need > budget_copies:
                continue
            replicated[page] = True
            used += need
        return ReplicationPlan(
            replicated=replicated,
            extra_copies=used,
            write_penalty_ns=self.write_penalty_ns,
        )
