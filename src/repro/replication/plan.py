"""A concrete replication decision and its costs."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config.parameters import PAGE_SIZE_BYTES

#: Cost of keeping replicas coherent on one write to a replicated page:
#: the writer must invalidate (or update) every replica in software --
#: inter-processor interrupts, page-table updates, TLB shootdowns. A few
#: microseconds is the optimistic end of OS-level page-fault handling.
DEFAULT_WRITE_PENALTY_NS = 2_000.0


@dataclass(frozen=True)
class ReplicationPlan:
    """Which pages are replicated at every sharer socket, and the costs.

    ``replicated`` is a boolean per page. An access by any sharer to a
    replicated page is served from the local replica; a *write* to it
    additionally pays ``write_penalty_ns`` of software coherence on top.
    """

    replicated: np.ndarray
    #: Extra copies each replicated page keeps (sharers - 1, summed).
    extra_copies: int
    write_penalty_ns: float = DEFAULT_WRITE_PENALTY_NS

    def __post_init__(self) -> None:
        if self.replicated.dtype != np.bool_:
            raise ValueError("replicated mask must be boolean")
        if self.extra_copies < 0:
            raise ValueError("extra_copies must be >= 0")
        if self.write_penalty_ns < 0:
            raise ValueError("write penalty must be >= 0")

    @property
    def n_replicated_pages(self) -> int:
        return int(np.count_nonzero(self.replicated))

    def capacity_overhead_bytes(self) -> int:
        """Extra DRAM consumed by replicas."""
        return self.extra_copies * PAGE_SIZE_BYTES

    def capacity_overhead_fraction(self) -> float:
        """Replica bytes relative to the (unreplicated) footprint."""
        n_pages = int(self.replicated.size)
        if n_pages == 0:
            return 0.0
        return self.extra_copies / n_pages

    @classmethod
    def empty(cls, n_pages: int) -> "ReplicationPlan":
        return cls(replicated=np.zeros(n_pages, dtype=bool), extra_copies=0)
