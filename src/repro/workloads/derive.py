"""Derive a page population from measured traces.

The synthetic direction (profile -> population -> traces) is the default,
but when real traces are available (see ``docs/traces.md``), the pipeline
needs a :class:`PagePopulation` describing the same pages. This module
reconstructs one from whole-run access counts:

* a page's **sharer set** is the set of sockets that ever touch it;
* its **weight** is its share of all accesses;
* its **write fraction** comes from the tracer (or a per-workload
  default when the tracer does not distinguish loads from stores).

The derived population feeds classification, coherence estimation, and
the migration policies exactly like a synthetic one.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.workloads.population import PagePopulation
from repro.workloads.profile import WorkloadProfile


def derive_population(total_counts: np.ndarray,
                      profile: WorkloadProfile,
                      write_fraction: Union[float, np.ndarray] = 0.25,
                      sockets_per_chassis: int = 4) -> PagePopulation:
    """Build a population from whole-run (socket, page) access counts.

    Every page must have been touched at least once -- pages that never
    appear in the traces carry no information and should be trimmed by
    the caller first.
    """
    total_counts = np.asarray(total_counts)
    if total_counts.ndim != 2:
        raise ValueError("total_counts must be (n_sockets, n_pages)")
    n_sockets, n_pages = total_counts.shape
    if np.any(total_counts < 0):
        raise ValueError("access counts must be >= 0")

    page_totals = total_counts.sum(axis=0)
    if np.any(page_totals == 0):
        raise ValueError(
            "every page needs at least one access; trim untouched pages"
        )

    touched = total_counts > 0
    masks = np.zeros(n_pages, dtype=np.uint32)
    for socket in range(n_sockets):
        masks[touched[socket]] |= np.uint32(1 << socket)
    sharer_count = touched.sum(axis=0).astype(np.int16)

    weight = page_totals.astype(np.float64)
    weight /= weight.sum()

    if np.isscalar(write_fraction):
        writes = np.full(n_pages, float(write_fraction))
    else:
        writes = np.asarray(write_fraction, dtype=np.float64)
        if writes.shape != (n_pages,):
            raise ValueError("write_fraction must be scalar or per-page")
    if np.any((writes < 0) | (writes > 1)):
        raise ValueError("write fractions must be in [0, 1]")

    return PagePopulation(
        profile=profile,
        n_sockets=n_sockets,
        sockets_per_chassis=sockets_per_chassis,
        sharer_mask=masks,
        sharer_count=sharer_count,
        weight=weight,
        write_fraction=writes,
        class_id=np.zeros(n_pages, dtype=np.int16),  # classes unknown
    )


def measured_write_fractions(read_counts: np.ndarray,
                             write_counts: np.ndarray) -> np.ndarray:
    """Per-page write fractions from separate read/write count matrices."""
    reads = np.asarray(read_counts).sum(axis=0).astype(np.float64)
    writes = np.asarray(write_counts).sum(axis=0).astype(np.float64)
    totals = reads + writes
    if np.any(totals == 0):
        raise ValueError("every page needs at least one access")
    return writes / totals
