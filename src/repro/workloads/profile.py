"""Workload profile dataclasses."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class SharingClass:
    """One page class of a workload's sharing-degree distribution.

    ``sharers`` pages are accessed (uniformly, per the paper's assumption)
    by that many sockets. ``page_fraction`` of the footprint belongs to
    the class and receives ``access_fraction`` of all LLC-missing
    accesses. ``write_fraction`` is the store share of those accesses, and
    ``chassis_affinity`` is the probability that the class's sharer sets
    are drawn within a single chassis (possible only when the class fits
    in one chassis), modeling producer/consumer neighborhoods.
    """

    sharers: int
    page_fraction: float
    access_fraction: float
    write_fraction: float = 0.25
    chassis_affinity: float = 0.0

    def __post_init__(self) -> None:
        if self.sharers < 1:
            raise ValueError(f"sharers must be >= 1, got {self.sharers}")
        for name in ("page_fraction", "access_fraction", "write_fraction",
                     "chassis_affinity"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")


@dataclass(frozen=True)
class WorkloadProfile:
    """Everything the pipeline needs to know about one workload."""

    name: str
    family: str
    footprint_gb: float
    #: LLC misses per kilo-instruction on the baseline 16-socket system.
    mpki: float
    #: Per-core IPC on a single socket with local memory only (Table III,
    #: parenthesized) -- the first calibration anchor.
    ipc_single: float
    #: Per-core IPC on the baseline 16-socket system (Table III) -- the
    #: second calibration anchor.
    ipc_16: float
    sharing: Tuple[SharingClass, ...]
    #: Coherence residency/clustering factor (see repro.coherence.transfers).
    coupling: float = 0.22
    #: Zipf-like skew of access weights within each class (0 = uniform).
    weight_skew: float = 0.6
    #: Lognormal sigma of phase-to-phase weight jitter. Sharing patterns
    #: "do not drastically change over time" (Section V-B), so this is mild.
    drift_sigma: float = 0.15
    #: Number of pages in the simulated (scaled) footprint.
    n_pages_sim: int = 32768

    def __post_init__(self) -> None:
        if not self.sharing:
            raise ValueError("a workload needs at least one sharing class")
        page_total = sum(cls.page_fraction for cls in self.sharing)
        access_total = sum(cls.access_fraction for cls in self.sharing)
        if abs(page_total - 1.0) > 1e-6:
            raise ValueError(
                f"{self.name}: page fractions sum to {page_total}, expected 1"
            )
        if abs(access_total - 1.0) > 1e-6:
            raise ValueError(
                f"{self.name}: access fractions sum to {access_total}, "
                "expected 1"
            )
        if self.mpki <= 0:
            raise ValueError(f"{self.name}: MPKI must be positive")
        if not 0 < self.ipc_16 <= self.ipc_single:
            raise ValueError(
                f"{self.name}: expected 0 < ipc_16 <= ipc_single, got "
                f"{self.ipc_16} / {self.ipc_single}"
            )
        if self.n_pages_sim < 1024:
            raise ValueError(f"{self.name}: simulate at least 1024 pages")

    @property
    def write_fraction_overall(self) -> float:
        """Access-weighted store share across classes."""
        return sum(cls.access_fraction * cls.write_fraction
                   for cls in self.sharing)

    def sharer_histogram(self) -> Tuple[Tuple[int, float, float], ...]:
        """(sharers, page_fraction, access_fraction) triples, sorted."""
        ordered = sorted(self.sharing, key=lambda cls: cls.sharers)
        return tuple(
            (cls.sharers, cls.page_fraction, cls.access_fraction)
            for cls in ordered
        )
