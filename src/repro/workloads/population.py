"""Expansion of a workload profile into a concrete page population."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.workloads.profile import WorkloadProfile


@dataclass
class PagePopulation:
    """Concrete pages of one workload instance.

    * ``sharer_mask[p]`` -- bitmask of the sockets that access page ``p``;
    * ``sharer_count[p]`` -- its popcount;
    * ``weight[p]`` -- the page's share of all LLC-missing accesses
      (sums to 1);
    * ``write_fraction[p]`` -- store share of accesses to the page;
    * ``class_id[p]`` -- index into ``profile.sharing``.
    """

    profile: WorkloadProfile
    n_sockets: int
    sockets_per_chassis: int
    sharer_mask: np.ndarray
    sharer_count: np.ndarray
    weight: np.ndarray
    write_fraction: np.ndarray
    class_id: np.ndarray

    @property
    def n_pages(self) -> int:
        return int(self.sharer_mask.size)

    def membership(self) -> np.ndarray:
        """Boolean (n_sockets, n_pages) matrix of who shares what.

        Cached after the first call: the sharer masks never change once
        a population is built, and the matrix sits on the per-phase
        classification path of every timing evaluation.
        """
        cached = getattr(self, "_membership", None)
        if cached is None:
            sockets = np.arange(self.n_sockets, dtype=np.uint32)
            cached = (
                (self.sharer_mask[None, :] >> sockets[:, None]) & 1
            ) == 1
            self._membership = cached
        return cached

    def socket_access_rates(self) -> np.ndarray:
        """Per-socket access distribution over pages.

        ``rates[s, p]`` is the probability that one access issued by
        socket ``s`` targets page ``p``. A page's weight splits uniformly
        across its sharers (the paper's uniform-sharing assumption), and
        each socket's row is normalized so every socket issues the same
        access volume (threads of a workload behave alike -- Section IV-B).
        """
        member = self.membership()
        per_sharer = self.weight / self.sharer_count
        rates = member * per_sharer[None, :]
        row_sums = rates.sum(axis=1, keepdims=True)
        if np.any(row_sums == 0):
            raise ValueError(
                "a socket shares no pages; population is too small or "
                "too skewed"
            )
        return rates / row_sums

    # -- characterization (Fig. 2 / Fig. 13) --------------------------------

    def sharing_degree_histogram(self) -> Tuple[np.ndarray, np.ndarray]:
        """Fraction of *pages* at each sharing degree (1..n_sockets)."""
        degrees = np.arange(1, self.n_sockets + 1)
        fractions = np.array([
            np.count_nonzero(self.sharer_count == degree) / self.n_pages
            for degree in degrees
        ])
        return degrees, fractions

    def access_share_by_degree(self) -> Tuple[np.ndarray, np.ndarray]:
        """Fraction of *accesses* going to pages of each sharing degree."""
        degrees = np.arange(1, self.n_sockets + 1)
        shares = np.array([
            float(self.weight[self.sharer_count == degree].sum())
            for degree in degrees
        ])
        return degrees, shares

    def read_write_split_by_degree(self) -> Tuple[np.ndarray, np.ndarray,
                                                  np.ndarray]:
        """Read and write access shares per sharing degree."""
        degrees = np.arange(1, self.n_sockets + 1)
        reads = np.zeros(degrees.size)
        writes = np.zeros(degrees.size)
        for index, degree in enumerate(degrees):
            mask = self.sharer_count == degree
            page_weight = self.weight[mask]
            page_writes = self.write_fraction[mask]
            writes[index] = float((page_weight * page_writes).sum())
            reads[index] = float((page_weight * (1 - page_writes)).sum())
        return degrees, reads, writes


def _class_sizes(profile: WorkloadProfile, n_pages: int) -> np.ndarray:
    """Pages per class by largest-remainder apportionment (sums exactly)."""
    targets = np.array([cls.page_fraction * n_pages
                        for cls in profile.sharing])
    sizes = np.floor(targets).astype(np.int64)
    remainder = n_pages - int(sizes.sum())
    if remainder:
        order = np.argsort(targets - sizes)[::-1]
        sizes[order[:remainder]] += 1
    if np.any(sizes == 0):
        raise ValueError(
            f"{profile.name}: a sharing class received zero pages; "
            "increase n_pages_sim"
        )
    return sizes


#: Pages per sharer-set block for narrowly shared classes: consecutive
#: pages of a producer/consumer buffer are shared by the *same* few
#: sockets, so sharer sets are drawn once per block. This is what keeps a
#: 512 KB migration region of a narrowly shared structure narrow, instead
#: of a per-page union that would make every region look like a vagabond.
SHARER_SET_BLOCK_PAGES = 128


def _draw_sharer_masks(cls_sharers: int, affinity: float, size: int,
                       n_sockets: int, sockets_per_chassis: int,
                       rng: np.random.Generator) -> np.ndarray:
    """Sharer sets of a class, optionally chassis-contained.

    Classes narrower than the pool-eligibility degree draw one sharer set
    per :data:`SHARER_SET_BLOCK_PAGES` consecutive pages; widely shared
    classes draw per page (their regions are wide either way).

    Because intra-class weights are rank-ordered (hot first), per-block
    set choice must cover sockets evenly or the class head would pile on
    a few sockets and skew every socket's shared-access rate. Private
    (one-sharer) pages are therefore contiguous per-socket chunks --
    every thread has its own equally hot private working set -- and
    narrow shared classes rotate their member sets deterministically
    across blocks.
    """
    masks = np.zeros(size, dtype=np.uint32)
    n_chassis = n_sockets // sockets_per_chassis
    if cls_sharers == 1:
        # One contiguous, equally sized chunk per socket: threads of the
        # same program have statistically identical private working sets.
        chunk = -(-size // n_sockets)
        sockets = np.minimum(np.arange(size) // chunk, n_sockets - 1)
        return (np.uint32(1) << sockets.astype(np.uint32)).astype(np.uint32)

    block = SHARER_SET_BLOCK_PAGES if cls_sharers < 8 else 1
    for block_index, start in enumerate(range(0, size, block)):
        contained = (cls_sharers <= sockets_per_chassis
                     and rng.random() < affinity)
        if contained:
            chassis = block_index % n_chassis
            base = chassis * sockets_per_chassis
            members = base + rng.choice(sockets_per_chassis,
                                        size=cls_sharers, replace=False)
        elif block > 1:
            # Deterministic rotation: consecutive hot blocks land on
            # disjoint-ish member sets, covering all sockets uniformly.
            first = (block_index * cls_sharers) % n_sockets
            members = (first + np.arange(cls_sharers)) % n_sockets
        else:
            members = rng.choice(n_sockets, size=cls_sharers, replace=False)
        mask = np.uint32(0)
        for member in members:
            mask |= np.uint32(1) << np.uint32(member)
        masks[start:start + block] = mask
    return masks


def _class_weights(access_fraction: float, size: int, skew: float,
                   shuffle: bool, rng: np.random.Generator,
                   segments: int = 1) -> np.ndarray:
    """Zipf-like weights within a class, normalized to its access share.

    Rank order is kept by default: hot pages of a data structure are
    spatially clustered (degree-sorted vertex arrays, B-tree upper levels),
    which is what makes 512 KB migration regions usefully skewed. Pass
    ``shuffle`` to destroy that spatial locality (the interleaved-layout
    ablation). With ``segments`` > 1 the skew restarts per equal segment
    (used for private classes: each socket's chunk has its own hot head).
    """
    if segments < 1:
        raise ValueError(f"segments must be >= 1, got {segments}")
    segment_size = -(-size // segments)
    ranks = (np.arange(size, dtype=np.float64) % segment_size) + 1.0
    raw = ranks ** -skew if skew > 0 else np.ones(size)
    if shuffle:
        rng.shuffle(raw)
    return access_fraction * raw / raw.sum()


def build_population(profile: WorkloadProfile, n_sockets: int = 16,
                     sockets_per_chassis: int = 4,
                     seed: int = 0,
                     layout: str = "interleaved") -> PagePopulation:
    """Materialize a page population for ``profile``.

    ``layout`` controls how page classes map onto the address space:
    ``"interleaved"`` (default) permutes pages so migration regions mix
    classes, as real heaps do; ``"clustered"`` keeps each class contiguous
    (used by the region-sizing ablation).
    """
    if layout not in ("interleaved", "clustered"):
        raise ValueError(f"unknown layout {layout!r}")
    if n_sockets % sockets_per_chassis:
        raise ValueError("n_sockets must be a multiple of sockets_per_chassis")
    for cls in profile.sharing:
        if cls.sharers > n_sockets:
            raise ValueError(
                f"{profile.name}: class with {cls.sharers} sharers exceeds "
                f"{n_sockets} sockets"
            )

    rng = np.random.default_rng(seed)
    n_pages = profile.n_pages_sim
    sizes = _class_sizes(profile, n_pages)

    masks = np.zeros(n_pages, dtype=np.uint32)
    weight = np.zeros(n_pages, dtype=np.float64)
    write_fraction = np.zeros(n_pages, dtype=np.float64)
    class_id = np.zeros(n_pages, dtype=np.int16)

    cursor = 0
    for index, (cls, size) in enumerate(zip(profile.sharing, sizes)):
        size = int(size)
        view = slice(cursor, cursor + size)
        masks[view] = _draw_sharer_masks(
            cls.sharers, cls.chassis_affinity, size, n_sockets,
            sockets_per_chassis, rng,
        )
        weight[view] = _class_weights(
            cls.access_fraction, size, profile.weight_skew,
            layout == "interleaved", rng,
            segments=n_sockets if cls.sharers == 1 else 1,
        )
        write_fraction[view] = cls.write_fraction
        class_id[view] = index
        cursor += size

    weight /= weight.sum()

    if layout == "interleaved":
        order = rng.permutation(n_pages)
        masks, weight = masks[order], weight[order]
        write_fraction, class_id = write_fraction[order], class_id[order]

    sharer_count = np.array(
        [bin(int(mask)).count("1") for mask in masks], dtype=np.int16
    )
    return PagePopulation(
        profile=profile,
        n_sockets=n_sockets,
        sockets_per_chassis=sockets_per_chassis,
        sharer_mask=masks,
        sharer_count=sharer_count,
        weight=weight,
        write_fraction=write_fraction,
        class_id=class_id,
    )
