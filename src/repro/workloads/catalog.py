"""The eight evaluated workloads (Section IV-E, Table III).

Sharing distributions follow the paper where published exactly (BFS from
Fig. 2: 17% single-sharer pages, 78% with four or fewer sharers, 7% with
more than eight; 68% of accesses to >8-sharer pages and 36% to pages
shared by all 16 sockets. TC from Fig. 13: 60% of the dataset touched by
all 16 sockets, 80% by 8+, mostly read-only). The remaining workloads
"fall in between BFS and TC in page access behavior" (Section V-F) and
are shaped from the application semantics the paper describes: Masstree
serves a uniform-popularity 50/50 read-write keyspace from every socket;
TPCC partitions by warehouse with hot cross-warehouse shared tables; FMI
walks a shared read-only index with substantial per-socket working sets
(only 47% of its migrations target the pool -- Table IV); POA is fully
NUMA-insensitive, with purely local accesses.
"""

from __future__ import annotations

from typing import Dict, List

from repro.workloads.profile import SharingClass, WorkloadProfile


def _bfs() -> WorkloadProfile:
    return WorkloadProfile(
        name="bfs", family="graph", footprint_gb=50.0,
        mpki=32.0, ipc_single=0.69, ipc_16=0.10,
        sharing=(
            SharingClass(1, 0.17, 0.10, write_fraction=0.20),
            SharingClass(3, 0.61, 0.12, write_fraction=0.20,
                         chassis_affinity=0.5),
            SharingClass(6, 0.15, 0.10, write_fraction=0.25),
            SharingClass(12, 0.05, 0.32, write_fraction=0.30),
            SharingClass(16, 0.02, 0.36, write_fraction=0.30),
        ),
        coupling=0.30,
    )


def _cc() -> WorkloadProfile:
    return WorkloadProfile(
        name="cc", family="graph", footprint_gb=50.0,
        mpki=17.0, ipc_single=0.78, ipc_16=0.14,
        sharing=(
            SharingClass(1, 0.20, 0.12, write_fraction=0.25),
            SharingClass(3, 0.55, 0.15, write_fraction=0.25,
                         chassis_affinity=0.5),
            SharingClass(6, 0.15, 0.18, write_fraction=0.25),
            SharingClass(12, 0.07, 0.25, write_fraction=0.30),
            SharingClass(16, 0.03, 0.30, write_fraction=0.30),
        ),
        coupling=0.25,
    )


def _sssp() -> WorkloadProfile:
    return WorkloadProfile(
        name="sssp", family="graph", footprint_gb=50.0,
        mpki=73.0, ipc_single=0.56, ipc_16=0.06,
        sharing=(
            SharingClass(1, 0.15, 0.08, write_fraction=0.20),
            SharingClass(3, 0.595, 0.14, write_fraction=0.20,
                         chassis_affinity=0.6),
            SharingClass(4, 0.18, 0.13, write_fraction=0.25,
                         chassis_affinity=0.5),
            SharingClass(12, 0.05, 0.30, write_fraction=0.25),
            SharingClass(16, 0.025, 0.35, write_fraction=0.25),
        ),
        coupling=0.20,
    )


def _tc() -> WorkloadProfile:
    return WorkloadProfile(
        name="tc", family="graph", footprint_gb=50.0,
        mpki=3.2, ipc_single=1.70, ipc_16=0.40,
        sharing=(
            SharingClass(1, 0.10, 0.05, write_fraction=0.10),
            SharingClass(4, 0.10, 0.05, write_fraction=0.05,
                         chassis_affinity=0.5),
            SharingClass(8, 0.20, 0.20, write_fraction=0.02),
            SharingClass(16, 0.60, 0.70, write_fraction=0.02),
        ),
        coupling=0.15,
        # Adjacency lists of a Kronecker graph are degree-sorted and the
        # triangle kernel's access density scales with degree^2, so the
        # shared read-only body is strongly front-loaded: the hot core
        # nearly fits even a socket-equivalent (1/17) pool (Fig. 12).
        weight_skew=0.95,
    )


def _masstree() -> WorkloadProfile:
    return WorkloadProfile(
        name="masstree", family="data-serving", footprint_gb=100.0,
        mpki=15.0, ipc_single=0.89, ipc_16=0.18,
        sharing=(
            # Uniform key popularity makes the *leaves* uniform, but every
            # lookup walks the B+-tree interior first: interior nodes are a
            # small, extremely hot, 16-shared set, while the leaf body is a
            # big flat vagabond region. A small private slice covers stacks
            # and connection state.
            SharingClass(1, 0.10, 0.05, write_fraction=0.30),
            SharingClass(16, 0.05, 0.55, write_fraction=0.45),   # interior
            SharingClass(16, 0.85, 0.40, write_fraction=0.50),   # leaves
        ),
        coupling=0.20,
        weight_skew=0.1,  # uniform popularity -> nearly flat within class
    )


def _tpcc() -> WorkloadProfile:
    return WorkloadProfile(
        name="tpcc", family="transactions", footprint_gb=12.0,
        mpki=4.8, ipc_single=1.12, ipc_16=0.41,
        sharing=(
            # Warehouse-partitioned rows are private; district/neighbor
            # traffic spans a couple of sockets; item/stock hot tables are
            # touched by every socket.
            SharingClass(1, 0.60, 0.40, write_fraction=0.40),
            SharingClass(2, 0.15, 0.10, write_fraction=0.40,
                         chassis_affinity=0.6),
            SharingClass(8, 0.19, 0.15, write_fraction=0.35),
            SharingClass(16, 0.06, 0.35, write_fraction=0.35),
        ),
        coupling=0.22,
        n_pages_sim=16384,
    )


def _fmi() -> WorkloadProfile:
    return WorkloadProfile(
        name="fmi", family="hpc", footprint_gb=10.0,
        mpki=2.6, ipc_single=1.45, ipc_16=0.61,
        sharing=(
            # FM-index queries: per-socket read batches are private, the
            # index is read-shared at mixed degrees; only about half of
            # the hot regions are wide enough for the pool (Table IV).
            SharingClass(1, 0.40, 0.25, write_fraction=0.15),
            SharingClass(4, 0.30, 0.25, write_fraction=0.05,
                         chassis_affinity=0.7),
            SharingClass(8, 0.18, 0.15, write_fraction=0.02),
            SharingClass(16, 0.12, 0.35, write_fraction=0.02),
        ),
        coupling=0.15,
        n_pages_sim=16384,
    )


def _poa() -> WorkloadProfile:
    return WorkloadProfile(
        name="poa", family="hpc", footprint_gb=10.0,
        mpki=33.0, ipc_single=0.68, ipc_16=0.68,
        sharing=(
            # Partial-order alignment is embarrassingly partitioned: first
            # touch makes every access local and nothing ever migrates.
            SharingClass(1, 1.0, 1.0, write_fraction=0.30),
        ),
        coupling=0.0,
        n_pages_sim=16384,
    )


def _build_catalog() -> Dict[str, WorkloadProfile]:
    profiles = [_sssp(), _bfs(), _cc(), _tc(), _masstree(), _tpcc(),
                _fmi(), _poa()]
    return {profile.name: profile for profile in profiles}


#: All evaluated workloads, keyed by name, in the paper's Table III order.
WORKLOADS: Dict[str, WorkloadProfile] = _build_catalog()


def get_workload(name: str) -> WorkloadProfile:
    """Look up one workload by name (case-insensitive)."""
    try:
        return WORKLOADS[name.lower()]
    except KeyError:
        known = ", ".join(sorted(WORKLOADS))
        raise KeyError(f"unknown workload {name!r}; known: {known}") from None


def all_workloads() -> List[WorkloadProfile]:
    """All profiles in catalog order."""
    return list(WORKLOADS.values())
