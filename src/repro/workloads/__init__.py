"""Workload models.

The paper traces eight applications with Pin on real hardware (Section
IV-E): four GAP graph kernels (BFS, CC, SSSP, TC), two GenomicsBench
pipelines (FMI, POA), the Masstree key-value store, and TPCC on Silo. We
have no Pin or target hardware, so each workload is modeled by a
:class:`WorkloadProfile` capturing the published structure that drives
every result in the paper:

* footprint, LLC MPKI, and the single-/16-socket IPC anchors (Table III);
* the page sharing-degree and access-concentration distributions (Fig. 2
  for BFS, Fig. 13 for TC, with the rest "falling in between");
* read/write composition of shared pages (Section V-F).

:func:`build_population` expands a profile into a concrete page population
(sharer sets, access weights, write fractions) from which the trace
synthesizer draws per-phase access counts.
"""

from repro.workloads.profile import SharingClass, WorkloadProfile
from repro.workloads.population import PagePopulation, build_population
from repro.workloads.catalog import (
    WORKLOADS,
    all_workloads,
    get_workload,
)

__all__ = [
    "PagePopulation",
    "SharingClass",
    "WORKLOADS",
    "WorkloadProfile",
    "all_workloads",
    "build_population",
    "get_workload",
]
