"""Cache substrate: the light-socket LLC filter of the methodology.

The mixed-modality simulation (Section IV-B) gives every "light" socket an
LLC-sized cache to filter its injected memory trace and to support
coherence modeling. This package provides that filter as a classic
set-associative write-back cache with LRU replacement, plus the statistics
(misses, evictions, writebacks) the rest of the pipeline consumes.
"""

from repro.cache.llc import CacheStats, SetAssociativeCache

__all__ = ["CacheStats", "SetAssociativeCache"]
