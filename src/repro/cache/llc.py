"""Set-associative write-back LLC with LRU replacement."""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.config.parameters import CACHE_BLOCK_BYTES


@dataclass
class CacheStats:
    """Hit/miss/writeback counters of one cache instance."""

    hits: int = 0
    misses: int = 0
    writebacks: int = 0
    evictions: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        if not self.accesses:
            return 0.0
        return self.misses / self.accesses

    @property
    def writeback_rate(self) -> float:
        """Writebacks per miss (the dirty-eviction traffic multiplier)."""
        if not self.misses:
            return 0.0
        return self.writebacks / self.misses


@dataclass
class AccessResult:
    """Outcome of one cache access."""

    hit: bool
    #: Block address written back to memory by the fill, if any.
    writeback_block: Optional[int] = None


class SetAssociativeCache:
    """A write-back, write-allocate, LRU set-associative cache.

    Addresses are byte addresses; the cache operates on aligned
    ``block_bytes`` blocks. Each set is an ``OrderedDict`` from tag to a
    dirty flag, with LRU order maintained by ``move_to_end``.
    """

    def __init__(self, capacity_bytes: int, ways: int,
                 block_bytes: int = CACHE_BLOCK_BYTES):
        if capacity_bytes <= 0 or ways <= 0 or block_bytes <= 0:
            raise ValueError("capacity, ways and block size must be positive")
        n_blocks = capacity_bytes // block_bytes
        if n_blocks < ways:
            raise ValueError(
                f"capacity {capacity_bytes} B holds {n_blocks} blocks, "
                f"fewer than {ways} ways"
            )
        self.block_bytes = block_bytes
        self.ways = ways
        self.n_sets = max(1, n_blocks // ways)
        self.stats = CacheStats()
        self._sets: List["OrderedDict[int, bool]"] = [
            OrderedDict() for _ in range(self.n_sets)
        ]

    @property
    def capacity_bytes(self) -> int:
        return self.n_sets * self.ways * self.block_bytes

    def _locate(self, address: int) -> Tuple[int, int]:
        block = address // self.block_bytes
        return block % self.n_sets, block

    def access(self, address: int, is_write: bool = False) -> AccessResult:
        """Access one address; return hit/miss and any writeback it caused."""
        set_index, tag = self._locate(address)
        cache_set = self._sets[set_index]
        if tag in cache_set:
            self.stats.hits += 1
            cache_set[tag] = cache_set[tag] or is_write
            cache_set.move_to_end(tag)
            return AccessResult(hit=True)

        self.stats.misses += 1
        writeback = None
        if len(cache_set) >= self.ways:
            victim_tag, victim_dirty = cache_set.popitem(last=False)
            self.stats.evictions += 1
            if victim_dirty:
                self.stats.writebacks += 1
                writeback = victim_tag * self.block_bytes
        cache_set[tag] = is_write
        return AccessResult(hit=False, writeback_block=writeback)

    def contains(self, address: int) -> bool:
        """True if the block holding ``address`` is cached (no LRU update)."""
        set_index, tag = self._locate(address)
        return tag in self._sets[set_index]

    def invalidate(self, address: int) -> bool:
        """Drop the block holding ``address``; return whether it was present.

        Dirty data is discarded silently -- the coherence model accounts
        for the transfer separately (the block moves to the requester, not
        to memory).
        """
        set_index, tag = self._locate(address)
        return self._sets[set_index].pop(tag, None) is not None

    def occupancy(self) -> int:
        """Number of valid blocks currently cached."""
        return sum(len(cache_set) for cache_set in self._sets)

    def reset_stats(self) -> None:
        self.stats = CacheStats()

    def flush(self) -> int:
        """Empty the cache; return the number of dirty blocks dropped."""
        dirty = 0
        for cache_set in self._sets:
            dirty += sum(1 for flag in cache_set.values() if flag)
            cache_set.clear()
        return dirty
