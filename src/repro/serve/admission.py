"""Admission control: overload degrades predictably, never into OOM.

The controller owns two numbers per the policy: a bounded submission
queue (jobs admitted but not yet running) and a per-client in-flight
cap (jobs queued or running per client identity). Every submission is
decided *before* any work is queued: a full queue or a capped client
is shed with 429 + ``Retry-After``, a draining server sheds with 503.
Decisions are counted (``serve.admit.*``) so overload behavior is
observable, and reservations are explicit so the accounting cannot
leak under crashes -- a job releases its slots exactly once, whatever
path it exits through.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.obs import OBS
from repro.serve.policy import ServePolicy


@dataclass(frozen=True)
class AdmissionDecision:
    """The verdict on one submission."""

    admitted: bool
    #: HTTP status to send when not admitted (429 or 503).
    status: int = 0
    #: One-line reason when not admitted.
    reason: str = ""
    #: Advisory retry delay for the shed response.
    retry_after_s: Optional[float] = None


class AdmissionController:
    """Bounded-queue and per-client accounting for submissions."""

    def __init__(self, policy: ServePolicy) -> None:
        self.policy = policy
        self._queued = 0
        self._inflight_by_client: Dict[str, int] = {}
        self.draining = False
        #: Totals, mirrored to obs counters.
        self.accepted = 0
        self.shed_queue_full = 0
        self.shed_client_cap = 0
        self.shed_draining = 0

    # -- decisions -----------------------------------------------------------

    def try_admit(self, client: str) -> AdmissionDecision:
        """Decide one submission; an admitted one MUST be released."""
        policy = self.policy
        if self.draining:
            self.shed_draining += 1
            OBS.counter("serve.admit.shed_draining")
            return AdmissionDecision(
                admitted=False, status=503,
                reason="server is draining; not accepting submissions",
                retry_after_s=policy.retry_after_s)
        if self._queued >= policy.max_queue:
            self.shed_queue_full += 1
            OBS.counter("serve.admit.shed_queue_full")
            return AdmissionDecision(
                admitted=False, status=429,
                reason=f"submission queue is full "
                       f"({policy.max_queue} waiting)",
                retry_after_s=policy.retry_after_s)
        inflight = self._inflight_by_client.get(client, 0)
        if inflight >= policy.max_inflight_per_client:
            self.shed_client_cap += 1
            OBS.counter("serve.admit.shed_client_cap")
            return AdmissionDecision(
                admitted=False, status=429,
                reason=f"client has {inflight} job(s) in flight "
                       f"(cap {policy.max_inflight_per_client})",
                retry_after_s=policy.retry_after_s)
        self._queued += 1
        self._inflight_by_client[client] = inflight + 1
        self.accepted += 1
        OBS.counter("serve.admit.accepted")
        return AdmissionDecision(admitted=True)

    # -- reservation lifecycle ----------------------------------------------

    def mark_running(self) -> None:
        """A queued job started running: its queue slot frees up."""
        if self._queued > 0:
            self._queued -= 1

    def release_client(self, client: str) -> None:
        """A client's job reached a terminal state."""
        count = self._inflight_by_client.get(client, 0)
        if count <= 1:
            self._inflight_by_client.pop(client, None)
        else:
            self._inflight_by_client[client] = count - 1

    def release_queued(self) -> None:
        """A job left the queue without ever starting (cancel/drain)."""
        self.mark_running()

    # -- introspection -------------------------------------------------------

    @property
    def queued(self) -> int:
        return self._queued

    def stats(self) -> Dict[str, object]:
        return {
            "queued": self._queued,
            "clients": len(self._inflight_by_client),
            "accepted": self.accepted,
            "shed_queue_full": self.shed_queue_full,
            "shed_client_cap": self.shed_client_cap,
            "shed_draining": self.shed_draining,
            "draining": self.draining,
        }
