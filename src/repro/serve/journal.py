"""The crash-safe job journal: fsynced write-ahead state records.

Every job state transition is appended as one JSON line and fsynced
before the transition takes effect anywhere a client could observe it
(the same discipline as the sweep checkpoint, in append-only form).
``serve --resume`` replays the journal after a SIGKILL and recovers
exactly what was durable:

* ``submitted``/``started`` jobs are re-adopted and run again (their
  work was lost with the process -- at-least-once execution, with the
  result cache collapsing any duplicate completion to one answer);
* ``completed`` jobs are never re-run -- the record carries the result
  payload, so even a cold cache serves them;
* ``quarantined`` jobs are never re-run and never re-charged: a poison
  job that killed its workers stays quarantined across restarts;
* ``cancelled`` jobs stay cancelled.

A SIGKILL can tear the *last* line mid-write; :func:`replay_journal`
tolerates exactly that (the torn tail is reported, not fatal) while a
torn record anywhere else -- impossible under append-only writes --
fails loudly. Unknown journal schemas are refused with a one-line
:class:`JournalError`.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

JOURNAL_SCHEMA_VERSION = 1

#: Legal ops, in the order a job may experience them.
OPS = ("submitted", "started", "completed", "failed", "cancelled",
       "quarantined")

#: Ops that end a job (nothing may follow except a fresh ``submitted``).
TERMINAL_OPS = frozenset({"completed", "failed", "cancelled",
                          "quarantined"})


class JournalError(RuntimeError):
    """A journal this version cannot safely interpret."""


@dataclass
class JobRecord:
    """The replayed state of one job."""

    job_id: str
    state: str
    key: str = ""
    scenario: Optional[Dict[str, object]] = None
    result: Optional[Dict[str, object]] = None
    error: Optional[str] = None
    strikes: int = 0
    starts: int = 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "job_id": self.job_id,
            "state": self.state,
            "key": self.key,
            "scenario": self.scenario,
            "result": self.result,
            "error": self.error,
            "strikes": self.strikes,
            "starts": self.starts,
        }


@dataclass
class JournalState:
    """Everything :func:`replay_journal` recovered."""

    jobs: Dict[str, JobRecord] = field(default_factory=dict)
    records: int = 0
    #: True when the final line was torn by a crash mid-write.
    torn_tail: bool = False

    def to_re_adopt(self) -> List[JobRecord]:
        """Jobs whose work was lost with the process (re-run these)."""
        return [record for record in self.jobs.values()
                if record.state in ("submitted", "started")]

    def snapshot(self) -> Dict[str, object]:
        """A deterministic dict of the whole state (for replay tests)."""
        return {
            "records": self.records,
            "torn_tail": self.torn_tail,
            "jobs": {job_id: record.to_dict()
                     for job_id, record in sorted(self.jobs.items())},
        }


class JobJournal:
    """Append-only writer; every record is flushed and fsynced."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self.path, "a", encoding="utf-8")
        self._seq = 0

    def append(self, op: str, job_id: str, **fields: object) -> None:
        """Durably record one transition before acting on it."""
        if op not in OPS:
            raise ValueError(f"unknown journal op {op!r}")
        self._seq += 1
        record: Dict[str, object] = {
            "schema": JOURNAL_SCHEMA_VERSION,
            "seq": self._seq,
            "op": op,
            "job": job_id,
        }
        record.update(fields)
        self._handle.write(json.dumps(record, sort_keys=True,
                                      separators=(",", ":")))
        self._handle.write("\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "JobJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def _apply(state: JournalState, record: Dict[str, object]) -> None:
    job_id = str(record.get("job"))
    op = str(record.get("op"))
    existing = state.jobs.get(job_id)
    if op == "submitted":
        # A fresh submission resets a previously failed/cancelled job;
        # quarantine is sticky -- poison is never re-charged.
        if existing is not None and existing.state == "quarantined":
            return
        state.jobs[job_id] = JobRecord(
            job_id=job_id, state="submitted",
            key=str(record.get("key", "")),
            scenario=record.get("scenario")  # type: ignore[arg-type]
            if isinstance(record.get("scenario"), dict) else None,
            strikes=existing.strikes if existing is not None else 0,
            starts=existing.starts if existing is not None else 0,
        )
        return
    if existing is None:
        # A transition for a job we never saw submitted: only possible
        # if an operator truncated the head; keep what we can.
        existing = JobRecord(job_id=job_id, state="submitted",
                             key=str(record.get("key", "")))
        state.jobs[job_id] = existing
    if existing.state == "quarantined":
        return  # sticky, whatever a torn-order record claims
    if op == "started":
        existing.state = "started"
        existing.starts += 1
        existing.strikes = int(record.get("strikes", existing.strikes))  # type: ignore[call-overload]
    elif op == "completed":
        existing.state = "completed"
        result = record.get("result")
        existing.result = result if isinstance(result, dict) else None
    elif op == "failed":
        existing.state = "failed"
        existing.error = str(record.get("error", "failed"))
    elif op == "cancelled":
        existing.state = "cancelled"
        existing.error = str(record.get("error", "cancelled"))
    elif op == "quarantined":
        existing.state = "quarantined"
        existing.error = str(record.get("error", "quarantined"))
        existing.strikes = int(record.get("strikes", existing.strikes))  # type: ignore[call-overload]


def replay_journal(path: Union[str, Path]) -> JournalState:
    """Reconstruct job state from a journal file (read-only).

    A missing file is an empty state. A torn *final* line (crash
    mid-append) is tolerated and reported via ``torn_tail``; any other
    malformed line, or a record with an unknown schema, raises
    :class:`JournalError` with a one-line message.
    """
    state = JournalState()
    journal_path = Path(path)
    if not journal_path.exists():
        return state
    raw = journal_path.read_bytes()
    if not raw:
        return state
    lines = raw.split(b"\n")
    # A well-formed journal ends with a newline, so the final split
    # element is empty; anything else is a torn tail.
    tail = lines.pop()
    if tail:
        state.torn_tail = True
    for index, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError):
            if index == len(lines) and not state.torn_tail:
                state.torn_tail = True
                continue
            raise JournalError(
                f"{journal_path}: malformed journal record on line "
                f"{index} (not at the tail; refusing to guess)") from None
        if not isinstance(record, dict):
            raise JournalError(
                f"{journal_path}: line {index} is not a JSON object")
        schema = record.get("schema")
        if schema != JOURNAL_SCHEMA_VERSION:
            raise JournalError(
                f"{journal_path}: journal schema {schema!r} on line "
                f"{index}; this version reads schema "
                f"{JOURNAL_SCHEMA_VERSION} only")
        _apply(state, record)
        state.records += 1
    return state
