"""The HTTP service: routing, streaming, drain, and resume.

`ServeApp` owns one :class:`~repro.serve.jobs.JobManager` plus the
asyncio socket server and maps the API onto it:

====================  ======================================================
``POST /v1/jobs``     Submit a scenario (same schema as ``starnuma run``).
                      201 queued, 200 cached/coalesced, 400 invalid,
                      409 quarantined, 429/503 shed (with Retry-After).
``GET /v1/jobs/I``    Job state; the result JSON once completed.
``GET /v1/jobs/I/events``  SSE progress stream (obs span/event records),
                      closing with a ``result`` frame. Followers of a
                      coalesced job attach here too.
``GET /healthz``      Liveness: 200 while the process serves at all.
``GET /readyz``       Readiness: 503 while draining or breaker-open.
``GET /v1/stats``     Counters for operators and the chaos harness.
====================  ======================================================

SIGTERM starts a graceful drain: new submissions are shed with 503,
in-flight jobs get ``drain_grace_s`` to finish (then are killed with
their journal records left resumable), SSE streams are closed with a
final frame, and the process exits. SIGKILL needs no cooperation: the
fsynced journal replays on ``serve --resume``.
"""

from __future__ import annotations

import asyncio
import os
import signal
import socket
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

from repro.obs import OBS
from repro.serve.admission import AdmissionController
from repro.serve.cache import ResultCache
from repro.serve.jobs import (AdmissionShed, Job, JobManager, JobState,
                              ScenarioRunner)
from repro.serve.journal import JobJournal, JournalState, replay_journal
from repro.serve.policy import ServePolicy
from repro.serve.protocol import (HttpError, HttpRequest, ReadLimits,
                                  Response, read_request, sse_preamble,
                                  write_response)
from repro.serve.scenario import (Catalog, ScenarioError, parse_scenario)
from repro.serve.sse import format_sse


class ServeApp:
    """One service instance: sockets in front, a job manager behind."""

    def __init__(self, *, run_scenario: ScenarioRunner, catalog: Catalog,
                 journal_path: Union[str, Path],
                 policy: Optional[ServePolicy] = None,
                 limits: Optional[ReadLimits] = None,
                 cache_dir: Optional[Union[str, Path]] = None,
                 git: Optional[str] = None, resume: bool = False,
                 host: str = "127.0.0.1", port: int = 0,
                 uds: Optional[Union[str, Path]] = None,
                 sse_keepalive_s: float = 1.0,
                 mp_context: Optional[object] = None) -> None:
        self.policy = policy or ServePolicy()
        self.limits = limits or ReadLimits()
        self.catalog = catalog
        self.host = host
        self.port = port
        self.uds = str(uds) if uds is not None else None
        self._sse_keepalive_s = sse_keepalive_s
        self.journal_path = Path(journal_path)

        replayed: Optional[JournalState] = None
        if resume:
            replayed = replay_journal(self.journal_path)
        elif self.journal_path.exists() \
                and self.journal_path.stat().st_size:
            # A fresh serve (no --resume) must not splice new records
            # into an old journal; keep the old one for forensics.
            os.replace(self.journal_path,
                       self.journal_path.with_suffix(
                           self.journal_path.suffix + ".prev"))

        self.cache = ResultCache(directory=cache_dir)
        self.admission = AdmissionController(self.policy)
        self.journal = JobJournal(self.journal_path)
        self.manager = JobManager(
            run_scenario=run_scenario, journal=self.journal,
            cache=self.cache, admission=self.admission,
            policy=self.policy, git=git, mp_context=mp_context)
        #: Populated when ``resume=True``: what the journal recovered.
        self.adopted: Optional[Dict[str, int]] = None
        if replayed is not None:
            self.adopted = self.manager.adopt(replayed)
            if replayed.torn_tail:
                OBS.counter("serve.journal.torn_tail")

        self._server: Optional[asyncio.AbstractServer] = None
        self._manager_task: Optional["asyncio.Task[None]"] = None
        self._shutdown = asyncio.Event()
        self._drained = False
        self.bound_port: Optional[int] = None

    # -- lifecycle -----------------------------------------------------------

    @property
    def address(self) -> str:
        if self.uds is not None:
            return f"unix:{self.uds}"
        return f"http://{self.host}:{self.bound_port or self.port}"

    def request_shutdown(self) -> None:
        """Begin a graceful drain (SIGTERM handler and test hook)."""
        self.admission.draining = True
        self._shutdown.set()

    async def start(self) -> None:
        """Bind the socket and start the supervision loop."""
        if self.uds is not None:
            try:
                # The service owns its socket path; a leftover file is
                # a previous instance that died without cleanup.
                os.unlink(self.uds)
            except FileNotFoundError:
                pass
            self._server = await asyncio.start_unix_server(
                self._on_connection, path=self.uds,
                limit=self.limits.max_header_bytes)
        else:
            self._server = await asyncio.start_server(
                self._on_connection, host=self.host, port=self.port,
                limit=self.limits.max_header_bytes)
            for sock in self._server.sockets or []:
                if sock.family in (socket.AF_INET, socket.AF_INET6):
                    self.bound_port = sock.getsockname()[1]
                    break
        self._manager_task = asyncio.create_task(self.manager.run())

    async def run(self) -> None:
        """Serve until a shutdown is requested, then drain and exit."""
        await self.start()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, self.request_shutdown)
            except (NotImplementedError, RuntimeError):
                pass
        try:
            await self._shutdown.wait()
            await self._drain()
        finally:
            await self._close()

    async def _drain(self) -> None:
        if self._drained:
            return
        self._drained = True
        OBS.event("serve.drain.begin",
                  running=self.manager.running(),
                  queued=self.admission.queued)
        await self.manager.drain(self.policy.drain_grace_s)
        OBS.event("serve.drain.end")

    async def _close(self) -> None:
        self.manager.stop()
        if self._manager_task is not None:
            try:
                await asyncio.wait_for(self._manager_task, 5.0)
            except asyncio.TimeoutError:  # pragma: no cover
                self._manager_task.cancel()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self.journal.close()
        if self.uds is not None:
            try:
                os.unlink(self.uds)
            except OSError:
                pass

    # -- connection handling -------------------------------------------------

    async def _on_connection(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        peer = writer.get_extra_info("peername")
        client = peer[0] if isinstance(peer, tuple) and peer else "local"
        try:
            try:
                request = await read_request(reader, self.limits, client)
            except HttpError as exc:
                await write_response(writer, Response.error(exc))
                return
            if request is None:
                return
            identity = request.header("x-client-id") or client
            request.client = identity
            try:
                await self._route(request, writer)
            except HttpError as exc:
                await write_response(writer, Response.error(exc))
            except (ConnectionResetError, BrokenPipeError):
                raise
            except Exception as exc:  # noqa: BLE001 -- keep serving
                OBS.event("serve.handler_error", error=repr(exc))
                await write_response(writer, Response.error(
                    HttpError(500, f"internal error: {exc}")))
        except (ConnectionResetError, BrokenPipeError):
            pass  # the client went away; nothing to tell it
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _route(self, request: HttpRequest,
                     writer: asyncio.StreamWriter) -> None:
        path, method = request.path, request.method
        if path == "/healthz":
            await self._respond_health(request, writer)
        elif path == "/readyz":
            await self._respond_ready(request, writer)
        elif path == "/v1/stats":
            await write_response(writer, Response.json(200, self.stats()))
        elif path == "/v1/jobs":
            if method != "POST":
                raise HttpError(405, f"{method} not allowed on {path}")
            await self._submit(request, writer)
        elif path.startswith("/v1/jobs/"):
            if method != "GET":
                raise HttpError(405, f"{method} not allowed on {path}")
            remainder = path[len("/v1/jobs/"):]
            if remainder.endswith("/events"):
                await self._stream(remainder[:-len("/events")], request,
                                   writer)
            else:
                await self._job_state(remainder, writer)
        else:
            raise HttpError(404, f"no route for {method} {path}")

    # -- endpoints -----------------------------------------------------------

    async def _respond_health(self, request: HttpRequest,
                              writer: asyncio.StreamWriter) -> None:
        payload = {
            "status": "ok",
            "draining": self.manager.draining or self.admission.draining,
            "breaker_open": self.manager.breaker_open,
            "max_heartbeat_age_s": round(
                self.manager.max_heartbeat_age_s(), 3),
        }
        await write_response(writer, Response.json(200, payload))

    async def _respond_ready(self, request: HttpRequest,
                             writer: asyncio.StreamWriter) -> None:
        draining = self.manager.draining or self.admission.draining
        if draining or self.manager.breaker_open:
            reason = ("draining" if draining
                      else "circuit breaker open after consecutive "
                           "worker losses")
            raise HttpError(503, f"not ready: {reason}",
                            retry_after_s=self.policy.retry_after_s)
        await write_response(writer,
                             Response.json(200, {"status": "ready"}))

    def _parse_deadline(self, payload: Dict[str, object]) -> float:
        raw = payload.get("deadline_s")
        if raw is None:
            return self.policy.default_deadline_s
        if isinstance(raw, bool) or not isinstance(raw, (int, float)):
            raise HttpError(400, f"deadline_s must be a number "
                                 f"(got {raw!r})")
        deadline = float(raw)
        if deadline <= 0:
            raise HttpError(400, f"deadline_s must be > 0 (got {raw!r})")
        if deadline > self.policy.max_deadline_s:
            raise HttpError(400, f"deadline_s {deadline:g} exceeds the "
                                 f"{self.policy.max_deadline_s:g}s cap")
        return deadline

    async def _submit(self, request: HttpRequest,
                      writer: asyncio.StreamWriter) -> None:
        payload = request.json()
        try:
            scenario = parse_scenario(payload, self.catalog)
        except ScenarioError as exc:
            raise HttpError(400, str(exc)) from None
        deadline_s = self._parse_deadline(payload)
        try:
            disposition, job = self.manager.submit(
                scenario, request.client, deadline_s)
        except AdmissionShed as shed:
            raise HttpError(shed.status, shed.reason,
                            retry_after_s=shed.retry_after_s) from None
        body = dict(job.public_state())
        body["disposition"] = disposition
        body["events"] = f"/v1/jobs/{job.job_id}/events"
        if disposition == "quarantined":
            raise HttpError(
                409, f"job {job.job_id} is quarantined as poisoned "
                     f"({job.error}); it will not be re-run")
        status = 201 if disposition == "accepted" else 200
        await write_response(writer, Response.json(status, body))

    async def _job_state(self, job_id: str,
                         writer: asyncio.StreamWriter) -> None:
        job = self.manager.jobs.get(job_id)
        if job is None:
            raise HttpError(404, f"unknown job {job_id!r}")
        self.manager.poll(job)
        await write_response(writer,
                             Response.json(200, job.public_state()))

    async def _stream(self, job_id: str, request: HttpRequest,
                      writer: asyncio.StreamWriter) -> None:
        job = self.manager.jobs.get(job_id)
        if job is None:
            raise HttpError(404, f"unknown job {job_id!r}")
        self.manager.watch(job)
        subscription = job.hub.subscribe()
        OBS.counter("serve.sse.attached")
        try:
            writer.write(sse_preamble())
            await writer.drain()
            while True:
                record = await subscription.next_record(
                    timeout_s=self._sse_keepalive_s)
                if record is None:
                    break
                if record.get("kind") == "keepalive":
                    # Comment frame: keeps the pipe honest so a dead
                    # client surfaces as a write error promptly.
                    writer.write(b": keepalive\n\n")
                else:
                    writer.write(format_sse(
                        record, event=str(record.get("kind", "record"))))
                await writer.drain()
            writer.write(format_sse(job.public_state(), event="result"))
            await writer.drain()
        finally:
            subscription.unsubscribe()
            self.manager.unwatch(job)

    # -- introspection -------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        payload = self.manager.stats()
        payload["cache"] = {
            "hits": self.cache.hits,
            "misses": self.cache.misses,
            "entries": self.cache.entries,
        }
        # Snapshot, not flush: reading the registry resets nothing, so
        # polling /v1/stats never perturbs the metrics it reports.
        payload["obs"] = {
            "metrics": OBS.metrics_snapshot(),
        }
        payload["address"] = self.address
        if self.adopted is not None:
            payload["adopted"] = dict(self.adopted)
        return payload


def serve_forever(app: ServeApp) -> None:
    """Blocking entry point used by ``starnuma serve``."""
    asyncio.run(app.run())
