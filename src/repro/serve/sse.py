"""Server-Sent Events: formatting and the per-job progress hub.

Each running job owns a :class:`ProgressHub`. The job's worker streams
obs span/event records home over its pipe; the manager publishes them
here; every attached SSE subscriber (the submitting leader and any
coalesced followers) reads its own bounded queue. Bounded is the
point: a subscriber that stops reading gets its *oldest* records
dropped (counted, observable) instead of growing server RSS without
limit. A short replay buffer lets followers who attach mid-run see
recent progress instead of joining blind.
"""

from __future__ import annotations

import asyncio
import json
from collections import deque
from typing import Deque, Dict, List, Optional

from repro.obs import OBS


def format_sse(data: Dict[str, object], *, event: Optional[str] = None,
               event_id: Optional[str] = None) -> bytes:
    """One SSE frame: optional event name/id, JSON data, blank line."""
    lines: List[str] = []
    if event is not None:
        lines.append(f"event: {event}")
    if event_id is not None:
        lines.append(f"id: {event_id}")
    payload = json.dumps(data, sort_keys=True, separators=(",", ":"))
    lines.append(f"data: {payload}")
    return ("\n".join(lines) + "\n\n").encode("utf-8")


class Subscription:
    """One subscriber's bounded view of a hub."""

    def __init__(self, hub: "ProgressHub", backlog: int) -> None:
        self._hub = hub
        self._queue: Deque[Dict[str, object]] = deque(maxlen=backlog)
        self._wakeup = asyncio.Event()
        #: Records this subscriber lost to its backlog bound.
        self.dropped = 0

    def _publish(self, record: Dict[str, object]) -> None:
        if len(self._queue) == self._queue.maxlen:
            self.dropped += 1
            OBS.counter("serve.sse.dropped")
        self._queue.append(record)
        self._wakeup.set()

    async def next_record(self,
                          timeout_s: Optional[float] = None,
                          ) -> Optional[Dict[str, object]]:
        """The next record; None once the hub is closed and drained.

        With ``timeout_s``, an idle wait returns a ``keepalive``
        record instead of blocking forever (SSE comment heartbeat).
        """
        while True:
            if self._queue:
                return self._queue.popleft()
            if self._hub.closed:
                return None
            self._wakeup.clear()
            if self._queue or self._hub.closed:
                continue  # published/closed between check and clear
            try:
                if timeout_s is None:
                    await self._wakeup.wait()
                else:
                    await asyncio.wait_for(self._wakeup.wait(), timeout_s)
            except asyncio.TimeoutError:
                return {"kind": "keepalive"}

    def unsubscribe(self) -> None:
        self._hub._drop(self)


class ProgressHub:
    """Fans one job's progress records out to live subscribers."""

    def __init__(self, *, backlog: int = 256, replay: int = 32) -> None:
        if backlog < 1:
            raise ValueError(f"backlog must be >= 1, got {backlog}")
        self._backlog = backlog
        self._replay: Deque[Dict[str, object]] = deque(maxlen=max(0,
                                                                  replay))
        self._subscribers: List[Subscription] = []
        self.closed = False

    def publish(self, record: Dict[str, object]) -> None:
        """Deliver one record to every subscriber (and the replay)."""
        if self.closed:
            return
        self._replay.append(record)
        for subscription in self._subscribers:
            subscription._publish(record)

    def subscribe(self) -> Subscription:
        """Attach; recent records are replayed into the new queue."""
        subscription = Subscription(self, self._backlog)
        for record in self._replay:
            subscription._publish(record)
        self._subscribers.append(subscription)
        return subscription

    def _drop(self, subscription: Subscription) -> None:
        try:
            self._subscribers.remove(subscription)
        except ValueError:
            pass

    def close(self, final: Optional[Dict[str, object]] = None) -> None:
        """Publish an optional final record, then wake everyone to EOF."""
        if self.closed:
            return
        if final is not None:
            self.publish(final)
        self.closed = True
        for subscription in self._subscribers:
            subscription._wakeup.set()

    @property
    def subscriber_count(self) -> int:
        return len(self._subscribers)
