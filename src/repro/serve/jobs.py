"""Job lifecycle: bounded queue -> supervised worker process -> result.

Each admitted submission becomes a :class:`Job`, content-addressed by
its scenario's cache key (the job id is a prefix of the key, so
identical submissions share one job -- the single-flight property is
structural, not best-effort). Jobs run one at a time per worker slot
in forked processes, supervised the same way the sweep pool is:

* the worker arms the scenario through a sequential
  :class:`~repro.runner.SweepRunner` whose ``timeout_s`` is the
  *remaining client deadline* -- deadline propagation end-to-end;
* obs span/event records stream home over the worker's pipe as they
  happen (via :class:`~repro.obs.CallbackSink`) and fan out to SSE
  subscribers through the job's :class:`~repro.serve.sse.ProgressHub`;
* every pipe message ticks the job's
  :class:`~repro.runner.HeartbeatBoard` slot; a silent worker past the
  heartbeat deadline is killed and the loss charged as a strike;
* a job that kills ``max_job_strikes`` workers is quarantined
  (journaled -- never re-run, even across server restarts);
* ``breaker_threshold`` consecutive worker losses open the circuit
  breaker: the service stops admitting and ``/readyz`` goes 503;
* a job nobody is watching (leader disconnected, no followers, past
  the linger window) is cancelled and its worker killed -- client
  disconnect cancels server-side work, but any attached follower keeps
  the job alive (crashed-leader promotion).

Journal ordering is strict write-ahead: the transition is fsynced
before any client-observable effect, so a SIGKILL between any two
lines resumes without lost, duplicated, or torn results.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import signal
import time
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import (Any, Callable, ContextManager, Deque, Dict, List,
                    Optional, Tuple)
from collections import deque

from repro.obs import OBS, CallbackSink
from repro.obs import configure as obs_configure
from repro.runner import HeartbeatBoard
from repro.serve.admission import AdmissionController
from repro.serve.cache import ResultCache, SingleFlight
from repro.serve.journal import JobJournal, JournalState
from repro.serve.policy import ServePolicy
from repro.serve.scenario import Scenario, cache_key
from repro.serve.sse import ProgressHub

#: Length of the cache-key prefix used as the job id. Identical
#: submissions map to the same id by construction.
JOB_ID_BYTES = 16

ScenarioRunner = Callable[[Scenario], Dict[str, object]]


class JobState:
    """String states of one job (journal ops use the same names)."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "completed"
    FAILED = "failed"
    CANCELLED = "cancelled"
    QUARANTINED = "quarantined"

    #: States from which a job never moves (except a fresh resubmit).
    TERMINAL = frozenset({DONE, FAILED, CANCELLED, QUARANTINED})


def job_id_of(key: str) -> str:
    return key[:JOB_ID_BYTES]


def scenario_from_dict(data: Dict[str, object]) -> Scenario:
    """Rebuild a Scenario from its journaled ``to_dict`` form."""
    workloads = data.get("workloads")
    return Scenario(
        experiment=str(data.get("experiment", "")),
        seed=int(data.get("seed", 1)),  # type: ignore[call-overload]
        phases=int(data.get("phases", 12)),  # type: ignore[call-overload]
        warmup=int(data.get("warmup", 4)),  # type: ignore[call-overload]
        workloads=tuple(str(name) for name in workloads)
        if isinstance(workloads, (list, tuple)) else None,
    )


@dataclass
class Job:
    """One content-addressed unit of work and its observable state."""

    job_id: str
    key: str
    scenario: Scenario
    client: str
    deadline_monotonic: float
    state: str = JobState.QUEUED
    strikes: int = 0
    watchers: int = 0
    #: When unwatched interest lapses (monotonic); None while watched.
    interest_deadline: Optional[float] = None
    result: Optional[Dict[str, object]] = None
    error: Optional[str] = None
    hub: ProgressHub = field(default_factory=ProgressHub)
    done: asyncio.Event = field(default_factory=asyncio.Event)

    def public_state(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "job": self.job_id,
            "key": self.key,
            "state": self.state,
            "scenario": self.scenario.to_dict(),
        }
        if self.result is not None:
            payload["result"] = self.result
        if self.error is not None:
            payload["error"] = self.error
        return payload


# -- worker side -------------------------------------------------------------

#: The scenario runner forked workers inherit (parked by the manager
#: right before each fork; callables travel by fork, not pickle).
_JOB_RUNNER: Optional[ScenarioRunner] = None

#: Worker-process state: how many workers this job already killed.
#: Written only inside the worker (the parent never rebinds it), so
#: both sides of the fork see a single writer.
_JOB_INCARNATION: int = 0
_IN_JOB_WORKER: bool = False


def in_job_worker() -> bool:
    """True inside a serve job worker process."""
    return _IN_JOB_WORKER


def job_incarnation() -> int:
    """How many workers the current job has already killed (0 first)."""
    return _JOB_INCARNATION


def _set_worker_state(incarnation: int) -> None:
    """Sole writer of the worker-side globals (fork-safety chokepoint)."""
    global _JOB_INCARNATION, _IN_JOB_WORKER
    _JOB_INCARNATION = incarnation
    _IN_JOB_WORKER = True


def _job_worker_main(job_id: str, scenario: Scenario,
                     timeout_s: Optional[float], conn: Any,
                     board: HeartbeatBoard, slot: int, incarnation: int,
                     max_retries: int, backoff_s: float) -> None:
    """One forked worker: run the scenario, stream obs, ship the result."""
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    if hasattr(signal, "SIGTERM"):
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
    _set_worker_state(incarnation)
    runner_fn = _JOB_RUNNER
    assert runner_fn is not None, "job worker forked without a runner"
    board.tick(slot)

    def forward(record: Dict[str, object]) -> None:
        # Every streamed record doubles as a liveness tick.
        board.tick(slot)
        conn.send(("obs", record))

    sink = CallbackSink(forward)
    streaming: ContextManager[object]
    if OBS.enabled:
        # Inherited an armed pipeline whose JSONL handle belongs to the
        # parent: redirect this process's records onto the pipe.
        streaming = OBS.redirect(sink)
    else:
        obs_configure(sink=sink)
        streaming = nullcontext()

    from repro.runner.sweep import SweepRunner

    runner = SweepRunner(
        lambda _task_id: runner_fn(scenario),
        timeout_s=timeout_s, max_retries=max_retries, backoff_s=backoff_s,
    )
    with streaming:
        outcome = runner.run([job_id])[0]
    if outcome.status == "ok":
        conn.send(("done", "ok", outcome.payload, None))
    else:
        failure = outcome.failure
        message = (f"{failure.error_type}: {failure.message}"
                   if failure is not None else "job failed")
        conn.send(("done", "failed", None, message))
    conn.close()


# -- parent side -------------------------------------------------------------


class _Slot:
    """Parent-side record of one worker slot."""

    def __init__(self, index: int) -> None:
        self.index = index
        self.job_id: Optional[str] = None
        self.process: Optional[Any] = None
        self.conn: Optional[Any] = None

    @property
    def busy(self) -> bool:
        return self.job_id is not None

    def close(self) -> None:
        if self.conn is not None:
            try:
                self.conn.close()
            except OSError:
                pass
            self.conn = None

    def kill(self) -> None:
        if self.process is not None and self.process.is_alive():
            self.process.kill()
            self.process.join(1.0)
        self.close()
        self.job_id = None
        self.process = None


class JobManager:
    """Owns the job table, the queue, and the worker slots."""

    def __init__(self, *, run_scenario: ScenarioRunner,
                 journal: JobJournal, cache: ResultCache,
                 admission: AdmissionController,
                 policy: Optional[ServePolicy] = None,
                 git: Optional[str] = None,
                 mp_context: Optional[Any] = None) -> None:
        self.policy = policy or ServePolicy()
        complaint = self.policy.validate()
        if complaint is not None:
            raise ValueError(complaint)
        self.run_scenario = run_scenario
        self.journal = journal
        self.cache = cache
        self.admission = admission
        self.singleflight = SingleFlight()
        self.git = git
        self.jobs: Dict[str, Job] = {}
        self._queue: Deque[str] = deque()
        self._ctx = mp_context or multiprocessing.get_context("fork")
        self.board = HeartbeatBoard.shared(self.policy.max_workers,
                                           self._ctx)
        self._slots = [_Slot(index)
                       for index in range(self.policy.max_workers)]
        self.breaker_open = False
        self._consecutive_losses = 0
        self.draining = False
        self._stopped = False
        #: Lifetime counters (also mirrored to obs).
        self.started = 0
        self.completed = 0
        self.failed = 0
        self.cancelled = 0
        self.quarantined = 0
        self.hangs = 0
        self.crashes = 0

    # -- submission ----------------------------------------------------------

    def submit(self, scenario: Scenario, client: str,
               deadline_s: float) -> Tuple[str, Job]:
        """Admit one submission; returns (disposition, job).

        Dispositions: ``cached`` (result served without work),
        ``coalesced`` (attached to a running identical job),
        ``accepted`` (new job queued), ``quarantined`` (the scenario
        previously poisoned workers; refused without work). Sheds by
        raising :class:`AdmissionShed`.
        """
        key = cache_key(scenario, git=self.git)
        job_id = job_id_of(key)
        existing = self.jobs.get(job_id)

        if existing is not None and existing.state == JobState.QUARANTINED:
            return "quarantined", existing

        cached = self.cache.get(key)
        if cached is not None:
            if existing is None or existing.state != JobState.DONE:
                existing = self._adopt_completed(job_id, key, scenario,
                                                 cached, client)
            return "cached", existing

        if existing is not None and existing.state in (JobState.QUEUED,
                                                       JobState.RUNNING):
            self.singleflight.coalesce(key)
            self._touch_interest(existing)
            return "coalesced", existing

        decision = self.admission.try_admit(client)
        if not decision.admitted:
            raise AdmissionShed(decision.status, decision.reason,
                                decision.retry_after_s)

        now = time.monotonic()
        job = Job(
            job_id=job_id, key=key, scenario=scenario, client=client,
            deadline_monotonic=now + deadline_s,
            interest_deadline=now + self.policy.linger_s,
            hub=ProgressHub(backlog=self.policy.sse_backlog),
        )
        if existing is not None:
            job.strikes = existing.strikes  # crash history is sticky
        self.journal.append("submitted", job_id, key=key,
                            scenario=scenario.to_dict(), client=client)
        self.jobs[job_id] = job
        self.singleflight.acquire(key, job_id)
        self._queue.append(job_id)
        OBS.counter("serve.jobs.submitted")
        return "accepted", job

    def _adopt_completed(self, job_id: str, key: str, scenario: Scenario,
                         result: Dict[str, object], client: str) -> Job:
        """Materialize a Job record for a cache-served submission."""
        job = Job(job_id=job_id, key=key, scenario=scenario,
                  client=client, deadline_monotonic=time.monotonic(),
                  state=JobState.DONE, result=result)
        job.hub.close()
        job.done.set()
        self.jobs[job_id] = job
        return job

    # -- interest (watchers) -------------------------------------------------

    def watch(self, job: Job) -> None:
        """A client attached to the job's stream (leader or follower)."""
        job.watchers += 1
        job.interest_deadline = None

    def unwatch(self, job: Job) -> None:
        """A client detached; the last one starts the linger clock."""
        job.watchers = max(0, job.watchers - 1)
        if job.watchers == 0 and job.state not in JobState.TERMINAL:
            job.interest_deadline = time.monotonic() + self.policy.linger_s

    def _touch_interest(self, job: Job) -> None:
        """A poll/submission proved somebody still cares."""
        if job.watchers == 0 and job.state not in JobState.TERMINAL:
            job.interest_deadline = time.monotonic() + self.policy.linger_s

    def poll(self, job: Job) -> None:
        """GET on a job refreshes its interest lease."""
        self._touch_interest(job)

    # -- resume --------------------------------------------------------------

    def adopt(self, state: JournalState) -> Dict[str, int]:
        """Re-adopt journaled jobs after a restart (before serving).

        Completed jobs come back served-from-journal (and re-warm the
        cache); quarantined jobs stay quarantined; submitted/started
        jobs are re-queued -- their work died with the old process.
        """
        adopted = {"completed": 0, "quarantined": 0, "requeued": 0,
                   "terminal": 0}
        now = time.monotonic()
        for record in sorted(state.jobs.values(),
                             key=lambda item: item.job_id):
            scenario = scenario_from_dict(record.scenario or {})
            job = Job(
                job_id=record.job_id, key=record.key, scenario=scenario,
                client="resume", deadline_monotonic=now
                + self.policy.default_deadline_s,
                strikes=record.strikes,
            )
            if record.state == "completed" and record.result is not None:
                job.state = JobState.DONE
                job.result = record.result
                job.hub.close()
                job.done.set()
                if not self.cache.contains(record.key):
                    self.cache.put(record.key, record.result)
                adopted["completed"] += 1
            elif record.state == "quarantined":
                job.state = JobState.QUARANTINED
                job.error = record.error or "quarantined"
                job.hub.close()
                job.done.set()
                adopted["quarantined"] += 1
            elif record.state in ("failed", "cancelled"):
                job.state = (JobState.FAILED if record.state == "failed"
                             else JobState.CANCELLED)
                job.error = record.error or record.state
                job.hub.close()
                job.done.set()
                adopted["terminal"] += 1
            else:  # submitted / started: the work was lost; run again
                job.state = JobState.QUEUED
                job.interest_deadline = (now
                                         + self.policy.default_deadline_s)
                job.hub = ProgressHub(backlog=self.policy.sse_backlog)
                self.singleflight.acquire(record.key, record.job_id)
                self._queue.append(record.job_id)
                adopted["requeued"] += 1
                OBS.counter("serve.jobs.readopted")
            self.jobs[record.job_id] = job
        return adopted

    # -- the supervision loop ------------------------------------------------

    async def run(self) -> None:
        """Assign, poll, and supervise until :meth:`stop` is called."""
        try:
            while not self._stopped:
                self._assign_free_slots()
                self._poll_slots()
                self._check_interest_and_deadlines()
                await asyncio.sleep(self.policy.poll_interval_s)
        finally:
            for slot in self._slots:
                slot.kill()

    def stop(self) -> None:
        self._stopped = True

    async def drain(self, grace_s: float) -> None:
        """Finish or checkpoint in-flight work, then stop supervising.

        Queued jobs stay journaled as ``submitted`` and workers that
        outlive the grace are killed with their jobs journaled as
        ``started`` -- both re-adopted by ``serve --resume``. Hubs are
        closed so attached SSE clients see a final ``serve.drain``
        event instead of a dead socket.
        """
        self.draining = True
        deadline = time.monotonic() + grace_s
        while any(slot.busy for slot in self._slots) \
                and time.monotonic() < deadline:
            self._poll_slots()
            await asyncio.sleep(self.policy.poll_interval_s)
        for slot in self._slots:
            if slot.busy:
                slot.kill()  # journal stays at "started": resumable
        for job in self.jobs.values():
            if not job.hub.closed:
                job.hub.close({"kind": "event", "name": "serve.drain",
                               "attrs": {"job": job.job_id,
                                         "state": job.state}})
        self.stop()
        OBS.counter("serve.drains")

    # -- slot machinery ------------------------------------------------------

    def _next_queued(self) -> Optional[Job]:
        while self._queue:
            job = self.jobs.get(self._queue.popleft())
            if job is not None and job.state == JobState.QUEUED:
                return job
        return None

    def _assign_free_slots(self) -> None:
        if self.draining or self.breaker_open:
            return
        for slot in self._slots:
            if slot.busy:
                continue
            job = self._next_queued()
            if job is None:
                return
            self._spawn(slot, job)

    def _spawn(self, slot: _Slot, job: Job) -> None:
        global _JOB_RUNNER
        now = time.monotonic()
        remaining = job.deadline_monotonic - now
        if remaining <= 0:
            self._finalize_failed(job, "deadline exceeded before start")
            return
        self.journal.append("started", job.job_id, key=job.key,
                            strikes=job.strikes)
        self.admission.mark_running()
        job.state = JobState.RUNNING
        self.started += 1
        OBS.counter("serve.jobs.started")
        self.board.reset(slot.index)
        recv_conn, send_conn = self._ctx.Pipe(duplex=False)
        _JOB_RUNNER = self.run_scenario
        try:
            process = self._ctx.Process(
                target=_job_worker_main,
                args=(job.job_id, job.scenario, remaining, send_conn,
                      self.board, slot.index, job.strikes,
                      self.policy.job_max_retries,
                      self.policy.job_backoff_s),
                daemon=True,
            )
            process.start()
        finally:
            _JOB_RUNNER = None
            send_conn.close()
        slot.job_id = job.job_id
        slot.process = process
        slot.conn = recv_conn

    def _poll_slots(self) -> None:
        max_age = 0.0
        for slot in self._slots:
            if not slot.busy:
                continue
            self._drain_pipe(slot)
            if not slot.busy:
                continue  # the pipe delivered the result
            job = self.jobs.get(slot.job_id or "")
            process = slot.process
            if job is None or process is None:  # pragma: no cover
                slot.kill()
                continue
            if not process.is_alive():
                self._drain_pipe(slot)
                if not slot.busy:
                    continue  # result arrived just before death
                self._worker_lost(slot, job, "crash")
                continue
            age = self.board.age_s(slot.index)
            max_age = max(max_age, age)
            if age > self.policy.heartbeat_timeout_s:
                slot.kill()
                self.hangs += 1
                OBS.counter("serve.hangs")
                self._worker_lost(slot, job, "hang")
        if OBS.enabled:
            OBS.gauge("serve.heartbeat_age_s", round(max_age, 6))

    def _drain_pipe(self, slot: _Slot) -> None:
        while slot.conn is not None:
            try:
                if not slot.conn.poll(0):
                    return
                message = slot.conn.recv()
            except (EOFError, OSError):
                slot.close()
                return
            self._on_message(slot, message)
            if not slot.busy:
                return

    def _on_message(self, slot: _Slot, message: Tuple[object, ...]) -> None:
        job = self.jobs.get(slot.job_id or "")
        if job is None:  # pragma: no cover -- defensive
            return
        kind = message[0]
        if kind == "obs":
            record = message[1]
            if isinstance(record, dict):
                record_kind = record.get("kind")
                if record_kind in ("span", "event"):
                    job.hub.publish(record)
                if OBS.enabled and record_kind in ("span", "event",
                                                   "metric"):
                    OBS.absorb(record)
            return
        if kind == "done":
            _, status, payload, error = message
            self._release_slot(slot)
            if status == "ok" and isinstance(payload, dict):
                self._finalize_ok(job, payload)
            else:
                self._finalize_failed(
                    job, str(error) if error else "job failed")

    def _release_slot(self, slot: _Slot) -> None:
        process = slot.process
        slot.job_id = None
        slot.close()
        if process is not None:
            process.join(1.0)
            if process.is_alive():
                process.kill()
                process.join(1.0)
        slot.process = None

    # -- outcomes ------------------------------------------------------------

    def _finalize_ok(self, job: Job, result: Dict[str, object]) -> None:
        self._consecutive_losses = 0
        # Durability order: cache first, then the journal's completed
        # record (which carries the result too) -- a crash between the
        # two re-runs the job, it never serves a torn result.
        self.cache.put(job.key, result)
        self.journal.append("completed", job.job_id, key=job.key,
                            result=result)
        job.state = JobState.DONE
        job.result = result
        self.completed += 1
        OBS.counter("serve.jobs.completed")
        self._settle(job, {"kind": "event", "name": "serve.job.done",
                           "attrs": {"job": job.job_id, "status": "ok"}})

    def _finalize_failed(self, job: Job, error: str) -> None:
        self._consecutive_losses = 0
        self.journal.append("failed", job.job_id, key=job.key, error=error)
        job.state = JobState.FAILED
        job.error = error
        self.failed += 1
        OBS.counter("serve.jobs.failed")
        self._settle(job, {"kind": "event", "name": "serve.job.done",
                           "attrs": {"job": job.job_id, "status": "failed",
                                     "error": error}})

    def _finalize_cancelled(self, job: Job, reason: str) -> None:
        self.journal.append("cancelled", job.job_id, key=job.key,
                            error=reason)
        job.state = JobState.CANCELLED
        job.error = reason
        self.cancelled += 1
        OBS.counter("serve.jobs.cancelled")
        self._settle(job, {"kind": "event", "name": "serve.job.done",
                           "attrs": {"job": job.job_id,
                                     "status": "cancelled"}})

    def _finalize_quarantined(self, job: Job, error: str) -> None:
        self.journal.append("quarantined", job.job_id, key=job.key,
                            error=error, strikes=job.strikes)
        job.state = JobState.QUARANTINED
        job.error = error
        self.quarantined += 1
        OBS.counter("serve.jobs.quarantined")
        self._settle(job, {"kind": "event", "name": "serve.job.done",
                           "attrs": {"job": job.job_id,
                                     "status": "quarantined"}})

    def _settle(self, job: Job, final: Dict[str, object]) -> None:
        self.singleflight.release(job.key, job.job_id)
        self.admission.release_client(job.client)
        job.hub.close(final)
        job.done.set()

    def _worker_lost(self, slot: _Slot, job: Job, kind: str) -> None:
        exitcode = (slot.process.exitcode
                    if slot.process is not None else None)
        self._release_slot(slot)
        if kind == "crash":
            self.crashes += 1
            OBS.counter("serve.crashes")
        job.strikes += 1
        self._consecutive_losses += 1
        OBS.event("serve.worker_lost", kind=kind, job=job.job_id,
                  exitcode=exitcode, strikes=job.strikes)
        if job.strikes >= self.policy.max_job_strikes:
            self._finalize_quarantined(
                job, f"job killed {job.strikes} worker(s) "
                     f"(last loss: {kind}); quarantined as poisoned")
        else:
            job.state = JobState.QUEUED
            self._queue.appendleft(job.job_id)
            OBS.counter("serve.jobs.requeued")
        if self._consecutive_losses >= self.policy.breaker_threshold \
                and not self.breaker_open:
            self.breaker_open = True
            self.admission.draining = True  # sheds new submissions
            OBS.counter("serve.breaker_trips")

    def _check_interest_and_deadlines(self) -> None:
        now = time.monotonic()
        for slot in self._slots:
            if not slot.busy:
                continue
            job = self.jobs.get(slot.job_id or "")
            if job is None:
                continue
            if now > job.deadline_monotonic + self.policy.deadline_slack_s:
                slot.kill()
                self._finalize_failed(job, "deadline exceeded")
                OBS.counter("serve.deadline_kills")
                continue
            if job.watchers == 0 and job.interest_deadline is not None \
                    and now > job.interest_deadline:
                slot.kill()
                self._finalize_cancelled(
                    job, "no client remained attached; work cancelled")
        for job_id in list(self._queue):
            job = self.jobs.get(job_id)
            if job is None or job.state != JobState.QUEUED:
                continue
            expired_interest = (job.watchers == 0
                                and job.interest_deadline is not None
                                and now > job.interest_deadline)
            past_deadline = now > job.deadline_monotonic
            if expired_interest or past_deadline:
                self.admission.release_queued()
                if past_deadline:
                    self._finalize_failed(job,
                                          "deadline exceeded in queue")
                else:
                    self._finalize_cancelled(
                        job, "no client remained attached; "
                             "submission cancelled")

    # -- introspection -------------------------------------------------------

    def running(self) -> int:
        return sum(1 for slot in self._slots if slot.busy)

    def max_heartbeat_age_s(self) -> float:
        ages = [self.board.age_s(slot.index) for slot in self._slots
                if slot.busy]
        return max(ages, default=0.0)

    def stats(self) -> Dict[str, object]:
        states: Dict[str, int] = {}
        for job in self.jobs.values():
            states[job.state] = states.get(job.state, 0) + 1
        return {
            "jobs": states,
            "queued": len([job_id for job_id in self._queue
                           if (job := self.jobs.get(job_id)) is not None
                           and job.state == JobState.QUEUED]),
            "running": self.running(),
            "started": self.started,
            "completed": self.completed,
            "failed": self.failed,
            "cancelled": self.cancelled,
            "quarantined": self.quarantined,
            "crashes": self.crashes,
            "hangs": self.hangs,
            "coalesced": self.singleflight.coalesced,
            "breaker_open": self.breaker_open,
            "consecutive_losses": self._consecutive_losses,
            "draining": self.draining,
            "admission": self.admission.stats(),
        }


class AdmissionShed(Exception):
    """A submission was shed; carries the HTTP mapping."""

    def __init__(self, status: int, reason: str,
                 retry_after_s: Optional[float]) -> None:
        self.status = status
        self.reason = reason
        self.retry_after_s = retry_after_s
        super().__init__(reason)
