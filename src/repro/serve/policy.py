"""The service's knobs, validated once at startup.

One frozen dataclass so every layer (admission, jobs, app, chaos)
reads the same numbers, and a bad flag dies with a one-line error
before the socket ever opens.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class ServePolicy:
    """How the service behaves under load, faults, and shutdown."""

    #: Concurrent job worker processes.
    max_workers: int = 2
    #: Bounded submission queue: jobs admitted but not yet running.
    max_queue: int = 16
    #: Per-client cap on jobs queued or running at once.
    max_inflight_per_client: int = 4
    #: Advisory Retry-After seconds sent with 429/503 shedding.
    retry_after_s: float = 1.0
    #: Deadline applied when a submission names none.
    default_deadline_s: float = 300.0
    #: Ceiling on any requested deadline.
    max_deadline_s: float = 3600.0
    #: How long a job survives with no interested client before the
    #: server cancels its work (covers submit-then-vanish clients).
    linger_s: float = 10.0
    #: Parent poll cadence for worker pipes, health, and deadlines.
    poll_interval_s: float = 0.05
    #: Kill a job worker whose heartbeat is older than this.
    heartbeat_timeout_s: float = 30.0
    #: Worker losses (crash or hang) one job survives before it is
    #: quarantined as poisoned (mirrors the sweep supervisor).
    max_job_strikes: int = 2
    #: Consecutive worker losses before the service stops admitting.
    breaker_threshold: int = 5
    #: Grace given to in-flight jobs on SIGTERM before workers are
    #: killed and the (journaled, resumable) server exits.
    drain_grace_s: float = 5.0
    #: Per-subscriber SSE backlog bound (records; oldest dropped).
    sse_backlog: int = 256
    #: Extra slack past a job's deadline before the parent kills the
    #: worker (the worker-side SIGALRM should fire first).
    deadline_slack_s: float = 2.0
    #: Retry budget for transient errors inside one job worker.
    job_max_retries: int = 2
    #: Base backoff between in-worker retries.
    job_backoff_s: float = 0.1

    def validate(self) -> Optional[str]:
        """One-line complaint for an invalid policy, else None."""
        positive = (
            "max_workers", "max_queue", "max_inflight_per_client",
            "retry_after_s", "default_deadline_s", "max_deadline_s",
            "poll_interval_s", "heartbeat_timeout_s", "max_job_strikes",
            "breaker_threshold", "sse_backlog",
        )
        for name in positive:
            value = getattr(self, name)
            if value <= 0:
                return f"{name} must be > 0 (got {value})"
        for name in ("linger_s", "drain_grace_s", "deadline_slack_s",
                     "job_max_retries", "job_backoff_s"):
            value = getattr(self, name)
            if value < 0:
                return f"{name} must be >= 0 (got {value})"
        if self.default_deadline_s > self.max_deadline_s:
            return (f"default_deadline_s ({self.default_deadline_s}) "
                    f"exceeds max_deadline_s ({self.max_deadline_s})")
        return None
