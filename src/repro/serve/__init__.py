"""``repro.serve``: fault-tolerant simulation-as-a-service.

``starnuma serve`` promotes the supervised sweep substrate
(:mod:`repro.runner`) into a long-lived asyncio HTTP service: clients
POST scenario submissions and get back a job id, streamed progress
(SSE backed by :mod:`repro.obs` span records), and the result JSON.
Robustness is threaded through every layer:

* **admission control & backpressure** (:mod:`repro.serve.admission`):
  a bounded submission queue with load shedding (429 + ``Retry-After``)
  and per-client in-flight caps, so overload degrades predictably;
* **deadlines end-to-end** (:mod:`repro.serve.jobs`): every request
  carries a deadline that propagates into the job worker's
  :class:`~repro.runner.SweepRunner` timeout, and server-side work is
  cancelled when no client remains interested;
* **content-addressed result cache with single-flight dedup**
  (:mod:`repro.serve.cache`): the scenario fingerprint (mirroring the
  export manifest v2) hashes into a cache key; repeats are served from
  cache, and concurrent identical submissions coalesce onto one
  running job;
* **crash-safe job journal** (:mod:`repro.serve.journal`): fsynced
  write-ahead records so ``serve --resume`` after SIGKILL re-adopts
  running jobs, never re-runs completed ones, and never re-runs
  quarantined poison jobs;
* **health & drain** (:mod:`repro.serve.app`): ``/healthz`` and
  ``/readyz`` backed by the worker :class:`~repro.runner.HeartbeatBoard`
  and circuit-breaker state, plus graceful SIGTERM drain.

The layering contract allows ``repro.serve`` to import ``config``,
``obs``, and ``runner`` only; the CLI injects the experiment catalog
and scenario runner, so the service machinery never touches the
simulator directly. See ``docs/serve.md``.
"""

from repro.serve.admission import AdmissionController, AdmissionDecision
from repro.serve.app import ServeApp
from repro.serve.cache import ResultCache, SingleFlight
from repro.serve.chaos import ServeChaosConfig, ServeChaosReport, \
    run_serve_chaos
from repro.serve.journal import JobJournal, JournalError, replay_journal
from repro.serve.jobs import AdmissionShed, Job, JobManager, JobState
from repro.serve.policy import ServePolicy
from repro.serve.protocol import HttpError, ReadLimits
from repro.serve.scenario import (
    Catalog,
    Scenario,
    ScenarioError,
    cache_key,
    fingerprint,
    parse_scenario,
    validate_run_params,
)
from repro.serve.sse import ProgressHub, format_sse

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "AdmissionShed",
    "Catalog",
    "HttpError",
    "Job",
    "JobJournal",
    "JobManager",
    "JobState",
    "JournalError",
    "ProgressHub",
    "ReadLimits",
    "ResultCache",
    "Scenario",
    "ScenarioError",
    "ServeApp",
    "ServeChaosConfig",
    "ServeChaosReport",
    "ServePolicy",
    "SingleFlight",
    "cache_key",
    "fingerprint",
    "format_sse",
    "parse_scenario",
    "replay_journal",
    "run_serve_chaos",
    "validate_run_params",
]
