"""Service-layer chaos: prove the API holds its invariants under fire.

The sweep-level harness (:mod:`repro.runner.chaos`) attacks the worker
pool; this one attacks the *service*. A real ``ServeApp`` runs in a
forked child on a Unix domain socket with a synthetic catalog, and the
driver injects the faults a hostile network delivers:

* clients that disconnect mid-SSE-stream;
* slow-loris connections that trickle headers forever;
* scenarios whose worker crashes on every attempt (poison);
* scenarios that overrun their deadline;
* ``kill -9`` of the whole server **between journal writes** (a
  counting journal wrapper SIGKILLs the process after the Nth fsynced
  append -- the worst possible torn state), followed by
  ``serve --resume``;
* an overload burst against a full queue;
* a final SIGTERM drain with work still in flight.

The report fails if any scenario's result is lost, duplicated, or not
byte-identical to the fault-free expectation; if a completed job is
ever re-run after resume; if a poison job escapes quarantine or is
re-charged; if overload is not shed with 429 promptly; or if the
journal fails to replay. All injection points are seeded and
deterministic (:func:`~repro.runner.chaos.chaos_fraction`).
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
import os
import signal
import socket
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.obs import OBS
from repro.obs.sinks import JsonlSink
from repro.runner.chaos import CRASH_EXIT_CODE, chaos_fraction
from repro.serve.app import ServeApp
from repro.serve.journal import JobJournal, JournalError, replay_journal
from repro.serve.policy import ServePolicy
from repro.serve.protocol import ReadLimits
from repro.serve.scenario import Catalog, Scenario, cache_key

#: The synthetic deployment the chaos server exposes.
CHAOS_EXPERIMENTS = ("steady", "poison", "slow")
CHAOS_WORKLOADS = ("alpha", "beta", "gamma")


def serve_chaos_payload(scenario: Scenario) -> Dict[str, object]:
    """The fault-free result of one chaos scenario (computable offline)."""
    return {
        "experiment": scenario.experiment,
        "seed": scenario.seed,
        "phases": scenario.phases,
        "value": round(chaos_fraction("serve-payload", scenario.experiment,
                                      scenario.seed, scenario.phases), 12),
    }


def _make_chaos_runner(task_sleep_s: float,
                       slow_sleep_s: float) -> Callable[[Scenario],
                                                        Dict[str, object]]:
    """The scenario runner the chaos server injects (runs in workers)."""

    def run(scenario: Scenario) -> Dict[str, object]:
        if scenario.experiment == "poison":
            os._exit(CRASH_EXIT_CODE)  # crashes the worker every attempt
        with OBS.span("serve.chaos.work", experiment=scenario.experiment,
                      seed=scenario.seed):
            if scenario.experiment == "slow":
                time.sleep(slow_sleep_s)
            else:
                time.sleep(task_sleep_s
                           * (0.5 + chaos_fraction("work", scenario.seed)))
        return serve_chaos_payload(scenario)

    return run


@dataclass(frozen=True)
class ServeChaosConfig:
    """Shape of one seeded service soak."""

    seed: int = 1
    #: Steady scenarios submitted in phase 1 (before the SIGKILL).
    n_scenarios: int = 8
    #: How many of those are immediately re-submitted (single-flight).
    duplicates: int = 3
    #: Overload burst size in phase 2 (against queue=4, workers=2).
    burst: int = 12
    #: SIGKILL the server after this many journal appends; derived
    #: from the seed when None.
    kill_after_appends: Optional[int] = None
    #: Per-steady-scenario work duration scale.
    task_sleep_s: float = 0.15
    #: How long the deadline-overrun scenario tries to sleep.
    slow_sleep_s: float = 3.0
    #: The deadline given to that scenario (must be << slow_sleep_s).
    slow_deadline_s: float = 1.0
    #: Soak budget; exceeding it is itself a failure.
    max_wall_s: float = 120.0

    def validate(self) -> Optional[str]:
        """One-line complaint for an invalid configuration, else None."""
        if self.n_scenarios < 2:
            return f"n_scenarios must be >= 2, got {self.n_scenarios}"
        if not 0 <= self.duplicates <= self.n_scenarios:
            return (f"duplicates must be in [0, n_scenarios], "
                    f"got {self.duplicates}")
        if self.burst < 1:
            return f"burst must be >= 1, got {self.burst}"
        if self.kill_after_appends is not None \
                and self.kill_after_appends < 1:
            return (f"kill_after_appends must be >= 1, "
                    f"got {self.kill_after_appends}")
        if self.slow_deadline_s >= self.slow_sleep_s:
            return (f"slow_deadline_s ({self.slow_deadline_s}) must be "
                    f"< slow_sleep_s ({self.slow_sleep_s})")
        if self.max_wall_s <= 0:
            return f"max_wall_s must be > 0, got {self.max_wall_s}"
        return None


@dataclass
class ServeChaosReport:
    """What one service soak did, and whether it held the line."""

    seed: int
    n_scenarios: int
    wall_s: float
    kill_after_appends: int
    counts: Dict[str, int] = field(default_factory=dict)
    adopted: Dict[str, int] = field(default_factory=dict)
    problems: List[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.problems

    def to_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "n_scenarios": self.n_scenarios,
            "wall_s": round(self.wall_s, 3),
            "kill_after_appends": self.kill_after_appends,
            "counts": dict(self.counts),
            "adopted": dict(self.adopted),
            "problems": list(self.problems),
            "passed": self.passed,
        }


# -- the server child --------------------------------------------------------


class _KillingJournal(JobJournal):
    """A journal that SIGKILLs its own process after the Nth append.

    The append (flush + fsync) completes first, so the kill lands
    exactly *between* journal writes -- the torn state ``--resume``
    must recover from.
    """

    def __init__(self, path: Union[str, Path], kill_after: int) -> None:
        super().__init__(path)
        self._kill_after = kill_after
        self._appends = 0

    def append(self, op: str, job_id: str, **fields: object) -> None:
        super().append(op, job_id, **fields)
        self._appends += 1
        if self._appends >= self._kill_after:
            os.kill(os.getpid(), signal.SIGKILL)


def _chaos_policy() -> ServePolicy:
    return ServePolicy(
        max_workers=2, max_queue=4, max_inflight_per_client=64,
        default_deadline_s=60.0, linger_s=30.0, poll_interval_s=0.02,
        heartbeat_timeout_s=5.0, max_job_strikes=2, breaker_threshold=50,
        drain_grace_s=10.0, deadline_slack_s=1.0, job_max_retries=0,
        job_backoff_s=0.01,
    )


def _chaos_limits() -> ReadLimits:
    # A short header budget so the slow-loris probe resolves quickly.
    return ReadLimits(header_timeout_s=0.75, body_timeout_s=2.0)


def _server_main(uds: str, journal_path: str, cache_dir: str,
                 resume: bool, kill_after: Optional[int],
                 obs_path: Optional[str], task_sleep_s: float,
                 slow_sleep_s: float) -> None:
    """Entry point of the forked chaos server process."""
    catalog = Catalog.of(CHAOS_EXPERIMENTS, CHAOS_WORKLOADS)
    app = ServeApp(
        run_scenario=_make_chaos_runner(task_sleep_s, slow_sleep_s),
        catalog=catalog, journal_path=journal_path, cache_dir=cache_dir,
        resume=resume, uds=uds, policy=_chaos_policy(),
        limits=_chaos_limits(), sse_keepalive_s=0.25,
    )
    if kill_after is not None:
        app.journal.close()
        journal = _KillingJournal(journal_path, kill_after)
        app.journal = journal
        app.manager.journal = journal
    if OBS.enabled and obs_path is not None:
        # The child inherited the parent's armed pipeline (and its
        # JSONL handle); stream this process's records to its own file.
        with OBS.redirect(JsonlSink(obs_path)):
            asyncio.run(app.run())
    else:
        asyncio.run(app.run())


class _ServerHandle:
    """The driver's grip on one chaos server process."""

    def __init__(self, base: Path, *, resume: bool,
                 kill_after: Optional[int], config: ServeChaosConfig,
                 tag: str) -> None:
        self.uds = str(base / "serve.sock")
        context = multiprocessing.get_context("fork")
        self.process = context.Process(
            target=_server_main,
            args=(self.uds, str(base / "journal.jsonl"),
                  str(base / "cache"), resume, kill_after,
                  str(base / f"serve-obs-{tag}.jsonl"),
                  config.task_sleep_s, config.slow_sleep_s),
            # Not daemonic: the server forks its own job workers.
            daemon=False,
        )
        self.process.start()

    def wait_ready(self, timeout_s: float = 15.0) -> bool:
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            status, _headers, _body = _request(self.uds, "GET", "/healthz",
                                               timeout_s=2.0)
            if status == 200:
                return True
            if not self.process.is_alive():
                return False
            time.sleep(0.05)
        return False

    def wait_dead(self, timeout_s: float) -> bool:
        self.process.join(timeout_s)
        return not self.process.is_alive()

    def sigterm(self) -> None:
        if self.process.is_alive() and self.process.pid is not None:
            os.kill(self.process.pid, signal.SIGTERM)

    def sigkill(self) -> None:
        if self.process.is_alive():
            self.process.kill()
            self.process.join(5.0)


# -- the driver's hand-rolled UDS HTTP client --------------------------------


def _request(uds: str, method: str, path: str,
             body: Optional[Dict[str, object]] = None,
             client_id: str = "chaos-driver", timeout_s: float = 10.0,
             ) -> Tuple[Optional[int], Dict[str, str],
                        Optional[Dict[str, object]]]:
    """One request over the socket; (None, {}, None) if the server is
    unreachable or dies mid-exchange (the soak keeps going)."""
    payload = b""
    head = f"{method} {path} HTTP/1.1\r\nHost: serve\r\n" \
           f"X-Client-Id: {client_id}\r\n"
    if body is not None:
        payload = json.dumps(body).encode("utf-8")
        head += f"Content-Type: application/json\r\n" \
                f"Content-Length: {len(payload)}\r\n"
    head += "\r\n"
    raw = b""
    try:
        with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
            sock.settimeout(timeout_s)
            sock.connect(uds)
            sock.sendall(head.encode("latin-1") + payload)
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                raw += chunk
    except OSError:
        return None, {}, None
    return _parse_response(raw)


def _parse_response(raw: bytes) -> Tuple[Optional[int], Dict[str, str],
                                         Optional[Dict[str, object]]]:
    if not raw or b"\r\n\r\n" not in raw:
        return None, {}, None
    head, _, rest = raw.partition(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ", 2)
    try:
        status = int(parts[1])
    except (IndexError, ValueError):
        return None, {}, None
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        name, separator, value = line.partition(":")
        if separator:
            headers[name.strip().lower()] = value.strip()
    try:
        parsed = json.loads(rest.decode("utf-8")) if rest.strip() else None
    except (json.JSONDecodeError, UnicodeDecodeError):
        parsed = None
    return status, headers, parsed if isinstance(parsed, dict) else None


def _read_sse(uds: str, job_id: str, *,
              disconnect_after: Optional[int] = None,
              timeout_s: float = 30.0,
              ) -> List[Tuple[str, Dict[str, object]]]:
    """Attach to a job's stream; return (event, data) frames seen.

    With ``disconnect_after``, hang up mid-stream after that many
    frames -- the client-disconnect injection. Otherwise read until
    the server closes after its ``result`` frame.
    """
    request = (f"GET /v1/jobs/{job_id}/events HTTP/1.1\r\n"
               f"Host: serve\r\nX-Client-Id: chaos-sse\r\n\r\n")
    frames: List[Tuple[str, Dict[str, object]]] = []
    buffer = b""
    try:
        with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
            sock.settimeout(timeout_s)
            sock.connect(uds)
            sock.sendall(request.encode("latin-1"))
            preamble_seen = False
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                buffer += chunk
                if not preamble_seen:
                    if b"\r\n\r\n" not in buffer:
                        continue
                    _, _, buffer = buffer.partition(b"\r\n\r\n")
                    preamble_seen = True
                while b"\n\n" in buffer:
                    frame, _, buffer = buffer.partition(b"\n\n")
                    parsed = _parse_sse_frame(frame)
                    if parsed is not None:
                        frames.append(parsed)
                    if disconnect_after is not None \
                            and len(frames) >= disconnect_after:
                        return frames  # hang up mid-stream
                if frames and frames[-1][0] == "result":
                    return frames
    except OSError:
        pass
    return frames


def _parse_sse_frame(frame: bytes,
                     ) -> Optional[Tuple[str, Dict[str, object]]]:
    event, data = "message", None
    for line in frame.decode("utf-8", "replace").splitlines():
        if line.startswith("event: "):
            event = line[len("event: "):]
        elif line.startswith("data: "):
            try:
                loaded = json.loads(line[len("data: "):])
            except json.JSONDecodeError:
                continue
            if isinstance(loaded, dict):
                data = loaded
    if data is None:
        return None  # comment/keepalive frame
    return event, data


def _slowloris_probe(uds: str, timeout_s: float = 5.0) -> Optional[int]:
    """Trickle half a request and report how the server disposes of us."""
    try:
        with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
            sock.settimeout(timeout_s)
            sock.connect(uds)
            sock.sendall(b"POST /v1/jobs HTTP/1.1\r\nHost: serve\r\n")
            # ... and never finish the headers.
            raw = b""
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                raw += chunk
    except OSError:
        return None
    status, _headers, _body = _parse_response(raw)
    return status


# -- the soak ----------------------------------------------------------------


def _steady(config: ServeChaosConfig, index: int) -> Scenario:
    return Scenario(experiment="steady",
                    seed=config.seed * 1000 + index, phases=6, warmup=2)


def _burst_scenario(config: ServeChaosConfig, index: int) -> Scenario:
    return Scenario(experiment="steady",
                    seed=config.seed * 1000 + 500 + index,
                    phases=6, warmup=2)


def _submit_with_retry(uds: str, body: Dict[str, object],
                       timeout_s: float = 30.0, client_id: str
                       = "chaos-driver",
                       ) -> Tuple[Optional[int], Dict[str, str],
                                  Optional[Dict[str, object]]]:
    """Submit, honouring 429/503 backpressure until ``timeout_s``."""
    deadline = time.monotonic() + timeout_s
    while True:
        status, headers, parsed = _request(uds, "POST", "/v1/jobs", body,
                                           client_id=client_id)
        if status not in (429, 503) or time.monotonic() > deadline:
            return status, headers, parsed
        retry_after = headers.get("retry-after", "1")
        try:
            pause = min(float(retry_after), 1.0)
        except ValueError:
            pause = 0.2
        time.sleep(max(0.05, pause))


def _wait_terminal(uds: str, job_id: str, timeout_s: float,
                   ) -> Optional[Dict[str, object]]:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        status, _headers, body = _request(uds, "GET", f"/v1/jobs/{job_id}")
        if status == 200 and body is not None \
                and body.get("state") in ("completed", "failed",
                                          "cancelled", "quarantined"):
            return body
        time.sleep(0.05)
    return None


def run_serve_chaos(config: Optional[ServeChaosConfig] = None, *,
                    out_dir: Optional[str] = None,
                    on_event: Optional[Callable[[str], None]] = None,
                    ) -> ServeChaosReport:
    """One seeded service soak; returns a report of every invariant."""
    config = config or ServeChaosConfig()
    complaint = config.validate()
    if complaint is not None:
        raise ValueError(complaint)
    emit = on_event or (lambda message: None)
    base = Path(out_dir) if out_dir is not None \
        else Path(tempfile.mkdtemp(prefix="starnuma-serve-chaos-"))
    base.mkdir(parents=True, exist_ok=True)
    journal_path = base / "journal.jsonl"

    kill_after = config.kill_after_appends
    if kill_after is None:
        kill_after = 4 + int(chaos_fraction("serve-kill-after",
                                            config.seed) * 8)

    steady = [_steady(config, index)
              for index in range(config.n_scenarios)]
    poison = Scenario(experiment="poison", seed=config.seed, phases=6,
                      warmup=2)
    slow = Scenario(experiment="slow", seed=config.seed, phases=6,
                    warmup=2)
    expected = {cache_key(scenario, git="chaos"): json.dumps(
        serve_chaos_payload(scenario), sort_keys=True)
        for scenario in steady}

    problems: List[str] = []
    counts: Dict[str, int] = {
        "phase1_submitted": 0, "phase1_coalesced": 0, "sigkills": 0,
        "completed_verified": 0, "cached_repeats": 0, "sheds": 0,
        "sse_frames": 0, "sse_disconnects": 0, "journal_records": 0,
    }
    adopted: Dict[str, int] = {}
    started = time.monotonic()
    # The servers and the driver must agree on the git component of
    # every cache key, whatever CI environment variables say.
    previous_git = {name: os.environ.get(name)
                    for name in ("STARNUMA_GIT_DESCRIBE", "GITHUB_SHA")}
    os.environ["STARNUMA_GIT_DESCRIBE"] = "chaos"
    os.environ.pop("GITHUB_SHA", None)

    try:
        _soak(config, base, journal_path, kill_after, steady, poison,
              slow, expected, problems, counts, adopted, emit)
    finally:
        for name, value in previous_git.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value

    wall_s = time.monotonic() - started
    if wall_s > config.max_wall_s:
        problems.append(f"soak took {wall_s:.1f}s "
                        f"(budget {config.max_wall_s:.1f}s)")
    report = ServeChaosReport(
        seed=config.seed, n_scenarios=config.n_scenarios, wall_s=wall_s,
        kill_after_appends=kill_after, counts=counts, adopted=adopted,
        problems=problems,
    )
    (base / "serve-chaos-report.json").write_text(
        json.dumps(report.to_dict(), indent=2, sort_keys=True) + "\n")
    return report


def _soak(config: ServeChaosConfig, base: Path, journal_path: Path,
          kill_after: int, steady: List[Scenario], poison: Scenario,
          slow: Scenario, expected: Dict[str, str],
          problems: List[str], counts: Dict[str, int],
          adopted: Dict[str, int], emit: Callable[[str], None]) -> None:
    # ---- phase 1: submit under fire until the SIGKILL lands ----------------
    emit(f"phase 1: fresh server, SIGKILL after {kill_after} "
         f"journal appends")
    server = _ServerHandle(base, resume=False, kill_after=kill_after,
                           config=config, tag="phase1")
    if not server.wait_ready():
        problems.append("phase 1 server never became ready")
        server.sigkill()
        return
    uds = server.uds

    _request(uds, "POST", "/v1/jobs", dict(poison.to_dict(),
                                           deadline_s=30))
    first_job: Optional[str] = None
    for index, scenario in enumerate(steady):
        status, _headers, body = _request(uds, "POST", "/v1/jobs",
                                          scenario.to_dict())
        if status is None:
            break  # the SIGKILL landed; phase 2 picks everything up
        if status in (200, 201) and body is not None:
            counts["phase1_submitted"] += 1
            if first_job is None:
                first_job = str(body.get("job"))
            if index < config.duplicates:
                dup_status, _dup_headers, dup_body = _request(
                    uds, "POST", "/v1/jobs", scenario.to_dict())
                if dup_status == 200 and dup_body is not None \
                        and dup_body.get("disposition") in ("coalesced",
                                                            "cached"):
                    counts["phase1_coalesced"] += 1
        elif status not in (429, 503):
            problems.append(
                f"phase 1 submission returned unexpected {status}")
    if first_job is not None:
        # A client that attaches to the stream and vanishes mid-job.
        frames = _read_sse(uds, first_job, disconnect_after=1,
                           timeout_s=5.0)
        counts["sse_disconnects"] += 1
        counts["sse_frames"] += len(frames)
    loris = _slowloris_probe(uds)
    if loris not in (408, None):
        problems.append(f"slow-loris got {loris}, expected 408 "
                        f"or disconnect")
    if not server.wait_dead(timeout_s=30.0):
        # The batch finished under the kill threshold; land the
        # SIGKILL ourselves so resume still faces a cold stop.
        server.sigkill()
    counts["sigkills"] += 1
    emit("phase 1 server is down (SIGKILL)")

    # ---- the journal must replay, torn tail and all ------------------------
    try:
        replayed = replay_journal(journal_path)
        counts["journal_records"] = replayed.records
    except JournalError as exc:
        problems.append(f"journal replay after SIGKILL failed: {exc}")
        return

    # ---- phase 2: resume, finish everything, verify byte-for-byte ----------
    emit("phase 2: serve --resume")
    server = _ServerHandle(base, resume=True, kill_after=None,
                           config=config, tag="phase2")
    if not server.wait_ready():
        problems.append("resumed server never became ready")
        server.sigkill()
        return
    uds = server.uds
    _status, _headers, stats = _request(uds, "GET", "/v1/stats")
    if stats is not None and isinstance(stats.get("adopted"), dict):
        adopted.update({key: int(value) for key, value
                        in stats["adopted"].items()})

    # Every steady scenario must complete exactly once with the
    # fault-free payload, whether it was journaled, half-run, or new.
    job_ids: Dict[str, str] = {}
    for scenario in steady:
        status, _headers, body = _submit_with_retry(uds,
                                                    scenario.to_dict())
        if status in (200, 201) and body is not None:
            job_ids[cache_key(scenario, git="chaos")] = str(body["job"])
        else:
            problems.append(
                f"phase 2 resubmit of steady seed={scenario.seed} "
                f"got {status}")
    for key, job_id in job_ids.items():
        body = _wait_terminal(uds, job_id, timeout_s=60.0)
        if body is None:
            problems.append(f"job {job_id} never reached a terminal "
                            f"state after resume")
            continue
        if body.get("state") != "completed":
            problems.append(f"job {job_id} ended {body.get('state')!r}, "
                            f"expected completed")
            continue
        got = json.dumps(body.get("result"), sort_keys=True)
        if got != expected[key]:
            problems.append(f"job {job_id}: result diverged from the "
                            f"fault-free expectation")
        else:
            counts["completed_verified"] += 1

    # Repeats of completed work must be served from cache, running
    # nothing: the manager's started counter must not move.
    _status, _headers, stats_before = _request(uds, "GET", "/v1/stats")
    for scenario in steady:
        status, _headers, body = _request(uds, "POST", "/v1/jobs",
                                          scenario.to_dict())
        if status == 200 and body is not None \
                and body.get("disposition") == "cached":
            counts["cached_repeats"] += 1
        else:
            problems.append(
                f"repeat of completed seed={scenario.seed} was not "
                f"served from cache (status {status})")
    _status, _headers, stats_after = _request(uds, "GET", "/v1/stats")
    if stats_before is not None and stats_after is not None \
            and stats_after.get("started") != stats_before.get("started"):
        problems.append(
            f"cache repeats started new work: started went "
            f"{stats_before.get('started')} -> "
            f"{stats_after.get('started')}")

    # Single-flight on a brand-new scenario: second submission while
    # the first still runs must coalesce, not double-run.
    fresh = Scenario(experiment="steady",
                     seed=config.seed * 1000 + 900, phases=6, warmup=2)
    status_a, _h, body_a = _request(uds, "POST", "/v1/jobs",
                                    fresh.to_dict())
    status_b, _h, body_b = _request(uds, "POST", "/v1/jobs",
                                    fresh.to_dict())
    if status_a != 201:
        problems.append(f"fresh scenario submission got {status_a}")
    if status_b != 200 or body_b is None \
            or body_b.get("disposition") not in ("coalesced", "cached"):
        problems.append("concurrent identical submission was not "
                        "coalesced or cached")
    if body_a is not None:
        follower = _read_sse(uds, str(body_a["job"]), timeout_s=30.0)
        counts["sse_frames"] += len(follower)
        if not follower or follower[-1][0] != "result":
            problems.append("SSE stream did not end with a result frame")
        elif follower[-1][1].get("state") != "completed":
            problems.append("SSE result frame was not 'completed'")

    # Poison must end quarantined and stay that way.
    status, _headers, body = _submit_with_retry(
        uds, dict(poison.to_dict(), deadline_s=30))
    if status in (200, 201) and body is not None:
        terminal = _wait_terminal(uds, str(body["job"]), timeout_s=60.0)
        if terminal is None or terminal.get("state") != "quarantined":
            problems.append(
                f"poison job ended "
                f"{terminal.get('state') if terminal else 'nowhere'!r}, "
                f"expected quarantined")
    elif status != 409:
        problems.append(f"poison resubmission got {status}")
    status, _headers, _body = _request(uds, "POST", "/v1/jobs",
                                       dict(poison.to_dict(),
                                            deadline_s=30))
    if status != 409:
        problems.append(f"quarantined poison was re-admitted "
                        f"(status {status}); quarantine must be sticky")

    # Deadline overrun must fail, not hang.
    status, _headers, body = _submit_with_retry(
        uds, dict(slow.to_dict(), deadline_s=config.slow_deadline_s))
    if status == 201 and body is not None:
        terminal = _wait_terminal(uds, str(body["job"]),
                                  timeout_s=config.slow_sleep_s + 20.0)
        if terminal is None or terminal.get("state") != "failed":
            problems.append("deadline-overrun job did not fail")
    else:
        problems.append(f"slow scenario submission got {status}")

    # Overload burst: with queue=4 and workers=2, a rapid burst of
    # distinct scenarios must shed promptly with 429 + Retry-After.
    shed_latency = 0.0
    burst_jobs: List[str] = []
    for index in range(config.burst):
        scenario = _burst_scenario(config, index)
        t0 = time.monotonic()
        status, headers, body = _request(uds, "POST", "/v1/jobs",
                                         scenario.to_dict(),
                                         client_id="chaos-burst")
        elapsed = time.monotonic() - t0
        if status == 429:
            counts["sheds"] += 1
            shed_latency = max(shed_latency, elapsed)
            if "retry-after" not in headers:
                problems.append("429 shed carried no Retry-After")
        elif status == 201 and body is not None:
            burst_jobs.append(str(body["job"]))
    if counts["sheds"] == 0:
        problems.append(
            f"burst of {config.burst} against queue=4/workers=2 "
            f"was never shed with 429")
    elif shed_latency > 1.0:
        problems.append(f"shed responses took up to {shed_latency:.2f}s; "
                        f"load shedding must be immediate")
    for job_id in burst_jobs:
        body = _wait_terminal(uds, job_id, timeout_s=60.0)
        if body is None or body.get("state") != "completed":
            problems.append(f"burst job {job_id} did not complete")

    # Oversized body is refused before buffering.
    status = _oversize_probe(uds)
    if status != 413:
        problems.append(f"oversized body got {status}, expected 413")

    # ---- phase 3: SIGTERM drain with work in flight ------------------------
    emit("phase 3: SIGTERM drain")
    parked = Scenario(experiment="steady",
                      seed=config.seed * 1000 + 950, phases=6, warmup=2)
    _request(uds, "POST", "/v1/jobs", parked.to_dict())
    server.sigterm()
    shed_503 = False
    deadline = time.monotonic() + 5.0
    while time.monotonic() < deadline:
        status, _headers, _body = _request(
            uds, "POST", "/v1/jobs",
            _burst_scenario(config, 990).to_dict(), timeout_s=2.0)
        if status == 503:
            shed_503 = True
            break
        if status is None:
            break  # already fully down; acceptably fast drain
        time.sleep(0.05)
    if not server.wait_dead(timeout_s=_chaos_policy().drain_grace_s
                            + 15.0):
        problems.append("server did not exit after SIGTERM drain")
        server.sigkill()
    elif server.process.exitcode != 0:
        problems.append(f"drained server exited "
                        f"{server.process.exitcode}, expected 0")
    if not shed_503:
        emit("note: drain finished before a 503 could be observed")

    # The final journal must still replay cleanly end-to-end.
    try:
        final = replay_journal(journal_path)
        counts["journal_records"] = final.records
        for record in final.jobs.values():
            if record.state not in ("completed", "failed", "cancelled",
                                    "quarantined", "submitted", "started"):
                problems.append(f"journal replayed impossible state "
                                f"{record.state!r}")
    except JournalError as exc:
        problems.append(f"final journal replay failed: {exc}")


def _oversize_probe(uds: str) -> Optional[int]:
    """Declare a huge body; the server must refuse before reading it."""
    limits = _chaos_limits()
    head = (f"POST /v1/jobs HTTP/1.1\r\nHost: serve\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {limits.max_body_bytes * 64}\r\n\r\n")
    try:
        with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
            sock.settimeout(5.0)
            sock.connect(uds)
            sock.sendall(head.encode("latin-1"))
            raw = b""
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                raw += chunk
    except OSError:
        return None
    status, _headers, _body = _parse_response(raw)
    return status
