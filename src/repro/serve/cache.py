"""Content-addressed result cache and single-flight coalescing.

The cache maps a scenario's :func:`~repro.serve.scenario.cache_key`
(sha256 of the manifest-v2 fingerprint: config, git, seed...) to its
result JSON. Repeat submissions are answered from here in microseconds
without touching the worker pool. Entries live in memory and,
optionally, in a directory of ``<key>.json`` files written with the
same fsync-then-rename discipline as the sweep checkpoint, so a
SIGKILLed server never leaves a torn cache entry under a final name.

:class:`SingleFlight` is the companion table for results that do not
exist *yet*: the first submission of a key becomes the leader and
runs; concurrent identical submissions attach to the leader's job
instead of spawning duplicate work (obs counter
``serve.singleflight.coalesced``).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Optional, Union

from repro.obs import OBS


class ResultCache:
    """Memory-first, optionally disk-backed, content-addressed store."""

    def __init__(self, directory: Optional[Union[str, Path]] = None,
                 max_memory_entries: int = 4096) -> None:
        if max_memory_entries < 1:
            raise ValueError(
                f"max_memory_entries must be >= 1, "
                f"got {max_memory_entries}")
        self._memory: Dict[str, Dict[str, object]] = {}
        self._max_memory = max_memory_entries
        self._directory = Path(directory) if directory is not None else None
        if self._directory is not None:
            self._directory.mkdir(parents=True, exist_ok=True)
        #: Lifetime lookup totals (also mirrored to obs counters).
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def _path(self, key: str) -> Optional[Path]:
        if self._directory is None:
            return None
        return self._directory / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, object]]:
        """The cached result for ``key``, or None (counts hit/miss)."""
        entry = self._memory.get(key)
        if entry is None:
            entry = self._load_disk(key)
        if entry is None:
            self.misses += 1
            OBS.counter("serve.cache.miss")
            return None
        self.hits += 1
        OBS.counter("serve.cache.hit")
        return entry

    def contains(self, key: str) -> bool:
        """Presence probe without touching the hit/miss counters."""
        if key in self._memory:
            return True
        path = self._path(key)
        return path is not None and path.exists()

    def put(self, key: str, result: Dict[str, object]) -> None:
        """Store a result under its content address (crash-safe)."""
        if len(self._memory) >= self._max_memory \
                and key not in self._memory:
            # Bounded memory: evict an arbitrary (oldest-inserted)
            # entry; the disk copy, when configured, still serves it.
            self._memory.pop(next(iter(self._memory)))
        self._memory[key] = result
        path = self._path(key)
        if path is None:
            return
        temporary = path.with_suffix(".json.tmp")
        with open(temporary, "w") as handle:
            handle.write(json.dumps(result, sort_keys=True))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temporary, path)
        self.stores += 1
        OBS.counter("serve.cache.store")

    def _load_disk(self, key: str) -> Optional[Dict[str, object]]:
        path = self._path(key)
        if path is None or not path.exists():
            return None
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None  # a torn entry is impossible post-rename; a
            # hand-damaged one simply misses
        if not isinstance(data, dict):
            return None
        self._memory[key] = data
        return data

    @property
    def entries(self) -> int:
        """In-memory entry count (the disk set may be larger)."""
        return len(self._memory)

    def __len__(self) -> int:
        return len(self._memory)


class SingleFlight:
    """Which job currently leads each in-flight cache key."""

    def __init__(self) -> None:
        self._leaders: Dict[str, str] = {}
        #: Total submissions coalesced onto an existing leader.
        self.coalesced = 0

    def leader_of(self, key: str) -> Optional[str]:
        return self._leaders.get(key)

    def acquire(self, key: str, job_id: str) -> bool:
        """Claim leadership of ``key``; False if someone already leads."""
        if key in self._leaders:
            return False
        self._leaders[key] = job_id
        return True

    def coalesce(self, key: str) -> Optional[str]:
        """Attach to the leader of ``key`` (counted), or None."""
        leader = self._leaders.get(key)
        if leader is not None:
            self.coalesced += 1
            OBS.counter("serve.singleflight.coalesced")
        return leader

    def release(self, key: str, job_id: str) -> None:
        """Drop leadership (job finished, failed, or was cancelled)."""
        if self._leaders.get(key) == job_id:
            del self._leaders[key]

    def __len__(self) -> int:
        return len(self._leaders)
