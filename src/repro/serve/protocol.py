"""Hand-rolled HTTP/1.1 over asyncio streams -- no new runtime deps.

The service speaks just enough HTTP for its API: request-line +
headers + optional ``Content-Length`` body in, status + headers + body
out, plus SSE streaming. Robustness lives in the *limits*: header and
body reads are bounded in both bytes and wall-clock time, so a
slow-loris submitter is disconnected with 408 instead of pinning a
connection forever, and an oversized body is refused with 413 before
it is buffered -- server RSS stays bounded no matter what clients do.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple
from urllib.parse import parse_qsl, unquote, urlsplit

#: Reason phrases for every status the service emits.
REASONS = {
    200: "OK",
    201: "Created",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    409: "Conflict",
    410: "Gone",
    411: "Length Required",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
}


@dataclass(frozen=True)
class ReadLimits:
    """Byte and wall-clock bounds on reading one request."""

    #: Maximum bytes of request line + headers.
    max_header_bytes: int = 16384
    #: Maximum bytes of request body (scenario JSONs are tiny).
    max_body_bytes: int = 65536
    #: Wall-clock budget for the header block to arrive complete.
    header_timeout_s: float = 5.0
    #: Wall-clock budget for the declared body to arrive complete.
    body_timeout_s: float = 10.0


class HttpError(Exception):
    """A request-level failure mapped straight to a response."""

    def __init__(self, status: int, detail: str,
                 retry_after_s: Optional[float] = None) -> None:
        self.status = status
        self.detail = detail
        self.retry_after_s = retry_after_s
        super().__init__(f"{status} {REASONS.get(status, '')}: {detail}")


@dataclass
class HttpRequest:
    """One parsed request."""

    method: str
    target: str
    path: str
    query: Dict[str, str]
    headers: Dict[str, str]
    body: bytes = b""
    client: str = "?"

    def header(self, name: str, default: str = "") -> str:
        return self.headers.get(name.lower(), default)

    def json(self) -> Dict[str, object]:
        """The body as a JSON object; :class:`HttpError` 400 otherwise."""
        if not self.body:
            raise HttpError(400, "request body is empty; expected JSON")
        try:
            data = json.loads(self.body.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise HttpError(400, f"request body is not valid JSON: {exc}") \
                from None
        if not isinstance(data, dict):
            raise HttpError(400, "request body must be a JSON object")
        return data


@dataclass
class Response:
    """One response, rendered by :func:`write_response`."""

    status: int
    body: bytes = b""
    content_type: str = "application/json"
    headers: Tuple[Tuple[str, str], ...] = field(default_factory=tuple)

    @classmethod
    def json(cls, status: int, payload: Dict[str, object],
             headers: Tuple[Tuple[str, str], ...] = ()) -> "Response":
        body = (json.dumps(payload, sort_keys=True) + "\n").encode()
        return cls(status=status, body=body, headers=headers)

    @classmethod
    def error(cls, exc: HttpError) -> "Response":
        headers: Tuple[Tuple[str, str], ...] = ()
        if exc.retry_after_s is not None:
            headers = (("Retry-After",
                        str(max(1, int(round(exc.retry_after_s))))),)
        return cls.json(exc.status,
                        {"error": REASONS.get(exc.status, "error"),
                         "detail": exc.detail},
                        headers=headers)


async def read_request(reader: asyncio.StreamReader,
                       limits: ReadLimits,
                       client: str = "?") -> Optional[HttpRequest]:
    """Read one request; None on a clean EOF before any bytes arrive.

    Raises :class:`HttpError` for oversized headers/bodies (431/413),
    slow arrivals (408), missing lengths on bodied methods (411), and
    malformed syntax (400). The caller maps those to responses.
    """
    try:
        raw_header = await asyncio.wait_for(
            reader.readuntil(b"\r\n\r\n"), timeout=limits.header_timeout_s)
    except asyncio.TimeoutError:
        raise HttpError(
            408, "request headers did not arrive within "
                 f"{limits.header_timeout_s:.0f}s") from None
    except asyncio.LimitOverrunError:
        raise HttpError(431, "request headers exceed "
                             f"{limits.max_header_bytes} bytes") from None
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean EOF between requests
        raise HttpError(400, "connection closed mid-headers") from None
    if len(raw_header) > limits.max_header_bytes:
        raise HttpError(431, "request headers exceed "
                             f"{limits.max_header_bytes} bytes")

    try:
        header_text = raw_header.decode("latin-1")
    except UnicodeDecodeError:  # pragma: no cover -- latin-1 never fails
        raise HttpError(400, "undecodable request headers") from None
    lines = header_text.split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, f"malformed request line: {lines[0]!r}")
    method, target, _version = parts

    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, separator, value = line.partition(":")
        if not separator:
            raise HttpError(400, f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()

    if "chunked" in headers.get("transfer-encoding", "").lower():
        raise HttpError(501, "chunked request bodies are not supported; "
                             "send Content-Length")

    body = b""
    declared = headers.get("content-length")
    if declared is not None:
        try:
            length = int(declared)
        except ValueError:
            raise HttpError(400,
                            f"bad Content-Length: {declared!r}") from None
        if length < 0:
            raise HttpError(400, f"bad Content-Length: {declared!r}")
        if length > limits.max_body_bytes:
            # Refuse *before* buffering: bounded RSS under overload.
            raise HttpError(413, f"request body of {length} bytes exceeds "
                                 f"the {limits.max_body_bytes} byte limit")
        if length:
            try:
                body = await asyncio.wait_for(
                    reader.readexactly(length),
                    timeout=limits.body_timeout_s)
            except asyncio.TimeoutError:
                raise HttpError(
                    408, "request body did not arrive within "
                         f"{limits.body_timeout_s:.0f}s") from None
            except asyncio.IncompleteReadError:
                raise HttpError(400, "connection closed mid-body") \
                    from None
    elif method in ("POST", "PUT", "PATCH"):
        raise HttpError(411, f"{method} requires Content-Length")

    split = urlsplit(target)
    path = unquote(split.path)
    query = {key: value for key, value in parse_qsl(split.query)}
    return HttpRequest(method=method, target=target, path=path,
                       query=query, headers=headers, body=body,
                       client=client)


def render_response(response: Response, *,
                    keep_alive: bool = False) -> bytes:
    """Serialize one response (status line, headers, body)."""
    reason = REASONS.get(response.status, "Unknown")
    lines = [f"HTTP/1.1 {response.status} {reason}"]
    lines.append(f"Content-Type: {response.content_type}")
    lines.append(f"Content-Length: {len(response.body)}")
    lines.append("Connection: " + ("keep-alive" if keep_alive else "close"))
    for name, value in response.headers:
        lines.append(f"{name}: {value}")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + response.body


async def write_response(writer: asyncio.StreamWriter, response: Response,
                         *, keep_alive: bool = False) -> None:
    writer.write(render_response(response, keep_alive=keep_alive))
    await writer.drain()


def sse_preamble(extra_headers: Iterable[Tuple[str, str]] = ()) -> bytes:
    """The response head that opens an SSE stream (no Content-Length)."""
    lines = [
        "HTTP/1.1 200 OK",
        "Content-Type: text/event-stream",
        "Cache-Control: no-store",
        "Connection: close",
    ]
    for name, value in extra_headers:
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
