"""Scenario submissions: the schema ``starnuma run`` and serve share.

A submission names an experiment, a seed, a phase horizon, and an
optional workload subset -- exactly the knobs of ``starnuma run`` --
and is validated by the same bounds (:func:`validate_run_params` is
called by both the CLI and the service). The *catalog* of legal
experiment and workload names is injected by the caller: the layering
contract keeps ``repro.serve`` off the simulator, so the CLI wires in
:data:`repro.experiments.EXPERIMENTS` and the chaos harness wires in a
synthetic catalog.

A scenario's :func:`fingerprint` mirrors the export manifest-v2 fields
(schema, seed, phases, warmup, workloads, experiment, git revision);
:func:`cache_key` hashes the canonical JSON of that fingerprint into
the content address used by the result cache, the single-flight table,
and the job journal.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Optional, Sequence, Tuple

#: Version of the submission/fingerprint layout.
SUBMISSION_SCHEMA_VERSION = 1

#: Environment variables consulted (in order) for the source revision;
#: mirrors the export manifest -- the service never shells out to git.
_GIT_ENV_VARS = ("STARNUMA_GIT_DESCRIBE", "GITHUB_SHA")

#: Body keys a submission may carry (anything else is a client bug).
_ALLOWED_KEYS = frozenset({
    "experiment", "seed", "phases", "warmup", "workloads", "deadline_s",
})


class ScenarioError(ValueError):
    """A submission that fails validation; message is one line."""


@dataclass(frozen=True)
class Catalog:
    """The names a deployment accepts (injected, never imported)."""

    experiments: FrozenSet[str]
    workloads: FrozenSet[str]

    @classmethod
    def of(cls, experiments: Iterable[str],
           workloads: Iterable[str]) -> "Catalog":
        return cls(experiments=frozenset(experiments),
                   workloads=frozenset(workloads))


@dataclass(frozen=True)
class Scenario:
    """One validated simulation request."""

    experiment: str
    seed: int = 1
    phases: int = 12
    warmup: int = 4
    workloads: Optional[Tuple[str, ...]] = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "experiment": self.experiment,
            "seed": self.seed,
            "phases": self.phases,
            "warmup": self.warmup,
            "workloads": list(self.workloads) if self.workloads else None,
        }


def validate_run_params(seed: int, phases: int, warmup: int,
                        workloads: Optional[Sequence[str]],
                        known_workloads: Iterable[str]) -> Optional[str]:
    """One-line complaint for invalid run parameters, else None.

    The single source of truth for the bounds ``starnuma run``,
    ``starnuma export``, and ``POST /v1/jobs`` all enforce.
    """
    if seed < 0:
        return f"seed must be >= 0 (got {seed})"
    if phases < 1:
        return f"phases must be >= 1 (got {phases})"
    if not 0 <= warmup < phases:
        return (f"warmup must satisfy 0 <= warmup < phases "
                f"(got warmup={warmup}, phases={phases})")
    known = set(known_workloads)
    for workload in workloads or []:
        if workload not in known:
            return f"unknown workload {workload!r}"
    return None


def _require_int(payload: Dict[str, object], key: str,
                 default: int) -> int:
    value = payload.get(key, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise ScenarioError(f"{key} must be an integer (got {value!r})")
    return value


def parse_scenario(payload: Dict[str, object],
                   catalog: Catalog) -> Scenario:
    """Validate one submission body into a :class:`Scenario`.

    Raises :class:`ScenarioError` with a one-line message on any
    violation -- unknown keys, unknown experiment/workload names, or
    out-of-bounds parameters (same bounds as ``starnuma run``).
    """
    unknown = sorted(set(payload) - _ALLOWED_KEYS)
    if unknown:
        raise ScenarioError(
            f"unknown submission key(s): {', '.join(unknown)} "
            f"(allowed: {', '.join(sorted(_ALLOWED_KEYS))})")
    experiment = payload.get("experiment")
    if not isinstance(experiment, str) or not experiment:
        raise ScenarioError("experiment is required and must be a string")
    if experiment not in catalog.experiments:
        raise ScenarioError(f"unknown experiment {experiment!r}")
    seed = _require_int(payload, "seed", 1)
    phases = _require_int(payload, "phases", 12)
    warmup = _require_int(payload, "warmup", 4)
    raw_workloads = payload.get("workloads")
    workloads: Optional[Tuple[str, ...]] = None
    if raw_workloads is not None:
        if not isinstance(raw_workloads, (list, tuple)) \
                or not all(isinstance(name, str) for name in raw_workloads):
            raise ScenarioError("workloads must be a list of names")
        workloads = tuple(raw_workloads)
    complaint = validate_run_params(seed, phases, warmup, workloads,
                                    catalog.workloads)
    if complaint is not None:
        raise ScenarioError(complaint)
    return Scenario(experiment=experiment, seed=seed, phases=phases,
                    warmup=warmup, workloads=workloads)


def _git_describe() -> Optional[str]:
    for variable in _GIT_ENV_VARS:
        value = os.environ.get(variable)
        if value:
            return value
    return None


def fingerprint(scenario: Scenario,
                git: Optional[str] = None) -> Dict[str, object]:
    """The content identity of one scenario (manifest-v2 mirror)."""
    return {
        "schema": SUBMISSION_SCHEMA_VERSION,
        "experiment": scenario.experiment,
        "seed": scenario.seed,
        "n_phases": scenario.phases,
        "warmup_phases": scenario.warmup,
        "workloads": list(scenario.workloads) if scenario.workloads
        else None,
        "git": git if git is not None else _git_describe(),
    }


def cache_key(scenario: Scenario, git: Optional[str] = None) -> str:
    """sha256 hex of the canonical fingerprint JSON."""
    canonical = json.dumps(fingerprint(scenario, git=git), sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()
