"""Rule base class and the global rule registry.

Rules self-register at import time via :func:`register`; the engine asks
:func:`create_rules` for fresh instances per run so rules may keep
per-run state without leaking between invocations.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Type

from repro.lint.findings import Finding, Severity
from repro.lint.module import LintModule, LintProject

if TYPE_CHECKING:  # pragma: no cover -- typing only, avoids an import cycle
    from repro.lint.graph import ProgramIndex


class LintRule:
    """Base class of every project lint rule.

    Subclasses set ``name`` (the stable id used in reports, baselines and
    ``--rules`` selection), ``severity``, and ``description``, and
    override :meth:`check_module` (called once per module) and/or
    :meth:`check_project` (called once per run with the whole project).

    Whole-program rules additionally set ``uses_graph = True`` and
    override :meth:`check_graph`, which receives the shared
    :class:`~repro.lint.graph.ProgramIndex` (import graph, resolved
    call graph, dataflow helpers). The engine builds the index at most
    once per run, and only when a selected rule asks for it, so
    per-file lint invocations stay cheap.
    """

    name: str = ""
    severity: Severity = Severity.ERROR
    description: str = ""
    #: Whether this rule needs the whole-program :class:`ProgramIndex`.
    uses_graph: bool = False

    def check_module(self, module: LintModule,
                     project: LintProject) -> Iterable[Finding]:
        return ()

    def check_project(self, project: LintProject) -> Iterable[Finding]:
        return ()

    def check_graph(self, project: LintProject,
                    index: "ProgramIndex") -> Iterable[Finding]:
        return ()

    def finding(self, module: LintModule, node: ast.AST, message: str,
                severity: Optional[Severity] = None) -> Finding:
        return Finding(
            rule=self.name,
            severity=severity or self.severity,
            module=module.name,
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


_REGISTRY: Dict[str, Type[LintRule]] = {}


def register(cls: Type[LintRule]) -> Type[LintRule]:
    """Class decorator adding a rule to the global registry."""
    if not cls.name:
        raise ValueError(f"rule {cls.__name__} must set a name")
    if cls.name in _REGISTRY and _REGISTRY[cls.name] is not cls:
        raise ValueError(f"duplicate rule name {cls.name!r}")
    _REGISTRY[cls.name] = cls
    return cls


def _load_builtin_rules() -> None:
    import repro.lint.rules  # noqa: F401  (imports register the rules)


def all_rule_names() -> List[str]:
    _load_builtin_rules()
    return sorted(_REGISTRY)


def rule_descriptions() -> Dict[str, str]:
    _load_builtin_rules()
    return {name: _REGISTRY[name].description for name in sorted(_REGISTRY)}


def create_rules(names: Optional[Iterable[str]] = None) -> List[LintRule]:
    """Instantiate the selected rules (all registered rules by default)."""
    _load_builtin_rules()
    if names is None:
        selected = sorted(_REGISTRY)
    else:
        selected = list(names)
        unknown = [name for name in selected if name not in _REGISTRY]
        if unknown:
            raise KeyError(
                f"unknown lint rule(s) {', '.join(sorted(unknown))}; "
                f"available: {', '.join(sorted(_REGISTRY))}"
            )
    return [_REGISTRY[name]() for name in selected]
