"""Baseline suppression of known findings.

A baseline records fingerprints of accepted findings so ``starnuma
lint`` only fails on *new* violations. Fingerprints hash the rule id,
the module's dotted name, the finding message, and the stripped source
line text -- deliberately **not** the line number, so unrelated edits
that shift code do not invalidate the baseline. Each fingerprint stores
a count, so two identical violations on identical lines need two
baseline slots.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from repro.lint.findings import Finding
from repro.lint.module import LintProject

BASELINE_VERSION = 1


class BaselineError(ValueError):
    """Raised for an unreadable or malformed baseline file."""


def fingerprint(finding: Finding, line_text: str) -> str:
    payload = "\x1f".join(
        (finding.rule, finding.module, line_text.strip(), finding.message)
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:20]


class Baseline:
    """A multiset of accepted finding fingerprints."""

    def __init__(self, counts: Optional[Dict[str, int]] = None,
                 notes: Optional[Dict[str, str]] = None):
        self.counts: Dict[str, int] = dict(counts or {})
        #: Human-readable context per fingerprint, written to the file for
        #: reviewability; never consulted when matching.
        self.notes: Dict[str, str] = dict(notes or {})

    def __len__(self) -> int:
        return sum(self.counts.values())

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        if not path.exists():
            return cls()
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise BaselineError(f"cannot read baseline {path}: {exc}") from None
        if not isinstance(data, dict) or "findings" not in data:
            raise BaselineError(
                f"baseline {path} is not a starnuma-lint baseline file"
            )
        counts: Dict[str, int] = {}
        for entry in data["findings"]:
            counts[entry["fingerprint"]] = (
                counts.get(entry["fingerprint"], 0) + int(entry.get("count", 1))
            )
        return cls(counts)

    @classmethod
    def from_findings(cls, findings: Iterable[Finding],
                      project: LintProject) -> "Baseline":
        counts: Dict[str, int] = {}
        notes: Dict[str, str] = {}
        for finding in findings:
            key = fingerprint(finding, _line_text(project, finding))
            counts[key] = counts.get(key, 0) + 1
            notes[key] = f"{finding.rule}: {finding.module}: {finding.message}"
        return cls(counts, notes)

    def save(self, path: Path) -> None:
        entries = [
            {"fingerprint": key, "count": count,
             **({"note": self.notes[key]} if key in self.notes else {})}
            for key, count in sorted(self.counts.items())
        ]
        payload = {
            "comment": "starnuma lint baseline; regenerate with "
                       "`starnuma lint --update-baseline`",
            "version": BASELINE_VERSION,
            "findings": entries,
        }
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                        encoding="utf-8")

    def split(self, findings: Iterable[Finding],
              project: LintProject) -> Tuple[List[Finding], int]:
        """Partition ``findings`` into (new, suppressed-count)."""
        remaining = dict(self.counts)
        fresh: List[Finding] = []
        suppressed = 0
        for finding in findings:
            key = fingerprint(finding, _line_text(project, finding))
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
                suppressed += 1
            else:
                fresh.append(finding)
        return fresh, suppressed


def _line_text(project: LintProject, finding: Finding) -> str:
    module = project.module(finding.module)
    return module.line_text(finding.line) if module is not None else ""
