"""Parsed-source units handed to lint rules.

A :class:`LintModule` is one parsed Python file plus the metadata rules
key on: its dotted module name (``repro.sim.timing``), its display path,
and its raw source lines (for baseline fingerprints). A
:class:`LintProject` is the whole set of modules under analysis, so
project-level rules (frozen-key, config-drift) can cross-reference
definitions and uses across files.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence


def module_name_for(path: Path) -> str:
    """Derive the dotted import name of ``path`` from its package tree.

    Walks up through directories containing ``__init__.py``; a file
    outside any package is addressed by its bare stem.
    """
    path = path.resolve()
    parts: List[str] = [] if path.stem == "__init__" else [path.stem]
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        parent = parent.parent
    return ".".join(parts) or path.stem


@dataclass
class LintModule:
    """One parsed source file."""

    name: str
    path: str
    source: str
    tree: ast.Module
    lines: List[str] = field(default_factory=list)

    @classmethod
    def from_source(cls, name: str, source: str,
                    path: str = "<memory>") -> "LintModule":
        return cls(
            name=name,
            path=path,
            source=source,
            tree=ast.parse(source, filename=path),
            lines=source.splitlines(),
        )

    @classmethod
    def from_path(cls, path: Path) -> "LintModule":
        source = path.read_text(encoding="utf-8")
        return cls.from_source(module_name_for(path), source, str(path))

    def line_text(self, line: int) -> str:
        """The stripped source text of 1-indexed ``line`` ('' if absent)."""
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def in_package(self, prefixes: Iterable[str]) -> bool:
        """Whether this module lives under any of the dotted ``prefixes``."""
        for prefix in prefixes:
            if self.name == prefix or self.name.startswith(prefix + "."):
                return True
        return False


class LintProject:
    """Every module of one lint run, indexed by dotted name."""

    def __init__(self, modules: Sequence[LintModule]):
        self.modules: List[LintModule] = sorted(modules,
                                                key=lambda m: m.name)
        self._by_name: Dict[str, LintModule] = {
            module.name: module for module in self.modules
        }

    def __iter__(self) -> Iterator[LintModule]:
        return iter(self.modules)

    def __len__(self) -> int:
        return len(self.modules)

    def module(self, name: str) -> Optional[LintModule]:
        return self._by_name.get(name)

    def in_packages(self, prefixes: Iterable[str]) -> List[LintModule]:
        prefixes = tuple(prefixes)
        return [module for module in self.modules
                if module.in_package(prefixes)]
