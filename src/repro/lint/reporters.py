"""Text, JSON, and SARIF renderings of a lint report."""

from __future__ import annotations

import json
from pathlib import Path

from repro.lint.findings import Severity
from repro.lint.engine import LintReport

#: SARIF severity levels for our two finding severities.
_SARIF_LEVELS = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
}


def render_text(report: LintReport) -> str:
    """Human-readable report, one ``path:line:col`` finding per line."""
    lines = [finding.render() for finding in report.findings]
    errors = report.count(Severity.ERROR)
    warnings = report.count(Severity.WARNING)
    if report.is_clean:
        summary = (f"starnuma lint: clean -- {report.n_files} file(s), "
                   f"{len(report.rule_names)} rule(s)")
    else:
        summary = (f"starnuma lint: {errors} error(s), {warnings} "
                   f"warning(s) in {report.n_files} file(s)")
    if report.suppressed:
        summary += f" ({report.suppressed} baselined finding(s) suppressed)"
    lines.append(summary)
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """Machine-readable report for CI annotation tooling."""
    payload = {
        "clean": report.is_clean,
        "files": report.n_files,
        "rules": report.rule_names,
        "suppressed": report.suppressed,
        "errors": report.count(Severity.ERROR),
        "warnings": report.count(Severity.WARNING),
        "findings": [
            {
                "rule": finding.rule,
                "severity": finding.severity.label,
                "module": finding.module,
                "path": finding.path,
                "line": finding.line,
                "col": finding.col,
                "message": finding.message,
            }
            for finding in report.findings
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_sarif(report: LintReport) -> str:
    """SARIF 2.1.0 log for code-scanning upload.

    Paths are emitted repo-relative when possible (SARIF consumers
    anchor annotations at the repository root); rule metadata comes
    from the registry so every selected rule appears in the driver
    even when it produced no findings.
    """
    from repro.lint.registry import rule_descriptions

    descriptions = rule_descriptions()
    rules = [
        {
            "id": name,
            "shortDescription": {"text": descriptions.get(name, name)},
        }
        for name in report.rule_names
    ]
    root = Path.cwd()
    results = []
    for finding in report.findings:
        path = Path(finding.path)
        try:
            uri = path.resolve().relative_to(root).as_posix()
        except ValueError:
            uri = path.as_posix()
        results.append({
            "ruleId": finding.rule,
            "level": _SARIF_LEVELS.get(finding.severity, "warning"),
            "message": {"text": finding.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": uri,
                        "uriBaseId": "%SRCROOT%",
                    },
                    "region": {
                        "startLine": finding.line,
                        "startColumn": finding.col,
                    },
                },
            }],
        })
    payload = {
        "$schema": ("https://raw.githubusercontent.com/oasis-tcs/"
                    "sarif-spec/master/Schemata/sarif-schema-2.1.0.json"),
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": "starnuma-lint",
                    "rules": rules,
                },
            },
            "results": results,
        }],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
