"""Text and JSON renderings of a lint report."""

from __future__ import annotations

import json

from repro.lint.findings import Severity
from repro.lint.engine import LintReport


def render_text(report: LintReport) -> str:
    """Human-readable report, one ``path:line:col`` finding per line."""
    lines = [finding.render() for finding in report.findings]
    errors = report.count(Severity.ERROR)
    warnings = report.count(Severity.WARNING)
    if report.is_clean:
        summary = (f"starnuma lint: clean -- {report.n_files} file(s), "
                   f"{len(report.rule_names)} rule(s)")
    else:
        summary = (f"starnuma lint: {errors} error(s), {warnings} "
                   f"warning(s) in {report.n_files} file(s)")
    if report.suppressed:
        summary += f" ({report.suppressed} baselined finding(s) suppressed)"
    lines.append(summary)
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """Machine-readable report for CI annotation tooling."""
    payload = {
        "clean": report.is_clean,
        "files": report.n_files,
        "rules": report.rule_names,
        "suppressed": report.suppressed,
        "errors": report.count(Severity.ERROR),
        "warnings": report.count(Severity.WARNING),
        "findings": [
            {
                "rule": finding.rule,
                "severity": finding.severity.label,
                "module": finding.module,
                "path": finding.path,
                "line": finding.line,
                "col": finding.col,
                "message": finding.message,
            }
            for finding in report.findings
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
