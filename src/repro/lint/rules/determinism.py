"""Determinism: simulation code must be replayable bit for bit.

The checkpoint/resume guarantee (byte-identical ``--resume`` re-runs)
and the per-state timing-model caches both assume that simulating the
same inputs twice produces the same bytes. Three things silently break
that: unseeded or global RNG state, wall-clock reads, and iteration over
``set`` objects (whose order varies under hash randomization). This rule
forbids all three inside the simulation packages.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set

from repro.lint.findings import Finding, Severity
from repro.lint.module import LintModule, LintProject
from repro.lint.registry import LintRule, register
from repro.lint.rules.common import import_aliases, resolve_call

#: Packages whose behavior feeds simulation results and checkpoints.
DETERMINISM_SCOPES = (
    "repro.sim",
    "repro.migration",
    "repro.interconnect",
    "repro.faults",
    "repro.topology",
)

#: numpy.random members that construct explicitly seeded generators.
_SEEDED_NP_RANDOM = {
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "PCG64DXSM", "Philox", "MT19937", "SFC64",
}

#: Wall-clock reads: nondeterministic across runs by definition.
_WALL_CLOCK_CALLS = {
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.clock_gettime",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
}

#: Other inherently nondeterministic value sources.
_ENTROPY_CALLS = {"os.urandom", "uuid.uuid1", "uuid.uuid4"}

#: Builtins whose call materializes its argument in iteration order.
_ORDER_SENSITIVE_BUILTINS = {"list", "tuple", "enumerate"}

#: Callables whose result does not depend on argument iteration order,
#: so feeding them a set (or a generator over one) is deterministic.
_ORDER_INSENSITIVE_SINKS = {"set", "frozenset", "sum", "min", "max",
                            "any", "all", "len", "sorted"}


def _is_set_expression(node: ast.AST, set_names: Set[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
            and node.func.id in ("set", "frozenset"):
        return True
    if isinstance(node, ast.Name):
        return node.id in set_names
    return False


def _walk_scope(root: ast.AST):
    """Yield nodes of one lexical scope, not descending into nested defs."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(root))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
            stack.extend(ast.iter_child_nodes(node))


def _local_set_names(scope: ast.AST) -> Set[str]:
    """Names assigned a set in ``scope`` and never re-bound to non-sets."""
    assigned_set: Set[str] = set()
    assigned_other: Set[str] = set()
    for node in _walk_scope(scope):
        if isinstance(node, ast.Assign):
            is_set = _is_set_expression(node.value, set())
            for target in node.targets:
                if isinstance(target, ast.Name):
                    (assigned_set if is_set else assigned_other).add(target.id)
        elif isinstance(node, ast.AnnAssign) and node.value is not None \
                and isinstance(node.target, ast.Name):
            if _is_set_expression(node.value, set()):
                assigned_set.add(node.target.id)
            else:
                assigned_other.add(node.target.id)
    return assigned_set - assigned_other


@register
class DeterminismRule(LintRule):
    name = "determinism"
    severity = Severity.ERROR
    description = (
        "forbids unseeded/global RNG, wall-clock reads, and bare-set "
        "iteration in repro.sim/migration/interconnect/faults/topology"
    )

    def check_module(self, module: LintModule,
                     project: LintProject) -> Iterable[Finding]:
        if not module.in_package(DETERMINISM_SCOPES):
            return ()
        findings: List[Finding] = []
        aliases = import_aliases(module.tree)
        self._check_imports(module, findings)
        self._check_calls(module, aliases, findings)
        self._check_set_iteration(module, findings)
        return findings

    # -- imports -----------------------------------------------------------

    def _check_imports(self, module: LintModule,
                       findings: List[Finding]) -> None:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ImportFrom) or node.level:
                continue
            if node.module == "random":
                findings.append(self.finding(
                    module, node,
                    "importing from the global 'random' module; use a "
                    "seeded numpy Generator (np.random.default_rng(seed))",
                ))
            elif node.module == "numpy.random":
                bad = [alias.name for alias in node.names
                       if alias.name not in _SEEDED_NP_RANDOM]
                if bad:
                    findings.append(self.finding(
                        module, node,
                        f"importing unseeded numpy.random state "
                        f"({', '.join(bad)}); construct a seeded Generator "
                        f"instead",
                    ))
            elif node.module in ("secrets",) or (
                    node.module or "").startswith("secrets."):
                findings.append(self.finding(
                    module, node,
                    "'secrets' is entropy-backed and never reproducible",
                ))

    # -- calls -------------------------------------------------------------

    def _check_calls(self, module: LintModule, aliases: Dict[str, str],
                     findings: List[Finding]) -> None:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            target = resolve_call(node, aliases)
            if target is None:
                continue
            message = self._call_message(target)
            if message is not None:
                findings.append(self.finding(module, node, message))

    def _call_message(self, target: str) -> Optional[str]:
        if target == "random" or target.startswith("random."):
            return (f"'{target}' uses the global (unseeded) RNG; "
                    f"thread a seeded np.random.default_rng(seed) through "
                    f"instead")
        if target.startswith("numpy.random."):
            member = target.rsplit(".", 1)[1]
            if member not in _SEEDED_NP_RANDOM:
                return (f"'{target}' draws from numpy's global RNG; use a "
                        f"seeded np.random.default_rng(seed)")
        if target in _WALL_CLOCK_CALLS:
            return (f"'{target}' reads the wall clock; simulated time must "
                    f"come from the phase model, not the host")
        if target in _ENTROPY_CALLS or target.startswith("secrets."):
            return f"'{target}' is entropy-backed and never reproducible"
        return None

    # -- set iteration -----------------------------------------------------

    def _check_set_iteration(self, module: LintModule,
                             findings: List[Finding]) -> None:
        scopes: List[ast.AST] = [module.tree]
        scopes.extend(node for node in ast.walk(module.tree)
                      if isinstance(node, (ast.FunctionDef,
                                           ast.AsyncFunctionDef)))
        for scope in scopes:
            set_names = _local_set_names(scope)
            self._scan_scope_body(module, scope, set_names, findings)

    def _scan_scope_body(self, module: LintModule, scope: ast.AST,
                         set_names: Set[str],
                         findings: List[Finding]) -> None:
        exempt = self._order_insensitive_comprehensions(scope)
        for node in _walk_scope(scope):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                self._flag_if_set(module, node.iter, set_names, findings)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                if id(node) in exempt:
                    continue
                for generator in node.generators:
                    self._flag_if_set(module, generator.iter, set_names,
                                      findings)
            elif isinstance(node, ast.Call) and isinstance(node.func,
                                                           ast.Name) \
                    and node.func.id in _ORDER_SENSITIVE_BUILTINS:
                for arg in node.args[:1]:
                    self._flag_if_set(module, arg, set_names, findings)

    @staticmethod
    def _order_insensitive_comprehensions(scope: ast.AST) -> Set[int]:
        """Comprehension nodes whose iteration order cannot leak out.

        A set comprehension rebuilds a set (same elements regardless of
        order), and a generator consumed whole by an order-insensitive
        callable (``frozenset``, ``sum``, ``sorted``...) is equally safe.
        """
        exempt: Set[int] = set()
        for node in _walk_scope(scope):
            if isinstance(node, ast.SetComp):
                exempt.add(id(node))
            elif isinstance(node, ast.Call) and isinstance(node.func,
                                                           ast.Name) \
                    and node.func.id in _ORDER_INSENSITIVE_SINKS:
                for arg in node.args[:1]:
                    if isinstance(arg, (ast.GeneratorExp, ast.SetComp)):
                        exempt.add(id(arg))
        return exempt

    def _flag_if_set(self, module: LintModule, node: ast.AST,
                     set_names: Set[str],
                     findings: List[Finding]) -> None:
        if _is_set_expression(node, set_names):
            findings.append(self.finding(
                module, node,
                "iterating a bare set is order-nondeterministic under hash "
                "randomization; iterate sorted(...) instead (protects "
                "byte-identical --resume)",
            ))
