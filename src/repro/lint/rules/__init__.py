"""Project-specific lint rules; importing this package registers them."""

from repro.lint.rules import (  # noqa: F401
    config_drift,
    determinism,
    frozen,
    obs_purity,
    purity,
    units,
)

__all__ = ["config_drift", "determinism", "frozen", "obs_purity",
           "purity", "units"]
