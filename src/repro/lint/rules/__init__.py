"""Project-specific lint rules; importing this package registers them."""

from repro.lint.rules import (  # noqa: F401
    config_drift,
    determinism,
    fork_safety,
    frozen,
    layering,
    obs_purity,
    purity,
    signal_safety,
    units,
    units_flow,
)

__all__ = ["config_drift", "determinism", "fork_safety", "frozen",
           "layering", "obs_purity", "purity", "signal_safety", "units",
           "units_flow"]
