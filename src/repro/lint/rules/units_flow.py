"""Interprocedural units: dimension tags flow, suffixes stay honest.

The plain ``units`` rule reads suffixes off identifiers at a single
expression. This rule *propagates* dimension tags (``ns``, ``s``,
``cycles``, ``bytes``, ``gbps``...) through the program:

* **assignments** -- ``elapsed = end_ns - start_ns`` tags ``elapsed``
  as nanoseconds even though its name says nothing; a later
  ``timeout_s = elapsed`` or ``elapsed + budget_s`` is flagged;
* **returns** -- a function whose returns all carry one tag exports
  that tag, so ``delay = retry_delay_ns(...)`` tags ``delay`` at every
  project-internal call site;
* **call sites** -- positional arguments are matched against the
  callee's parameter names (``def sleep_for(wait_s)`` called with a
  nanosecond value is flagged), which the suffix rule cannot see.

To avoid double-reporting, mismatches are only flagged when at least
one side's tag was *flow-derived* (through an untagged name or an
inferred return); suffix-vs-suffix mismatches already belong to the
``units`` rule. Control flow comes from the shared
:class:`~repro.lint.graph.ForwardDataflow` engine: branch joins keep a
tag only when both arms agree, loop bodies run twice so loop-carried
tags propagate, and ``repro.config.units`` -- the sanctioned
conversion module -- is exempt wholesale, as are calls into it.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.lint.findings import Finding, Severity
from repro.lint.graph import ForwardDataflow, ProgramIndex
from repro.lint.graph.callgraph import FunctionInfo
from repro.lint.module import LintModule, LintProject
from repro.lint.registry import LintRule, register
from repro.lint.rules.common import suffix_unit
from repro.lint.rules.units import CONVERSION_MODULES

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


@register
class UnitsFlowRule(LintRule):
    name = "units-flow"
    severity = Severity.ERROR
    description = (
        "propagates _ns/_s/_cycles/... dimension tags through "
        "assignments, returns, and project call sites"
    )
    uses_graph = True

    def check_graph(self, project: LintProject,
                    index: ProgramIndex) -> Iterable[Finding]:
        findings: List[Finding] = []
        returns = _infer_return_units(index)
        for qual in sorted(index.functions):
            info = index.functions[qual]
            module = project.module(info.module)
            if module is None or module.in_package(CONVERSION_MODULES):
                continue
            if not isinstance(info.node, _FUNCTION_NODES):
                continue  # module bodies rarely chain enough to flow
            flow = _UnitFlow(self, module, index, info, returns, findings)
            flow.run([s for s in info.node.body
                      if not isinstance(s, _FUNCTION_NODES)])
        return findings


def _infer_return_units(index: ProgramIndex) -> Dict[str, str]:
    """Function qual -> dimension tag its returns all agree on.

    Only functions whose *name* carries no suffix contribute -- a
    suffixed name is already visible to plain ``unit_of``. Inference is
    syntactic (one pass over return expressions); wrappers of wrappers
    are out of scope by design.
    """
    table: Dict[str, str] = {}
    for qual, info in index.functions.items():
        if not isinstance(info.node, _FUNCTION_NODES):
            continue
        if suffix_unit(info.name) is not None:
            continue
        units: Set[Optional[str]] = set()
        for node in ast.walk(info.node):
            if isinstance(node, ast.Return) and node.value is not None:
                units.add(_static_unit(node.value))
        if len(units) == 1:
            unit = units.pop()
            if unit is not None:
                table[qual] = unit
    return table


def _static_unit(node: ast.AST) -> Optional[str]:
    """Suffix-only unit of an expression (no environment)."""
    if isinstance(node, ast.Name):
        return suffix_unit(node.id)
    if isinstance(node, ast.Attribute):
        return suffix_unit(node.attr)
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name):
            return suffix_unit(func.id)
        if isinstance(func, ast.Attribute):
            return suffix_unit(func.attr)
        return None
    if isinstance(node, ast.UnaryOp):
        return _static_unit(node.operand)
    if isinstance(node, ast.BinOp) and isinstance(node.op,
                                                  (ast.Add, ast.Sub)):
        left = _static_unit(node.left)
        right = _static_unit(node.right)
        if left is not None and right is not None:
            return left if left == right else None
        return left or right
    return None


class _UnitFlow(ForwardDataflow[str]):
    """Forward dataflow instance for one function body."""

    def __init__(self, rule: UnitsFlowRule, module: LintModule,
                 index: ProgramIndex, info: FunctionInfo,
                 returns: Dict[str, str], findings: List[Finding]):
        super().__init__()
        self.rule = rule
        self.module = module
        self.index = index
        self.info = info
        self.returns = returns
        self.findings = findings
        self._reported: Set[Tuple[int, int, str]] = set()

    # -- evaluation ----------------------------------------------------------

    def _eval(self, node: ast.AST) -> Tuple[Optional[str], bool]:
        """``(unit, flow_derived)`` of an expression.

        ``flow_derived`` is True when the tag travelled through an
        untagged name or an inferred return -- the knowledge the plain
        suffix rule does not have.
        """
        if isinstance(node, ast.Name):
            suffix = suffix_unit(node.id)
            if suffix is not None:
                return suffix, False
            if node.id in self.env:
                return self.env[node.id], True
            return None, False
        if isinstance(node, ast.Attribute):
            return suffix_unit(node.attr), False
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.UnaryOp):
            return self._eval(node.operand)
        if isinstance(node, ast.IfExp):
            body = self._eval(node.body)
            orelse = self._eval(node.orelse)
            if body[0] == orelse[0]:
                return body[0], body[1] or orelse[1]
            return None, False
        if isinstance(node, ast.BinOp):
            if isinstance(node.op, (ast.Add, ast.Sub)):
                left_u, left_f = self._eval(node.left)
                right_u, right_f = self._eval(node.right)
                if left_u is not None and right_u is not None:
                    if left_u != right_u:
                        return None, False  # mismatch; flagged elsewhere
                    return left_u, left_f or right_f
                if left_u is not None:
                    return left_u, left_f
                return right_u, right_f
            return None, False  # * and / convert dimensions
        return None, False

    def _eval_call(self, node: ast.Call) -> Tuple[Optional[str], bool]:
        target = self.index.resolve_in(self.info.qual, node.func)
        if target is not None:
            if target.startswith(tuple(m + "." for m in CONVERSION_MODULES)):
                return None, False  # sanctioned conversions erase tags
            resolved = self.index.function_for(target)
            if resolved is not None and resolved.qual in self.returns:
                return self.returns[resolved.qual], True
        func = node.func
        if isinstance(func, ast.Name):
            return suffix_unit(func.id), False
        if isinstance(func, ast.Attribute):
            return suffix_unit(func.attr), False
        return None, False

    # -- reporting -----------------------------------------------------------

    def _flag(self, node: ast.AST, message: str) -> None:
        key = (getattr(node, "lineno", 1),
               getattr(node, "col_offset", 0), message)
        if key in self._reported:
            return  # loop bodies run twice; report once
        self._reported.add(key)
        self.findings.append(self.rule.finding(self.module, node, message))

    def _check_pair(self, node: ast.AST, left: ast.AST, right: ast.AST,
                    context: str) -> None:
        left_u, left_f = self._eval(left)
        right_u, right_f = self._eval(right)
        if left_u and right_u and left_u != right_u \
                and (left_f or right_f):
            self._flag(node, f"{context} mixes {left_u} and {right_u} "
                             f"(tag inferred through dataflow); convert "
                             f"explicitly via repro.config.units")

    # -- dataflow hooks ------------------------------------------------------

    def visit_expr(self, node: ast.expr) -> None:
        for child in ast.walk(node):
            if isinstance(child, ast.BinOp) \
                    and isinstance(child.op, (ast.Add, ast.Sub)):
                op = "+" if isinstance(child.op, ast.Add) else "-"
                self._check_pair(child, child.left, child.right, f"'{op}'")
            elif isinstance(child, ast.Compare):
                operands = [child.left] + list(child.comparators)
                for op, left, right in zip(child.ops, operands,
                                           operands[1:]):
                    if isinstance(op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE,
                                       ast.Eq, ast.NotEq)):
                        self._check_pair(child, left, right, "comparison")
            elif isinstance(child, ast.Call):
                self._check_call_args(child)

    def _check_call_args(self, node: ast.Call) -> None:
        target = self.index.resolve_in(self.info.qual, node.func)
        if target is None:
            return
        if target.startswith(tuple(m + "." for m in CONVERSION_MODULES)):
            return
        callee = self.index.function_for(target)
        if callee is not None:
            params = list(callee.params)
            if callee.cls is not None and params \
                    and params[0] in ("self", "cls"):
                params = params[1:]
            for param, arg in zip(params, node.args):
                expected = suffix_unit(param)
                actual, _ = self._eval(arg)
                if expected and actual and expected != actual:
                    self._flag(arg, f"argument for '{param}' ({expected}) "
                                    f"of {callee.name}() carries {actual}; "
                                    f"convert explicitly via "
                                    f"repro.config.units")
        for keyword in node.keywords:
            if keyword.arg is None:
                continue
            expected = suffix_unit(keyword.arg)
            actual, flow = self._eval(keyword.value)
            if expected and actual and expected != actual and flow:
                self._flag(keyword.value,
                           f"keyword '{keyword.arg}' ({expected}) receives "
                           f"a flow-inferred {actual} value; convert "
                           f"explicitly via repro.config.units")

    def transfer_assign(self, target: ast.expr, value: ast.expr,
                        node: ast.stmt) -> None:
        unit, flow = self._eval(value)
        if isinstance(target, ast.Name):
            expected = suffix_unit(target.id)
            if expected is not None:
                if unit and unit != expected and flow:
                    self._flag(node, f"assignment binds a flow-inferred "
                                     f"{unit} value to '{target.id}' "
                                     f"({expected}); convert explicitly "
                                     f"via repro.config.units")
                self.env.pop(target.id, None)
            elif unit is not None:
                self.env[target.id] = unit
            else:
                self.env.pop(target.id, None)
        elif isinstance(target, ast.Attribute):
            expected = suffix_unit(target.attr)
            if expected and unit and unit != expected and flow:
                self._flag(node, f"assignment binds a flow-inferred {unit} "
                                 f"value to '{target.attr}' ({expected}); "
                                 f"convert explicitly via "
                                 f"repro.config.units")
        else:
            for name in _names_in_target(target):
                self.env.pop(name, None)

    def transfer_augassign(self, node: ast.AugAssign) -> None:
        if not isinstance(node.op, (ast.Add, ast.Sub)):
            if isinstance(node.target, ast.Name):
                self.env.pop(node.target.id, None)
            return
        self._check_pair(node, node.target, node.value,
                         "augmented assignment")

    def transfer_return(self, node: ast.Return) -> None:
        if node.value is None:
            return
        expected = suffix_unit(self.info.name)
        actual, flow = self._eval(node.value)
        if expected and actual and expected != actual and flow:
            self._flag(node, f"function '{self.info.name}' ({expected}) "
                             f"returns a flow-inferred {actual} value; "
                             f"convert explicitly via repro.config.units")


def _names_in_target(target: ast.expr) -> List[str]:
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, (ast.Tuple, ast.List)):
        names: List[str] = []
        for element in target.elts:
            names.extend(_names_in_target(element))
        return names
    if isinstance(target, ast.Starred):
        return _names_in_target(target.value)
    return []
