"""Obs purity: model code writes telemetry, it never reads it back.

Instrumentation is only provably inert if results cannot depend on it.
The model packages (``repro.sim``, ``repro.migration``,
``repro.interconnect``, ``repro.topology``, ``repro.faults``) may
therefore touch exactly one obs object -- the global ``OBS`` facade --
and only its write-side members: ``enabled`` (the guard flag), ``span``,
``event``, ``detail``, ``counter``, ``gauge``, and ``observe``. Reading
metric values, draining records, or reconfiguring the pipeline from
inside the model would let telemetry feed back into simulation results,
so any other import from ``repro.obs`` or attribute of ``OBS`` is
flagged. The runner and CLI are deliberately out of scope: they own the
pipeline's lifecycle (configure/shutdown/capture).
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Set

from repro.lint.findings import Finding, Severity
from repro.lint.module import LintModule, LintProject
from repro.lint.registry import LintRule, register

#: Packages whose results must never depend on telemetry state.
OBS_PURE_SCOPES = ("repro.sim", "repro.migration", "repro.interconnect",
                   "repro.topology", "repro.faults")

#: The write-side surface of the OBS facade (see repro.obs.core).
OBS_ALLOWED_ATTRS = frozenset(
    {"enabled", "span", "event", "detail", "counter", "gauge", "observe"}
)


@register
class ObsPurityRule(LintRule):
    name = "obs-purity"
    severity = Severity.ERROR
    description = (
        "model packages may only write telemetry through OBS "
        "(enabled/span/event/detail/counter/gauge/observe), never read "
        "obs state back"
    )

    def check_module(self, module: LintModule,
                     project: LintProject) -> Iterable[Finding]:
        if not module.in_package(OBS_PURE_SCOPES):
            return ()
        findings: List[Finding] = []
        obs_names = self._collect_imports(module, findings)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Attribute) \
                    and isinstance(node.value, ast.Name) \
                    and node.value.id in obs_names \
                    and node.attr not in OBS_ALLOWED_ATTRS:
                findings.append(self.finding(
                    module, node,
                    f"'OBS.{node.attr}' is not on the write-side "
                    f"allowlist; model code may only use "
                    f"{self._allowlist_label()}",
                ))
        return findings

    def _collect_imports(self, module: LintModule,
                         findings: List[Finding]) -> Set[str]:
        """Local names bound to OBS; flags every other obs import."""
        obs_names: Set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".")[0] == "repro" \
                            and alias.name.startswith("repro.obs"):
                        findings.append(self.finding(
                            module, node,
                            f"'import {alias.name}' in a model package; "
                            f"only 'from repro.obs import OBS' is allowed",
                        ))
            elif isinstance(node, ast.ImportFrom) and not node.level \
                    and node.module \
                    and (node.module == "repro.obs"
                         or node.module.startswith("repro.obs.")):
                for alias in node.names:
                    if node.module == "repro.obs" and alias.name == "OBS":
                        obs_names.add(alias.asname or alias.name)
                    else:
                        findings.append(self.finding(
                            module, node,
                            f"'from {node.module} import {alias.name}' in "
                            f"a model package; only 'from repro.obs "
                            f"import OBS' is allowed",
                        ))
        return obs_names

    @staticmethod
    def _allowlist_label() -> str:
        return "OBS." + "/".join(sorted(OBS_ALLOWED_ATTRS))
