"""Dimensional analysis: never add nanoseconds to cycles.

Quantities in this codebase carry their unit in the identifier suffix
(``_ns``, ``_cycles``, ``_gbps``, ``_bytes``, ``_gb``, ``_ghz``). This
rule tracks those suffixes through assignments and arithmetic and flags
any ``+``/``-``/comparison that combines two *different* known units, as
well as assignments, keyword arguments, and returns whose target suffix
contradicts the value's inferred unit.

Multiplication and division are exempt -- they are how conversions are
expressed -- and :mod:`repro.config.units` is whitelisted wholesale: it
is the one module whose job is to mix units, and every conversion
elsewhere should go through its helpers (or ``CoreConfig``'s wrappers).
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from repro.lint.findings import Finding, Severity
from repro.lint.module import LintModule, LintProject
from repro.lint.registry import LintRule, register
from repro.lint.rules.common import suffix_unit, unit_of

#: Modules allowed to mix units freely: the canonical conversion helpers.
CONVERSION_MODULES = ("repro.config.units",)

_COMPARE_OPS = (ast.Lt, ast.LtE, ast.Gt, ast.GtE, ast.Eq, ast.NotEq)


@register
class UnitMixRule(LintRule):
    name = "units"
    severity = Severity.ERROR
    description = (
        "flags arithmetic or comparisons mixing _ns/_cycles/_gbps/_bytes "
        "quantities outside repro.config.units"
    )

    def check_module(self, module: LintModule,
                     project: LintProject) -> Iterable[Finding]:
        if module.in_package(CONVERSION_MODULES):
            return ()
        findings: List[Finding] = []
        visitor = _UnitVisitor(self, module, findings)
        visitor.visit(module.tree)
        return findings


class _UnitVisitor(ast.NodeVisitor):
    def __init__(self, rule: UnitMixRule, module: LintModule,
                 findings: List[Finding]):
        self.rule = rule
        self.module = module
        self.findings = findings
        self._function_stack: List[str] = []

    # -- helpers -----------------------------------------------------------

    def _flag(self, node: ast.AST, message: str) -> None:
        self.findings.append(self.rule.finding(self.module, node, message))

    def _check_pair(self, node: ast.AST, left: ast.AST, right: ast.AST,
                    context: str) -> None:
        left_unit = unit_of(left)
        right_unit = unit_of(right)
        if left_unit and right_unit and left_unit != right_unit:
            self._flag(node, f"{context} mixes {left_unit} and {right_unit}; "
                             f"convert explicitly via repro.config.units")

    def _check_target(self, node: ast.AST, target: ast.AST,
                      value: ast.AST, context: str) -> None:
        if isinstance(target, ast.Name):
            target_unit = suffix_unit(target.id)
            label = target.id
        elif isinstance(target, ast.Attribute):
            target_unit = suffix_unit(target.attr)
            label = target.attr
        else:
            return
        value_unit = unit_of(value)
        if target_unit and value_unit and target_unit != value_unit:
            self._flag(node, f"{context} binds a {value_unit} expression to "
                             f"'{label}' ({target_unit}); convert explicitly "
                             f"via repro.config.units")

    # -- visitors ----------------------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._function_stack.append(node.name)
        self.generic_visit(node)
        self._function_stack.pop()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._function_stack.append(node.name)
        self.generic_visit(node)
        self._function_stack.pop()

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if isinstance(node.op, (ast.Add, ast.Sub)):
            op = "+" if isinstance(node.op, ast.Add) else "-"
            self._check_pair(node, node.left, node.right, f"'{op}'")
        self.generic_visit(node)

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left] + list(node.comparators)
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if isinstance(op, _COMPARE_OPS):
                self._check_pair(node, left, right, "comparison")
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_target(node, target, node.value, "assignment")
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._check_target(node, node.target, node.value, "assignment")
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if isinstance(node.op, (ast.Add, ast.Sub)):
            self._check_target(node, node.target, node.value,
                               "augmented assignment")
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        for keyword in node.keywords:
            if keyword.arg is None:
                continue
            arg_unit = suffix_unit(keyword.arg)
            value_unit = unit_of(keyword.value)
            if arg_unit and value_unit and arg_unit != value_unit:
                self._flag(keyword.value,
                           f"keyword '{keyword.arg}' ({arg_unit}) receives a "
                           f"{value_unit} expression; convert explicitly via "
                           f"repro.config.units")
        self.generic_visit(node)

    def visit_Return(self, node: ast.Return) -> None:
        if node.value is not None and self._function_stack:
            function = self._function_stack[-1]
            expected = suffix_unit(function)
            actual = unit_of(node.value)
            if expected and actual and expected != actual:
                self._flag(node, f"function '{function}' ({expected}) "
                                 f"returns a {actual} expression; convert "
                                 f"explicitly via repro.config.units")
        self.generic_visit(node)
