"""Signal-safety: handlers must not allocate, lock, or block.

A Python signal handler runs between two arbitrary bytecodes of the
interrupted frame. If it acquires a lock the main thread already
holds (the ``logging`` module lock is the classic), the process
deadlocks; if it writes a checkpoint it can interleave with the very
write it interrupted. The supervised runner's sanctioned pattern is
the *deferred flag*: the handler records the signal and returns, and
the main loop drains the flag at a safe point.

This rule finds every ``signal.signal(sig, handler)`` registration in
the project, resolves ``handler`` through the call graph (plain
functions, ``self._on_signal`` bound methods), and walks everything
reachable from it -- following escaped references too. Any reachable
call matching the deny list below is flagged at its call site.

Unsoundness, by design: handlers that cannot be resolved (restoring a
saved ``previous`` handler, ``signal.SIG_IGN``/``SIG_DFL``, values
computed at runtime) are skipped, and the deny list is a finite label
set -- a blocking call behind an unmatched method name passes. The
rule errs toward silence rather than noise; docs/static-analysis.md
records the escape hatches.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Set, Tuple

from repro.lint.findings import Finding, Severity
from repro.lint.graph import ProgramIndex
from repro.lint.graph.callgraph import FunctionInfo
from repro.lint.module import LintModule, LintProject
from repro.lint.registry import LintRule, register

#: Canonical external callables that are not async-signal-safe.
UNSAFE_CALLS: Tuple[Tuple[str, str], ...] = (
    ("logging.", "allocates and takes the logging module lock"),
    ("print", "buffered I/O on a shared stream"),
    ("open", "blocking file I/O"),
    ("input", "blocking terminal read"),
    ("time.sleep", "blocks inside the handler"),
    ("json.dump", "checkpoint write can interleave with the "
                  "interrupted write"),
    ("pickle.dump", "checkpoint write can interleave with the "
                    "interrupted write"),
    ("subprocess.", "spawns a process from a handler"),
    ("os.system", "spawns a process from a handler"),
)

#: Dynamic-call method labels that indicate locking/blocking/IO.
UNSAFE_LABELS = {
    "acquire": "acquires a lock",
    "put": "queue put can block on the feeder lock",
    "put_nowait": "queue put touches a shared lock",
    "write": "I/O on a shared handle",
    "write_text": "file write from a handler",
    "write_bytes": "file write from a handler",
    "flush": "I/O on a shared handle",
    "sleep": "blocks inside the handler",
    "wait": "blocks inside the handler",
    "info": "allocates and takes the logging module lock",
    "warning": "allocates and takes the logging module lock",
    "error": "allocates and takes the logging module lock",
    "debug": "allocates and takes the logging module lock",
    "exception": "allocates and takes the logging module lock",
    "critical": "allocates and takes the logging module lock",
    "log": "allocates and takes the logging module lock",
}

#: Handler values that are explicitly safe to register.
_SAFE_HANDLERS = frozenset({
    "signal.SIG_IGN",
    "signal.SIG_DFL",
    "signal.default_int_handler",
})


@register
class SignalSafetyRule(LintRule):
    name = "signal-safety"
    severity = Severity.ERROR
    description = (
        "walks the call graph from every registered signal handler and "
        "flags reachable locking, allocating, or blocking calls"
    )
    uses_graph = True

    def check_graph(self, project: LintProject,
                    index: ProgramIndex) -> Iterable[Finding]:
        findings: List[Finding] = []
        roots = self._handler_roots(index)
        if not roots:
            return findings
        seen: Set[Tuple[str, int, int, str]] = set()
        for root in sorted(roots):
            for qual in sorted(index.reachable([root], follow_refs=True)):
                info = index.functions.get(qual)
                if info is None:
                    continue
                self._check_function(index, root, info, findings, seen)
        return findings

    def _handler_roots(self, index: ProgramIndex) -> Set[str]:
        """Project functions registered as signal handlers."""
        roots: Set[str] = set()
        for info, node in index.external_call_sites("signal.signal"):
            handler = _handler_expr(node)
            if handler is None:
                continue
            target = index.resolve_in(info.qual, handler)
            if target is None or target in _SAFE_HANDLERS:
                # Saved previous handlers, lambdas, SIG_IGN/SIG_DFL:
                # nothing we can (or should) walk.
                continue
            resolved = index.function_for(target)
            if resolved is not None:
                roots.add(resolved.qual)
        return roots

    def _check_function(self, index: ProgramIndex, root: str,
                        info: FunctionInfo, findings: List[Finding],
                        seen: Set[Tuple[str, int, int, str]]) -> None:
        module = index.project.module(info.module)
        if module is None:
            return
        for canonical, node in info.external_calls:
            reason = _unsafe_call_reason(canonical)
            if reason is not None:
                self._flag(module, node, root, info, canonical, reason,
                           findings, seen)
        for label, node in info.dynamic_calls:
            reason = UNSAFE_LABELS.get(label)
            if reason is not None:
                self._flag(module, node, root, info, f".{label}()", reason,
                           findings, seen)

    def _flag(self, module: LintModule, node: ast.AST, root: str,
              info: FunctionInfo, what: str, reason: str,
              findings: List[Finding],
              seen: Set[Tuple[str, int, int, str]]) -> None:
        key = (info.module, getattr(node, "lineno", 1),
               getattr(node, "col_offset", 0), what)
        if key in seen:
            return
        seen.add(key)
        handler = root.rsplit(".", 1)[-1]
        where = "" if info.qual == root \
            else f" via '{info.name}'"
        findings.append(self.finding(
            module, node,
            f"signal handler '{handler}' reaches {what}{where}: {reason}; "
            f"set a flag in the handler and act on it from the main loop",
        ))


def _handler_expr(node: ast.Call) -> Optional[ast.expr]:
    """The handler argument of a ``signal.signal`` call."""
    if len(node.args) >= 2:
        return node.args[1]
    for keyword in node.keywords:
        if keyword.arg == "handler":
            return keyword.value
    return None


def _unsafe_call_reason(canonical: str) -> Optional[str]:
    for pattern, reason in UNSAFE_CALLS:
        if pattern.endswith("."):
            if canonical.startswith(pattern):
                return reason
        elif canonical == pattern or canonical.startswith(pattern + "."):
            return reason
    return None
