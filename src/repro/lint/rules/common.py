"""Shared AST helpers for the project lint rules."""

from __future__ import annotations

import ast
from typing import Dict, Optional, Tuple

#: Identifier suffix -> unit label, longest suffix first so ``_gbps``
#: wins over ``_gb`` and ``_ns`` beats ``_s``. These are the quantity
#: kinds the timing model mixes at its peril: nanoseconds, seconds, core
#: cycles, GB/s rates, byte counts.
UNIT_SUFFIXES: Tuple[Tuple[str, str], ...] = (
    ("_cycles", "cycles"),
    ("_bytes", "bytes"),
    ("_gbps", "gbps"),
    ("_ghz", "ghz"),
    ("_ns", "ns"),
    ("_gb", "gb"),
    ("_s", "s"),
)


def suffix_unit(identifier: str) -> Optional[str]:
    """Unit implied by an identifier's suffix (``None`` if unitless)."""
    lowered = identifier.lower()
    for suffix, unit in UNIT_SUFFIXES:
        if lowered.endswith(suffix):
            return unit
    return None


def unit_of(node: ast.AST) -> Optional[str]:
    """Infer the unit of an expression from identifier suffixes.

    Multiplication and division legitimately *convert* units, so they
    yield ``None``; addition and subtraction propagate a known unit when
    the other operand is unitless (``total_ns = base_ns + slack``). A
    known-vs-known mismatch under ``+``/``-`` also yields ``None`` here;
    the units rule reports the mismatch at the operator itself.
    """
    if isinstance(node, ast.Name):
        return suffix_unit(node.id)
    if isinstance(node, ast.Attribute):
        return suffix_unit(node.attr)
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name):
            return suffix_unit(func.id)
        if isinstance(func, ast.Attribute):
            return suffix_unit(func.attr)
        return None
    if isinstance(node, ast.UnaryOp):
        return unit_of(node.operand)
    if isinstance(node, ast.BinOp):
        if isinstance(node.op, (ast.Add, ast.Sub)):
            left = unit_of(node.left)
            right = unit_of(node.right)
            if left is not None and right is not None:
                return left if left == right else None
            return left or right
        return None
    if isinstance(node, ast.IfExp):
        body = unit_of(node.body)
        orelse = unit_of(node.orelse)
        return body if body == orelse else None
    if isinstance(node, ast.Starred):
        return None
    return None


def dotted_name(node: ast.AST) -> Optional[str]:
    """Render ``a.b.c`` attribute/name chains; ``None`` for anything else."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = dotted_name(node.value)
        return f"{base}.{node.attr}" if base is not None else None
    return None


def import_aliases(tree: ast.Module) -> Dict[str, str]:
    """Map local names to the canonical modules bound by plain imports.

    ``import numpy as np`` yields ``{"np": "numpy"}``; ``from datetime
    import datetime`` yields ``{"datetime": "datetime.datetime"}``.
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                canonical = alias.name if alias.asname else alias.name.split(".")[0]
                aliases[local] = canonical
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                if alias.name == "*":
                    continue
                aliases[alias.asname or alias.name] = \
                    f"{node.module}.{alias.name}"
    return aliases


def resolve_call(node: ast.Call, aliases: Dict[str, str]) -> Optional[str]:
    """Canonical dotted target of a call, resolving import aliases."""
    name = dotted_name(node.func)
    if name is None:
        return None
    head, _, rest = name.partition(".")
    canonical = aliases.get(head, head)
    return f"{canonical}.{rest}" if rest else canonical


def numeric_literal(node: ast.AST) -> Optional[float]:
    """The value of an (optionally negated) int/float literal, else None."""
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = numeric_literal(node.operand)
        return -inner if inner is not None else None
    if isinstance(node, ast.Constant) and not isinstance(node.value, bool) \
            and isinstance(node.value, (int, float)):
        return float(node.value)
    return None
