"""Fork-safety: state that must not silently cross a process fork.

PR 5's chaos soak found the canonical bug this rule now catches
statically: a shared ``multiprocessing.Queue`` handed to forked
workers can be forked *while its feeder thread holds the internal send
lock*, deadlocking every child that touches it. The supervised pool
was rebuilt around per-worker ``SimpleQueue``/``Pipe`` pairs; this
rule keeps that lesson enforced.

Using the whole-program index, the rule partitions the call graph at
every fork site (``multiprocessing.Process(target=...)``,
``ctx.Process(...)``, ``os.fork()``): the *worker partition* is
everything reachable -- calls and escaped references -- from the
resolved ``target=`` entry points; everything else runs in the parent.
Three checks:

* ``multiprocessing.Queue``/``JoinableQueue`` created in a module that
  forks: the feeder-thread lock makes them fork-hostile; per-worker
  ``SimpleQueue``/``Pipe`` (what the supervisor uses) have no feeder
  thread and are exempt.
* synchronization primitives and file handles bound to module-level
  names at import time (pre-fork) and referenced from the worker
  partition: the child inherits a *copy* whose lock state is whatever
  the parent's happened to be at fork time.
* a module-level name rebound (``global``) or mutated in place by
  *distinct* functions on both sides of the partition: after fork the
  two sides write separate copies that silently diverge. Routing all
  writes through one shared helper is the sanctioned fix -- a single
  writer never trips this check.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.lint.findings import Finding, Severity
from repro.lint.graph import ProgramIndex
from repro.lint.graph.callgraph import MODULE_BODY, FunctionInfo
from repro.lint.module import LintProject
from repro.lint.registry import LintRule, register

#: Calls that fork the process (or create a forked child).
FORK_CALLS = frozenset({
    "multiprocessing.Process",
    "multiprocessing.context.Process",
    "os.fork",
})

#: Attribute-call labels treated as fork sites when the receiver is
#: dynamic (``ctx.Process(...)`` where ``ctx = mp.get_context(...)``).
FORK_LABELS = frozenset({"Process"})

#: Queue types with a feeder thread: fork-hostile by construction.
FEEDER_QUEUES = frozenset({
    "multiprocessing.Queue",
    "multiprocessing.JoinableQueue",
})

#: Constructors whose product must not be created pre-fork and shared.
PREFORK_HAZARDS = {
    "threading.Lock": "lock",
    "threading.RLock": "lock",
    "threading.Condition": "condition",
    "threading.Event": "event",
    "threading.Semaphore": "semaphore",
    "threading.BoundedSemaphore": "semaphore",
    "multiprocessing.Queue": "queue",
    "multiprocessing.JoinableQueue": "queue",
    "open": "file handle",
}


@register
class ForkSafetyRule(LintRule):
    name = "fork-safety"
    severity = Severity.ERROR
    description = (
        "flags feeder-thread queues, pre-fork primitives, and module "
        "state written from both sides of a process fork"
    )
    uses_graph = True

    def check_graph(self, project: LintProject,
                    index: ProgramIndex) -> Iterable[Finding]:
        findings: List[Finding] = []
        fork_sites = _fork_sites(index)
        if not fork_sites:
            return findings
        forking_modules = {info.module for info, _ in fork_sites}
        workers = _worker_entries(index, fork_sites)
        worker_partition = index.reachable(workers, follow_refs=True)

        self._check_feeder_queues(index, forking_modules, findings)
        self._check_prefork_state(index, fork_sites, forking_modules,
                                  worker_partition, findings)
        self._check_split_writes(index, forking_modules,
                                 worker_partition, findings)
        return findings

    # -- checks --------------------------------------------------------------

    def _check_feeder_queues(self, index: ProgramIndex,
                             forking_modules: Set[str],
                             findings: List[Finding]) -> None:
        for info in index.functions.values():
            if info.module not in forking_modules:
                continue
            for canonical, node in info.external_calls:
                if canonical in FEEDER_QUEUES:
                    module = index.project.module(info.module)
                    if module is None:
                        continue
                    findings.append(self.finding(
                        module, node,
                        f"{canonical} created in a module that forks "
                        f"workers; its feeder thread can be forked "
                        f"holding the send lock and deadlock the child "
                        f"-- use per-worker SimpleQueue/Pipe instead",
                    ))

    def _check_prefork_state(self, index: ProgramIndex,
                             fork_sites: "List[Tuple[FunctionInfo, ast.Call]]",
                             forking_modules: Set[str],
                             worker_partition: Set[str],
                             findings: List[Finding]) -> None:
        passed = _names_passed_to_fork(fork_sites)
        for module_name in sorted(forking_modules):
            module = index.project.module(module_name)
            body = index.calls.module_body(module_name)
            if module is None or body is None:
                continue
            for name, kind, node in _module_level_hazards(
                    index, module_name, module.tree):
                if kind == "queue":
                    continue  # already flagged by the feeder-queue check
                users = _worker_readers(index, worker_partition,
                                        module_name, name)
                if name in passed.get(module_name, set()):
                    users = users | {"fork-site args"}
                if users:
                    sample = ", ".join(sorted(users)[:2])
                    findings.append(self.finding(
                        module, node,
                        f"module-level {kind} '{name}' is created at "
                        f"import time (pre-fork) and reachable from "
                        f"worker code ({sample}); the child inherits a "
                        f"copy with undefined state -- create it "
                        f"after the fork, in the worker",
                    ))

    def _check_split_writes(self, index: ProgramIndex,
                            forking_modules: Set[str],
                            worker_partition: Set[str],
                            findings: List[Finding]) -> None:
        writers: Dict[Tuple[str, str], List[FunctionInfo]] = {}
        for info in index.functions.values():
            if info.module not in forking_modules:
                continue
            if info.name == MODULE_BODY:
                continue  # import-time init predates any fork
            for name in set(info.global_writes) | set(info.mutations):
                writers.setdefault((info.module, name), []).append(info)
        for (module_name, name), funcs in sorted(writers.items()):
            inside = [f for f in funcs if f.qual in worker_partition]
            outside = [f for f in funcs if f.qual not in worker_partition]
            if not inside or not outside:
                continue
            module = index.project.module(module_name)
            if module is None:
                continue
            for writer in outside:
                findings.append(self.finding(
                    module, writer.node,
                    f"module-level '{name}' is written by worker-side "
                    f"code ({inside[0].name}) and parent-side code "
                    f"({writer.name}); after fork these are separate "
                    f"copies that silently diverge -- route every "
                    f"write through one shared helper",
                ))


# -- graph probes ------------------------------------------------------------


def _fork_sites(index: ProgramIndex,
                ) -> List[Tuple[FunctionInfo, ast.Call]]:
    """Every call that forks, with the function it occurs in."""
    sites: List[Tuple[FunctionInfo, ast.Call]] = []
    for info in index.functions.values():
        for canonical, node in info.external_calls:
            if canonical in FORK_CALLS:
                sites.append((info, node))
        for label, node in info.dynamic_calls:
            if label in FORK_LABELS:
                sites.append((info, node))
    sites.sort(key=lambda pair: (pair[0].module, pair[1].lineno))
    return sites


def _worker_entries(index: ProgramIndex,
                    sites: List[Tuple[FunctionInfo, ast.Call]],
                    ) -> Set[str]:
    """Resolved ``target=`` entry points of every fork site."""
    entries: Set[str] = set()
    for info, node in sites:
        for keyword in node.keywords:
            if keyword.arg != "target":
                continue
            target = index.resolve_in(info.qual, keyword.value)
            if target is not None \
                    and index.function_for(target) is not None:
                entries.add(index.function_for(target).qual)
    return entries


def _names_passed_to_fork(sites: List[Tuple[FunctionInfo, ast.Call]],
                          ) -> Dict[str, Set[str]]:
    """Bare names handed to fork sites via ``args=``/``kwargs=``.

    A module-level queue passed as ``Process(args=(Q,))`` reaches the
    worker as a parameter, so the worker never names the global; the
    fork site itself is the evidence it crosses.
    """
    passed: Dict[str, Set[str]] = {}
    for info, node in sites:
        for keyword in node.keywords:
            if keyword.arg not in ("args", "kwargs"):
                continue
            for child in ast.walk(keyword.value):
                if isinstance(child, ast.Name) \
                        and isinstance(child.ctx, ast.Load):
                    passed.setdefault(info.module, set()).add(child.id)
    return passed


def _module_level_hazards(index: ProgramIndex, module_name: str,
                          tree: ast.Module,
                          ) -> List[Tuple[str, str, ast.stmt]]:
    """``(name, kind, stmt)`` for hazardous import-time bindings."""
    body_qual = f"{module_name}.{MODULE_BODY}"
    hazards: List[Tuple[str, str, ast.stmt]] = []
    for stmt in tree.body:
        target_name: Optional[str] = None
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                and isinstance(stmt.targets[0], ast.Name):
            target_name = stmt.targets[0].id
            value = stmt.value
        elif isinstance(stmt, ast.AnnAssign) \
                and isinstance(stmt.target, ast.Name):
            target_name = stmt.target.id
            value = stmt.value
        if target_name is None or not isinstance(value, ast.Call):
            continue
        canonical = index.calls.resolve_in(body_qual, value.func)
        if canonical in PREFORK_HAZARDS:
            hazards.append((target_name, PREFORK_HAZARDS[canonical], stmt))
    return hazards


def _worker_readers(index: ProgramIndex, worker_partition: Set[str],
                    module_name: str, global_name: str) -> Set[str]:
    """Worker-partition functions that reference a module-level name."""
    canonical = f"{module_name}.{global_name}"
    readers: Set[str] = set()
    for qual in worker_partition:
        info = index.functions.get(qual)
        if info is None or info.name == MODULE_BODY:
            continue
        if info.module == module_name:
            for node in ast.walk(info.node):
                if isinstance(node, ast.Name) \
                        and isinstance(node.ctx, ast.Load) \
                        and node.id == global_name:
                    readers.add(info.name)
                    break
        else:
            for node in ast.walk(info.node):
                if isinstance(node, ast.Attribute) \
                        and index.resolve_in(qual, node) == canonical:
                    readers.add(info.name)
                    break
    return readers
