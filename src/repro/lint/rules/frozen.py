"""Frozen-hashable: dataclasses used as dict/set keys must be frozen.

The simulator caches one timing model per distinct
:class:`~repro.faults.FaultState` (``Dict[FaultState, ...]``); any
dataclass used that way must be ``frozen=True`` (or ``eq=False``, which
falls back to identity hashing) and must hold only hashable fields --
a ``list`` field inside a frozen dataclass still raises ``TypeError``
at the first cache insert.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.lint.findings import Finding, Severity
from repro.lint.module import LintModule, LintProject
from repro.lint.registry import LintRule, register

#: Subscripted container heads whose FIRST type parameter is a key.
_KEYED_HEADS = {"Dict", "dict", "Mapping", "MutableMapping", "DefaultDict",
                "OrderedDict", "Counter"}
#: Subscripted container heads whose only parameter must be hashable.
_SET_HEADS = {"Set", "set", "FrozenSet", "frozenset", "AbstractSet"}

#: Annotation heads that make a field unhashable.
_UNHASHABLE_HEADS = {"List", "list", "Dict", "dict", "Set", "set",
                     "bytearray", "ndarray", "DefaultDict", "defaultdict"}


@dataclass
class _DataclassInfo:
    name: str
    module: str
    path: str
    node: ast.ClassDef
    frozen: bool
    eq: bool
    field_annotations: List[Tuple[str, ast.AST]] = field(default_factory=list)


def _head_name(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _dataclass_flags(decorator: ast.AST) -> Optional[Tuple[bool, bool]]:
    """(frozen, eq) if ``decorator`` is a dataclass decorator, else None."""
    keywords: List[ast.keyword] = []
    target = decorator
    if isinstance(decorator, ast.Call):
        target = decorator.func
        keywords = decorator.keywords
    if _head_name(target) != "dataclass":
        return None
    frozen, eq = False, True
    for keyword in keywords:
        if keyword.arg in ("frozen", "eq") \
                and isinstance(keyword.value, ast.Constant):
            if keyword.arg == "frozen":
                frozen = bool(keyword.value.value)
            else:
                eq = bool(keyword.value.value)
    return frozen, eq


def _collect_dataclasses(
        project: LintProject) -> Dict[str, List[_DataclassInfo]]:
    classes: Dict[str, List[_DataclassInfo]] = {}
    for module in project:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for decorator in node.decorator_list:
                flags = _dataclass_flags(decorator)
                if flags is None:
                    continue
                fields = [
                    (stmt.target.id, stmt.annotation)
                    for stmt in node.body
                    if isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Name)
                ]
                classes.setdefault(node.name, []).append(_DataclassInfo(
                    name=node.name, module=module.name, path=module.path,
                    node=node, frozen=flags[0], eq=flags[1],
                    field_annotations=fields,
                ))
                break
    return classes


def _subscript_slice(node: ast.Subscript) -> ast.AST:
    sliced: ast.AST = node.slice
    # Python < 3.9 wraps subscript slices in ast.Index.
    if sliced.__class__.__name__ == "Index":
        sliced = sliced.value  # type: ignore[attr-defined]
    return sliced


def _key_expressions(node: ast.Subscript) -> List[ast.AST]:
    """Type expressions occupying a key slot in a Dict/Set subscript."""
    head = _head_name(node.value)
    sliced = _subscript_slice(node)
    if head in _KEYED_HEADS:
        if isinstance(sliced, ast.Tuple) and sliced.elts:
            return [sliced.elts[0]]
        return []
    if head in _SET_HEADS and not isinstance(sliced, ast.Tuple):
        return [sliced]
    return []


def _unhashable_annotation(annotation: ast.AST) -> Optional[str]:
    """Name of the first unhashable container in ``annotation``, if any."""
    for node in ast.walk(annotation):
        name = _head_name(node)
        if name in _UNHASHABLE_HEADS:
            return name
    return None


@register
class FrozenKeyRule(LintRule):
    name = "frozen-key"
    severity = Severity.ERROR
    description = (
        "dataclasses used as dict/set keys must be frozen=True with "
        "hashable fields"
    )

    def check_project(self, project: LintProject) -> Iterable[Finding]:
        classes = _collect_dataclasses(project)
        findings: List[Finding] = []
        flagged: Set[Tuple[str, ...]] = set()
        for module in project:
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Subscript):
                    continue
                for key_expr in _key_expressions(node):
                    key_name = _head_name(key_expr)
                    if key_name is None or key_name not in classes:
                        continue
                    for info in classes[key_name]:
                        self._check_key_class(info, module, node, flagged,
                                              findings)
        findings.sort(key=lambda finding: finding.sort_key)
        return findings

    def _check_key_class(self, info: _DataclassInfo, use_module: LintModule,
                         use_node: ast.AST, flagged: Set[Tuple[str, ...]],
                         findings: List[Finding]) -> None:
        if info.eq and not info.frozen:
            key = ("frozen", info.module, info.name)
            if key not in flagged:
                flagged.add(key)
                findings.append(Finding(
                    rule=self.name, severity=self.severity,
                    module=info.module, path=info.path,
                    line=info.node.lineno, col=info.node.col_offset + 1,
                    message=(f"dataclass '{info.name}' is used as a "
                             f"dict/set key (e.g. in {use_module.name}) "
                             f"but is not frozen=True"),
                ))
            return
        for field_name, annotation in info.field_annotations:
            container = _unhashable_annotation(annotation)
            if container is not None:
                key = ("field", info.module, info.name, field_name)
                if key not in flagged:
                    flagged.add(key)
                    findings.append(Finding(
                        rule=self.name, severity=self.severity,
                        module=info.module, path=info.path,
                        line=annotation.lineno,
                        col=annotation.col_offset + 1,
                        message=(f"key dataclass '{info.name}' has "
                                 f"unhashable field '{field_name}' "
                                 f"({container}); use Tuple/FrozenSet"),
                    ))
