"""Layering: the declared module-dependency contract, enforced.

The reproduction is layered so the *model* (config, topology,
interconnect, sim...) never knows about the *harness* (runner, cli,
experiments) or the *tooling* (lint): headline numbers must be
computable from the model layers alone, and the lint package must be
importable into any checkout without dragging the simulator in.

``CONTRACT`` below is the declared intent -- for each top-level unit
under ``repro``, the units it may import from. It is checked against
the **real** import graph every lint run: an ``import`` statement
creating an edge the contract does not allow is flagged at its line.
DESIGN.md carries the same contract as a diagram; this rule is the
executable copy.

Two historical back-edges are sanctioned explicitly rather than
papered over: ``topology <-> interconnect`` (link indexing lives with
the topology, load accounting with the interconnect) and ``topology ->
faults`` (degraded-link state is part of the topology view). New
cycles do not get this treatment -- tightening an entry here is always
allowed, loosening one needs a DESIGN.md update in the same commit.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from repro.lint.findings import Finding, Severity
from repro.lint.graph import ProgramIndex
from repro.lint.module import LintProject
from repro.lint.registry import LintRule, register

#: The project namespace the contract governs.
ROOT = "repro"

#: Unit -> units it may import from. Units are the first path segment
#: under :data:`ROOT` (``repro.sim.timing`` -> ``sim``; ``repro.cli``
#: -> ``cli``; the ``repro/__init__`` facade itself is ``<root>``).
CONTRACT: Dict[str, Set[str]] = {
    # -- foundation: pure data, no project imports --------------------------
    "config": set(),
    "workloads": set(),
    "lint": set(),
    # -- model layers -------------------------------------------------------
    "tracking": {"config"},
    "cache": {"config"},
    "trace": {"workloads"},
    "topology": {"config", "interconnect", "faults"},
    "interconnect": {"config", "topology"},
    "coherence": {"topology"},
    "placement": {"topology"},
    "migration": {"config", "obs", "placement", "topology", "tracking"},
    "faults": {"migration", "obs", "placement", "topology"},
    "memory": {"config", "interconnect"},
    "metrics": {"config", "topology", "workloads"},
    "replication": {"config", "workloads"},
    "replay": {"cache", "coherence", "config", "memory", "placement",
               "topology", "trace"},
    "sim": {"config", "faults", "interconnect", "metrics", "migration",
            "obs", "placement", "replication", "topology", "trace",
            "tracking", "workloads"},
    "analysis": {"config", "interconnect", "sim", "topology", "trace",
                 "workloads"},
    # -- observability: metrics only, so any layer may emit -----------------
    "obs": {"metrics"},
    # -- persistence: reads obs traces and exported results; the sim
    #    never imports it, so headline numbers need no database ---------------
    "store": {"config", "obs"},
    # -- harness: may see the model, never the other way around -------------
    "runner": {"obs"},
    "experiments": {"config", "faults", "metrics", "obs", "replication",
                    "runner", "sim", "topology", "trace", "workloads"},
    # -- service: generic job machinery over the runner; the CLI
    #    injects the experiment catalog and scenario runner, so serve
    #    never imports sim/experiments/migration directly ---------------------
    "serve": {"config", "obs", "runner"},
    "cli": {"config", "experiments", "lint", "metrics", "obs", "runner",
            "serve", "store", "topology", "workloads"},
    "__main__": {"cli"},
    # -- the package facade re-exports the public surface --------------------
    "<root>": {"config", "experiments", "sim", "topology", "workloads"},
}


def unit_of_module(name: str) -> Optional[str]:
    """The contract unit a module belongs to, or None outside ROOT."""
    if name == ROOT:
        return "<root>"
    if not name.startswith(ROOT + "."):
        return None
    return name.split(".")[1]


@register
class LayeringRule(LintRule):
    name = "layering"
    severity = Severity.ERROR
    description = (
        "checks the real import graph against the declared "
        "module-dependency contract (model never imports harness)"
    )
    uses_graph = True

    def check_graph(self, project: LintProject,
                    index: ProgramIndex) -> Iterable[Finding]:
        findings: List[Finding] = []
        for edge in index.imports.edges:
            importer_unit = unit_of_module(edge.importer)
            imported_unit = unit_of_module(edge.imported)
            if importer_unit is None or imported_unit is None:
                continue
            if importer_unit == imported_unit:
                continue  # intra-unit imports are always allowed
            module = project.module(edge.importer)
            if module is None:
                continue
            allowed = CONTRACT.get(importer_unit)
            if allowed is None:
                findings.append(Finding(
                    rule=self.name, severity=self.severity,
                    module=module.name, path=module.path,
                    line=edge.lineno, col=edge.col + 1,
                    message=(f"unit '{importer_unit}' is not in the "
                             f"module-dependency contract; declare its "
                             f"allowed imports in "
                             f"repro.lint.rules.layering and DESIGN.md"),
                ))
            elif imported_unit not in allowed:
                findings.append(Finding(
                    rule=self.name, severity=self.severity,
                    module=module.name, path=module.path,
                    line=edge.lineno, col=edge.col + 1,
                    message=(f"'{importer_unit}' may not import "
                             f"'{imported_unit}' (contract allows: "
                             f"{', '.join(sorted(allowed)) or 'nothing'}); "
                             f"loosening the contract requires a DESIGN.md "
                             f"update"),
                ))
        return findings
