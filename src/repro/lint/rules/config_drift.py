"""Config drift: parameters must be consumed, and constants centralized.

Two failure modes of a growing simulator are checked:

1. **Dead parameters** -- a field declared on a config dataclass in
   :mod:`repro.config.parameters` that no other module ever reads. Such
   a field silently stops describing the simulated system (the engine
   hardcoding its own copy of the value is the classic cause), so sweeps
   that vary it do nothing.
2. **Magic latency/bandwidth literals** -- a numeric literal combined
   with a ``_ns``/``_gbps`` quantity outside ``repro.config``. Latencies
   and bandwidths are calibrated paper parameters; burying one as a
   literal in a model file detaches it from the config it must track.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Set, Tuple

from repro.lint.findings import Finding, Severity
from repro.lint.module import LintModule, LintProject
from repro.lint.registry import LintRule, register
from repro.lint.rules.common import numeric_literal, suffix_unit, unit_of

#: The module whose dataclass fields define the simulated system.
PARAMETERS_MODULE = "repro.config.parameters"

#: Package whose modules may define latency/bandwidth literals.
CONFIG_PACKAGE = "repro.config"

#: Units whose literals are calibrated parameters, not incidental math.
_GUARDED_UNITS = {"ns", "gbps"}

#: Literal values that are structurally harmless (identity elements,
#: sign flips, halving) rather than smuggled calibration constants.
_ALLOWED_LITERALS = {0.0, 1.0, 2.0, -1.0}


def _is_dataclass_decorated(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) \
            else decorator
        if isinstance(target, ast.Name) and target.id == "dataclass":
            return True
        if isinstance(target, ast.Attribute) and target.attr == "dataclass":
            return True
    return False


def _declared_fields(module: LintModule) -> List[Tuple[str, str, ast.AST]]:
    """(class, field, node) for every dataclass field in ``module``."""
    fields = []
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.ClassDef) \
                or not _is_dataclass_decorated(node):
            continue
        for stmt in node.body:
            if isinstance(stmt, ast.AnnAssign) \
                    and isinstance(stmt.target, ast.Name) \
                    and not stmt.target.id.startswith("_"):
                fields.append((node.name, stmt.target.id, stmt))
    return fields


def _consumed_names(project: LintProject) -> Set[str]:
    """Attribute and keyword names read anywhere in the project.

    Attribute reads inside the declaring module count too: a field like
    ``frequency_ghz`` consumed only through same-module conversion
    properties is still consumed. Bare declarations never produce an
    ``Attribute`` node, so an unread field cannot satisfy itself.
    """
    consumed: Set[str] = set()
    for module in project:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Attribute):
                consumed.add(node.attr)
            elif isinstance(node, ast.Call):
                for keyword in node.keywords:
                    if keyword.arg is not None:
                        consumed.add(keyword.arg)
            elif isinstance(node, ast.Constant) \
                    and isinstance(node.value, str):
                # getattr(..., "field") / replace-style string references.
                consumed.add(node.value)
    return consumed


def _bad_literal(node: ast.AST) -> bool:
    value = numeric_literal(node)
    return value is not None and value not in _ALLOWED_LITERALS


@register
class ConfigDriftRule(LintRule):
    name = "config-drift"
    severity = Severity.WARNING
    description = (
        "flags config fields no module consumes and magic ns/GB/s "
        "literals outside repro.config"
    )

    def check_project(self, project: LintProject) -> Iterable[Finding]:
        findings: List[Finding] = []
        self._check_dead_fields(project, findings)
        for module in project:
            if not module.in_package((CONFIG_PACKAGE,)):
                self._check_magic_literals(module, findings)
        findings.sort(key=lambda finding: finding.sort_key)
        return findings

    # -- dead parameters ---------------------------------------------------

    def _check_dead_fields(self, project: LintProject,
                           findings: List[Finding]) -> None:
        parameters = project.module(PARAMETERS_MODULE)
        if parameters is None:
            return
        consumed = _consumed_names(project)
        for class_name, field_name, node in _declared_fields(parameters):
            if field_name not in consumed:
                findings.append(self.finding(
                    parameters, node,
                    f"config field {class_name}.{field_name} is never "
                    f"consumed outside {PARAMETERS_MODULE}; wire it into "
                    f"the model (or a report) or remove it",
                ))

    # -- magic literals ----------------------------------------------------

    def _check_magic_literals(self, module: LintModule,
                              findings: List[Finding]) -> None:
        field_defaults = self._dataclass_field_nodes(module)
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                if id(node) not in field_defaults:
                    self._check_binding(module, node, findings)
            elif isinstance(node, ast.BinOp) \
                    and isinstance(node.op, (ast.Add, ast.Sub)):
                self._check_operands(module, node, node.left, node.right,
                                     findings)
            elif isinstance(node, ast.Compare):
                operands = [node.left] + list(node.comparators)
                for left, right in zip(operands, operands[1:]):
                    self._check_operands(module, node, left, right, findings)
            elif isinstance(node, ast.Call):
                for keyword in node.keywords:
                    if keyword.arg is None:
                        continue
                    unit = suffix_unit(keyword.arg)
                    if unit in _GUARDED_UNITS \
                            and _bad_literal(keyword.value):
                        self._flag(module, keyword.value, keyword.arg, unit,
                                   findings)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._check_defaults(module, node, findings)

    @staticmethod
    def _dataclass_field_nodes(module: LintModule) -> Set[int]:
        """Field-declaration statements of dataclasses in ``module``.

        A defaulted, annotated dataclass field is a *declared* parameter
        (named, documented, overridable), not a magic literal.
        """
        nodes: Set[int] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef) \
                    and _is_dataclass_decorated(node):
                for stmt in node.body:
                    if isinstance(stmt, ast.AnnAssign):
                        nodes.add(id(stmt))
        return nodes

    def _check_binding(self, module: LintModule, node: ast.AST,
                       findings: List[Finding]) -> None:
        targets: List[ast.AST]
        if isinstance(node, ast.Assign):
            targets, value = list(node.targets), node.value
        else:
            targets, value = [node.target], node.value  # type: ignore[attr-defined]
        if value is None or not _bad_literal(value):
            return
        for target in targets:
            name = None
            if isinstance(target, ast.Name):
                name = target.id
            elif isinstance(target, ast.Attribute):
                name = target.attr
            if name is None:
                continue
            unit = suffix_unit(name)
            if unit in _GUARDED_UNITS:
                self._flag(module, value, name, unit, findings)

    def _check_operands(self, module: LintModule, node: ast.AST,
                        left: ast.AST, right: ast.AST,
                        findings: List[Finding]) -> None:
        for literal, other in ((left, right), (right, left)):
            if _bad_literal(literal) and unit_of(other) in _GUARDED_UNITS:
                label = getattr(other, "attr", getattr(other, "id", "value"))
                self._flag(module, literal, str(label),
                           str(unit_of(other)), findings)
                return

    def _check_defaults(self, module: LintModule, node: ast.AST,
                        findings: List[Finding]) -> None:
        args = node.args  # type: ignore[attr-defined]
        positional = list(args.posonlyargs) + list(args.args)
        pairs = list(zip(reversed(positional), reversed(args.defaults)))
        pairs += [(arg, default) for arg, default
                  in zip(args.kwonlyargs, args.kw_defaults)
                  if default is not None]
        for arg, default in pairs:
            unit = suffix_unit(arg.arg)
            if unit in _GUARDED_UNITS and _bad_literal(default):
                self._flag(module, default, arg.arg, unit, findings)

    def _flag(self, module: LintModule, node: ast.AST, name: str,
              unit: str, findings: List[Finding]) -> None:
        value = numeric_literal(node)
        rendered = f"{value:g}" if value is not None else "literal"
        findings.append(self.finding(
            module, node,
            f"magic {unit} literal {rendered} combined with '{name}' "
            f"outside repro.config; name it in the system configuration",
        ))
