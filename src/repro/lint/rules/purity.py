"""Sim purity: no I/O or console output inside the timing hot paths.

``repro.sim`` and ``repro.metrics`` sit inside the per-phase inner loop
of every experiment; a stray ``print`` or file read there skews timing
sweeps, breaks JSON output capture, and couples simulation results to
the host filesystem. All I/O belongs at the edges (``repro.cli``,
``repro.experiments.export``, ``repro.runner``).
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from repro.lint.findings import Finding, Severity
from repro.lint.module import LintModule, LintProject
from repro.lint.registry import LintRule, register
from repro.lint.rules.common import import_aliases, resolve_call

#: Packages that must stay free of I/O side effects.
PURE_SCOPES = ("repro.sim", "repro.metrics", "repro.interconnect",
               "repro.topology")

#: Builtins that touch the console or the filesystem.
_IMPURE_BUILTINS = {"print", "input", "open", "breakpoint"}

#: Dotted call targets that perform I/O or spawn processes.
_IMPURE_CALLS = {
    "sys.stdout.write", "sys.stderr.write", "sys.stdout.flush",
    "os.system", "os.popen", "os.remove", "os.unlink", "os.mkdir",
    "os.makedirs", "os.rename", "os.replace",
}

#: Module imports that have no business in a pure timing model.
_IMPURE_IMPORT_ROOTS = {
    "subprocess", "socket", "requests", "urllib", "http", "shutil",
}

#: Attribute methods that read or write files regardless of receiver
#: (pathlib.Path and file-object idioms).
_IO_METHODS = {
    "write_text", "read_text", "write_bytes", "read_bytes",
    "unlink", "mkdir", "rmdir", "touch", "rename",
}


@register
class SimPurityRule(LintRule):
    name = "sim-purity"
    severity = Severity.ERROR
    description = (
        "forbids print/file/network I/O inside the repro.sim, repro.metrics, "
        "repro.interconnect, and repro.topology hot paths"
    )

    def check_module(self, module: LintModule,
                     project: LintProject) -> Iterable[Finding]:
        if not module.in_package(PURE_SCOPES):
            return ()
        findings: List[Finding] = []
        aliases = import_aliases(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                self._check_import(module, node,
                                   [alias.name for alias in node.names],
                                   findings)
            elif isinstance(node, ast.ImportFrom) and not node.level:
                self._check_import(module, node, [node.module or ""],
                                   findings)
            elif isinstance(node, ast.Call):
                self._check_call(module, node, aliases, findings)
        return findings

    def _check_import(self, module: LintModule, node: ast.AST,
                      names: List[str], findings: List[Finding]) -> None:
        for name in names:
            root = name.split(".")[0]
            if root in _IMPURE_IMPORT_ROOTS:
                findings.append(self.finding(
                    module, node,
                    f"importing '{root}' in a pure simulation module; "
                    f"I/O belongs in repro.cli/repro.experiments.export",
                ))

    def _check_call(self, module: LintModule, node: ast.Call,
                    aliases: dict, findings: List[Finding]) -> None:
        if isinstance(node.func, ast.Name) \
                and node.func.id in _IMPURE_BUILTINS:
            findings.append(self.finding(
                module, node,
                f"'{node.func.id}()' in a simulation hot path; return data "
                f"and let the caller do I/O",
            ))
            return
        target = resolve_call(node, aliases)
        if target is not None and target in _IMPURE_CALLS:
            findings.append(self.finding(
                module, node,
                f"'{target}' performs I/O inside a pure simulation module",
            ))
            return
        if isinstance(node.func, ast.Attribute) \
                and node.func.attr in _IO_METHODS:
            findings.append(self.finding(
                module, node,
                f"'.{node.func.attr}()' looks like file I/O inside a pure "
                f"simulation module",
            ))
