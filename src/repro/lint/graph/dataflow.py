"""A small forward dataflow engine over one function body.

Rules parameterize the walk with an abstract domain: the environment is
a ``Dict[str, T]`` mapping local variable names to facts (the
units-flow rule maps names to dimension tags like ``ns`` / ``bytes``).
The engine owns control flow:

* statements execute in order; assignments call
  :meth:`ForwardDataflow.transfer_assign`;
* ``if``/``try`` branches each start from a copy of the entry
  environment and *join* afterwards (a name survives the join only if
  every branch agrees on its fact);
* loop bodies run twice so loop-carried facts propagate once around
  (``x = wait_ns`` inside the loop reaches uses on the next iteration),
  then join with the never-entered environment;
* ``del x`` and binding constructs (``for`` targets, ``with ... as``)
  kill or transfer facts through the hooks.

This is a deliberately bounded analysis -- two loop passes instead of a
fixed point with widening keeps it linear and predictable, and suffix
facts have no infinite ascending chains to chase. Subclasses override
the ``transfer_*``/``visit_expr`` hooks; the engine never interprets
expressions itself.
"""

from __future__ import annotations

import ast
from typing import Dict, Generic, List, Optional, TypeVar

T = TypeVar("T")


def join_envs(left: Dict[str, T], right: Dict[str, T]) -> Dict[str, T]:
    """Facts both environments agree on (branch-join semantics)."""
    return {name: fact for name, fact in left.items()
            if right.get(name) == fact}


class ForwardDataflow(Generic[T]):
    """Forward walk of one function body with branch joins.

    Subclasses override the hooks; ``run`` seeds the environment (for
    example from parameter suffixes) and returns the exit environment.
    The current environment is ``self.env`` -- hooks read and mutate it
    in place.
    """

    def __init__(self) -> None:
        self.env: Dict[str, T] = {}

    # -- hooks (override in subclasses) --------------------------------------

    def transfer_assign(self, target: ast.expr, value: ast.expr,
                        node: ast.stmt) -> None:
        """One assignment target receiving ``value``."""

    def transfer_augassign(self, node: ast.AugAssign) -> None:
        """``x += value`` and friends."""

    def transfer_return(self, node: ast.Return) -> None:
        """A return statement (``node.value`` may be None)."""

    def transfer_delete(self, name: str) -> None:
        """``del name`` -- default kills the fact."""
        self.env.pop(name, None)

    def transfer_bind(self, target: ast.expr, node: ast.stmt) -> None:
        """A binding with no tracked value (``for`` target, ``with`` as).

        Defaults to killing facts for the bound names -- their new
        values are unknown.
        """
        for name in _target_names(target):
            self.env.pop(name, None)

    def visit_expr(self, node: ast.expr) -> None:
        """Every evaluated expression, in statement order."""

    # -- driver --------------------------------------------------------------

    def run(self, body: List[ast.stmt],
            seed: Optional[Dict[str, T]] = None) -> Dict[str, T]:
        self.env = dict(seed or {})
        self._block(body)
        return self.env

    def _block(self, body: List[ast.stmt]) -> None:
        for stmt in body:
            self._statement(stmt)

    def _statement(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            self.visit_expr(stmt.value)
            for target in stmt.targets:
                self._assign(target, stmt.value, stmt)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self.visit_expr(stmt.value)
                self._assign(stmt.target, stmt.value, stmt)
            else:
                self.transfer_bind(stmt.target, stmt)
        elif isinstance(stmt, ast.AugAssign):
            self.visit_expr(stmt.value)
            self.transfer_augassign(stmt)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.visit_expr(stmt.value)
            self.transfer_return(stmt)
        elif isinstance(stmt, ast.Expr):
            self.visit_expr(stmt.value)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                for name in _target_names(target):
                    self.transfer_delete(name)
        elif isinstance(stmt, ast.If):
            self.visit_expr(stmt.test)
            entry = dict(self.env)
            self._block(stmt.body)
            after_body = self.env
            self.env = dict(entry)
            self._block(stmt.orelse)
            self.env = join_envs(after_body, self.env)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self.visit_expr(stmt.iter)
            entry = dict(self.env)
            self.transfer_bind(stmt.target, stmt)
            self._block(stmt.body)
            self.transfer_bind(stmt.target, stmt)
            self._block(stmt.body)  # second pass: loop-carried facts
            self._block(stmt.orelse)
            self.env = join_envs(entry, self.env)
        elif isinstance(stmt, ast.While):
            self.visit_expr(stmt.test)
            entry = dict(self.env)
            self._block(stmt.body)
            self._block(stmt.body)
            self._block(stmt.orelse)
            self.env = join_envs(entry, self.env)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self.visit_expr(item.context_expr)
                if item.optional_vars is not None:
                    self._assign(item.optional_vars, item.context_expr,
                                 stmt, binding_only=True)
            self._block(stmt.body)
        elif isinstance(stmt, ast.Try):
            entry = dict(self.env)
            self._block(stmt.body)
            merged = self.env
            for handler in stmt.handlers:
                # A handler may run after any prefix of the body: start
                # from the entry state, the only safe approximation.
                self.env = dict(entry)
                self._block(handler.body)
                merged = join_envs(merged, self.env)
            self.env = merged
            self._block(stmt.orelse)
            self._block(stmt.finalbody)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            pass  # nested scopes are separate analyses
        elif isinstance(stmt, (ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self.visit_expr(child)
        else:
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self.visit_expr(child)

    def _assign(self, target: ast.expr, value: ast.expr, stmt: ast.stmt,
                binding_only: bool = False) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            # Element-wise facts are not tracked; kill the bound names.
            self.transfer_bind(target, stmt)
            return
        if binding_only:
            self.transfer_bind(target, stmt)
            return
        self.transfer_assign(target, value, stmt)


def _target_names(target: ast.expr) -> List[str]:
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, (ast.Tuple, ast.List)):
        names: List[str] = []
        for element in target.elts:
            names.extend(_target_names(element))
        return names
    if isinstance(target, ast.Starred):
        return _target_names(target.value)
    return []
