"""Whole-program analysis substrate for graph-backed lint rules.

The per-file rules of :mod:`repro.lint.rules` see one AST at a time;
the rules in this package's clients (fork-safety, signal-safety,
units-flow, layering) need to see *across* files: which module imports
which, which function can call which, and how tagged values flow
through assignments and project-internal call sites. Three layers:

* :mod:`repro.lint.graph.imports` -- the project import graph (module
  -> imported project modules) plus per-module symbol tables mapping
  local names to canonical dotted targets.
* :mod:`repro.lint.graph.callgraph` -- a resolved call graph over every
  function, method, and module body in the project, with conservative
  fallbacks: unresolvable dynamic calls are recorded (never silently
  dropped), and function references that escape as arguments are kept
  as ``ref`` edges so reachability can follow callbacks.
* :mod:`repro.lint.graph.dataflow` -- a small forward dataflow engine
  over one function body (assignments, branches, loops, returns) that
  rules parameterize with their own abstract domain.

:class:`~repro.lint.graph.index.ProgramIndex` bundles all of it and is
built once per lint run, only when a selected rule declares
``uses_graph = True``.
"""

from repro.lint.graph.callgraph import CallGraph, FunctionInfo
from repro.lint.graph.dataflow import ForwardDataflow, join_envs
from repro.lint.graph.imports import ImportGraph, ModuleSymbols
from repro.lint.graph.index import ProgramIndex

__all__ = [
    "CallGraph",
    "ForwardDataflow",
    "FunctionInfo",
    "ImportGraph",
    "ModuleSymbols",
    "ProgramIndex",
    "join_envs",
]
