"""The whole-program index handed to graph-backed lint rules.

One :class:`ProgramIndex` is built per lint run -- lazily, only when a
selected rule sets ``uses_graph = True`` -- and shared by every such
rule, so the import graph and call graph are computed once however many
rules query them.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.lint.graph.callgraph import CallGraph, FunctionInfo
from repro.lint.graph.imports import ImportGraph
from repro.lint.module import LintProject


class ProgramIndex:
    """Import graph + call graph + shared lookups over one project."""

    def __init__(self, project: LintProject):
        self.project = project
        self.imports = ImportGraph(project)
        self.calls = CallGraph(project, self.imports)

    @property
    def functions(self) -> Dict[str, FunctionInfo]:
        return self.calls.functions

    # -- common queries ------------------------------------------------------

    def reachable(self, roots: Iterable[str],
                  follow_refs: bool = False) -> Set[str]:
        """Function quals reachable from ``roots`` along call edges."""
        return self.calls.reachable(set(roots), follow_refs=follow_refs)

    def resolve_in(self, function_qual: str,
                   expr: ast.AST) -> Optional[str]:
        """Resolve an expression in a function's naming context."""
        return self.calls.resolve_in(function_qual, expr)

    def external_call_sites(
            self, canonical: str,
    ) -> List[Tuple[FunctionInfo, ast.Call]]:
        """Every call site of one external callable, project-wide.

        ``canonical`` is the dotted post-alias name (``signal.signal``,
        ``multiprocessing.Queue``); call sites come back in a stable
        (module, lineno) order.
        """
        sites: List[Tuple[FunctionInfo, ast.Call]] = []
        for info in self.calls.functions.values():
            for name, node in info.external_calls:
                if name == canonical:
                    sites.append((info, node))
        sites.sort(key=lambda pair: (pair[0].module, pair[1].lineno))
        return sites

    def function_for(self, target: str) -> Optional[FunctionInfo]:
        """The FunctionInfo a canonical dotted target names, if any."""
        return self.calls.function_for(target)
