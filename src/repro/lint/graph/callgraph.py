"""Resolved project call graph with conservative dynamic fallbacks.

Every function, method, and module body in the project becomes a
:class:`FunctionInfo` node keyed by its dotted qualified name
(``repro.runner.supervisor.SupervisedPool.run``; module bodies use the
pseudo-name ``<module>``). Call edges are resolved through each
module's symbol table (:mod:`repro.lint.graph.imports`):

* bare names resolve to local/nested defs, module-level defs, then
  imported symbols;
* ``self.method()`` resolves inside the enclosing class;
* ``module.func()`` resolves through module bindings into other
  project modules;
* instantiating a project class adds an edge to its ``__init__``.

Anything else is a *dynamic* call. Dynamic calls are never dropped:
each is recorded on the caller with its best-effort label (the
attribute or variable name) so rules can stay conservative --
signal-safety, for example, flags dynamic calls whose method name
matches a blocking primitive (``acquire``, ``write``...) even though
the receiver's type is unknown. Calls into modules outside the project
are recorded as *external* calls under their canonical dotted name
(``multiprocessing.Queue``, ``signal.signal``, ``print``).

References that are not calls (``target=_worker_main`` in a
``Process(...)`` constructor, callbacks stored in variables) are kept
as ``ref`` edges; reachability can include them, because a function
whose reference escapes into a context may well be invoked there.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.lint.graph.imports import ImportGraph, dotted_expr
from repro.lint.module import LintModule, LintProject

#: Pseudo-function name for a module's top-level (and class-body) code.
MODULE_BODY = "<module>"

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


@dataclass
class FunctionInfo:
    """One node of the call graph."""

    qual: str
    module: str
    name: str
    cls: Optional[str]
    node: ast.AST
    lineno: int
    #: Positional parameter names, in order (``self``/``cls`` included).
    params: Tuple[str, ...] = ()
    #: Resolved project-internal callees (function quals).
    calls: Set[str] = field(default_factory=set)
    #: Project functions referenced without being called directly.
    refs: Set[str] = field(default_factory=set)
    #: Calls leaving the project: (canonical dotted name, Call node).
    external_calls: List[Tuple[str, ast.Call]] = field(default_factory=list)
    #: Unresolvable calls: (best-effort label, Call node).
    dynamic_calls: List[Tuple[str, ast.Call]] = field(default_factory=list)
    #: Module-level names this function rebinds via ``global``.
    global_writes: Set[str] = field(default_factory=set)
    #: Module-level containers this function mutates in place
    #: (subscript stores, ``append``/``update``/... method calls).
    mutations: Set[str] = field(default_factory=set)


#: In-place mutator methods that count as writes to a shared container.
_MUTATOR_METHODS = frozenset({
    "append", "add", "update", "extend", "insert", "pop", "popitem",
    "remove", "discard", "clear", "setdefault", "put", "put_nowait",
})


class _ModuleScan:
    """Per-module pass: register defs, then resolve every body."""

    def __init__(self, graph: "CallGraph", module: LintModule):
        self.graph = graph
        self.module = module
        self.symbols = graph.imports.symbols[module.name]
        #: Top-level defs: bare name -> qual (functions and classes).
        self.toplevel: Dict[str, str] = {}
        #: Names assigned at module level (shared-state candidates).
        self.module_names: Set[str] = set()

    # -- pass 1: registration ------------------------------------------------

    def register(self) -> None:
        prefix = self.module.name
        for stmt in self.module.tree.body:
            if isinstance(stmt, _FUNCTION_NODES):
                qual = f"{prefix}.{stmt.name}"
                self.toplevel[stmt.name] = qual
                self.graph._register_function(qual, self.module, stmt, None)
            elif isinstance(stmt, ast.ClassDef):
                class_qual = f"{prefix}.{stmt.name}"
                self.toplevel[stmt.name] = class_qual
                methods: Dict[str, str] = {}
                for item in stmt.body:
                    if isinstance(item, _FUNCTION_NODES):
                        method_qual = f"{class_qual}.{item.name}"
                        methods[item.name] = method_qual
                        self.graph._register_function(
                            method_qual, self.module, item, stmt.name)
                self.graph.classes[class_qual] = methods
            else:
                for target in _assigned_names(stmt):
                    self.module_names.add(target)
        body_qual = f"{prefix}.{MODULE_BODY}"
        self.graph._register_function(body_qual, self.module,
                                      self.module.tree, None)

    # -- pass 2: body resolution ---------------------------------------------

    def scan_bodies(self) -> None:
        prefix = self.module.name
        body_info = self.graph.functions[f"{prefix}.{MODULE_BODY}"]
        body_stmts: List[ast.stmt] = []
        for stmt in self.module.tree.body:
            if isinstance(stmt, _FUNCTION_NODES):
                self._scan_function(self.graph.functions[
                    f"{prefix}.{stmt.name}"], locals_chain={})
            elif isinstance(stmt, ast.ClassDef):
                for item in stmt.body:
                    if isinstance(item, _FUNCTION_NODES):
                        self._scan_function(self.graph.functions[
                            f"{prefix}.{stmt.name}.{item.name}"],
                            locals_chain={})
                    else:
                        # Class-level state (a lock created at import
                        # time, say) executes with the module body.
                        body_stmts.append(item)
            else:
                body_stmts.append(stmt)
        self._scan_stmts(body_info, body_stmts, locals_chain={},
                         local_binds=set())

    def _scan_function(self, info: FunctionInfo,
                       locals_chain: Dict[str, str]) -> None:
        node = info.node
        assert isinstance(node, _FUNCTION_NODES)
        local_binds: Set[str] = {arg.arg for arg in _all_args(node.args)}
        # Nested defs are callable by bare name inside this body.
        nested: Dict[str, str] = dict(locals_chain)
        direct_nested = [stmt for stmt in node.body
                         if isinstance(stmt, _FUNCTION_NODES)]
        for child in direct_nested:
            child_qual = f"{info.qual}.{child.name}"
            nested[child.name] = child_qual
            local_binds.add(child.name)
            self.graph._register_function(child_qual, self.module, child,
                                          info.cls)
        self._scan_stmts(info,
                         [s for s in node.body
                          if not isinstance(s, _FUNCTION_NODES)],
                         locals_chain=nested, local_binds=local_binds)
        for child in direct_nested:
            child_info = self.graph.functions[f"{info.qual}.{child.name}"]
            self._scan_function(child_info, locals_chain=nested)

    def _scan_stmts(self, info: FunctionInfo, stmts: List[ast.stmt],
                    locals_chain: Dict[str, str],
                    local_binds: Set[str]) -> None:
        for stmt in _scoped_statements(stmts):
            if isinstance(stmt, ast.Global):
                info.global_writes.update(stmt.names)
            local_binds.update(_assigned_names(stmt))
        local_binds -= info.global_writes
        resolver = self._make_resolver(info, locals_chain, local_binds)
        self.graph._resolvers[info.qual] = resolver
        collector = _CallCollector(self, info, resolver, local_binds)
        for stmt in stmts:
            collector.visit(stmt)

    # -- name resolution -----------------------------------------------------

    def _make_resolver(self, info: FunctionInfo,
                       locals_chain: Dict[str, str],
                       local_binds: Set[str],
                       ) -> Callable[[ast.AST], Optional[str]]:
        """Resolve an expression to a canonical dotted target.

        Returns a project function/class qual, an external canonical
        dotted name, or ``None`` for anything dynamic. Locally bound
        names (parameters, assignments) shadow module-level targets and
        resolve to ``None`` -- their values are unknown.
        """
        def resolve(expr: ast.AST) -> Optional[str]:
            if isinstance(expr, ast.Name):
                name = expr.id
                if name in locals_chain:
                    return locals_chain[name]
                if name in local_binds:
                    return None
                if name in self.toplevel:
                    return self.toplevel[name]
                canonical = self.symbols.canonical(name)
                if canonical is not None:
                    return canonical
                if name in self.module_names:
                    return None  # a module-level value, not a def
                return name  # builtin or undefined: external canonical
            if isinstance(expr, ast.Attribute):
                dotted = dotted_expr(expr)
                if dotted is None:
                    return None
                head, _, rest = dotted.partition(".")
                if head == "self" and info.cls is not None and rest:
                    class_qual = f"{info.module}.{info.cls}"
                    methods = self.graph.classes.get(class_qual, {})
                    if "." not in rest and rest in methods:
                        return methods[rest]
                    return None  # instance state: dynamic
                if head in local_binds:
                    return None
                if head in self.toplevel and rest:
                    # ClassName.method / ClassName.attr in this module
                    return f"{self.toplevel[head]}.{rest}"
                canonical = self.symbols.resolve_dotted(dotted)
                if canonical is not None:
                    return canonical
                if head in self.module_names:
                    return None
                return dotted
            return None
        return resolve


class _CallCollector(ast.NodeVisitor):
    """Collect call/ref/mutation facts for one function body."""

    def __init__(self, scan: _ModuleScan, info: FunctionInfo,
                 resolver: Callable[[ast.AST], Optional[str]],
                 local_binds: Set[str]):
        self.scan = scan
        self.graph = scan.graph
        self.info = info
        self.resolve = resolver
        self.local_binds = local_binds

    # Nested defs are scanned as their own functions.
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        pass

    def visit_Call(self, node: ast.Call) -> None:
        target = self.resolve(node.func)
        if target is None:
            label = _call_label(node.func)
            self.info.dynamic_calls.append((label, node))
            if label in _MUTATOR_METHODS:
                self._note_mutation(node.func)
            # The callee's subexpressions still need visiting
            # (x().y() chains); resolution consumed nothing.
            self.visit(node.func)
        else:
            self.graph._raw_calls.append((self.info.qual, target, node))
        for child in ast.iter_child_nodes(node):
            if child is not node.func:
                self.visit(child)

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            target = self.resolve(node)
            if target is not None:
                self.graph._raw_refs.append((self.info.qual, target))
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_store(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_store(node.target)
        self.generic_visit(node)

    def _check_store(self, target: ast.AST) -> None:
        """Subscript stores on module-level names are shared mutations."""
        if isinstance(target, (ast.Subscript,)) \
                and isinstance(target.value, ast.Name):
            self._note_mutation(target.value)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._check_store(element)

    def _note_mutation(self, func_expr: ast.AST) -> None:
        """Record in-place mutation of a module-level container."""
        base = func_expr
        if isinstance(base, ast.Attribute):
            base = base.value
        if isinstance(base, ast.Name) \
                and base.id not in self.local_binds \
                and base.id in self.scan.module_names:
            self.info.mutations.add(base.id)


class CallGraph:
    """Every function in the project, with resolved call edges."""

    def __init__(self, project: LintProject, imports: ImportGraph):
        self.project = project
        self.imports = imports
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, Dict[str, str]] = {}
        self._resolvers: Dict[str, Callable[[ast.AST], Optional[str]]] = {}
        self._raw_calls: List[Tuple[str, str, ast.Call]] = []
        self._raw_refs: List[Tuple[str, str]] = []
        scans = [_ModuleScan(self, module) for module in project]
        for scan in scans:
            scan.register()
        for scan in scans:
            scan.scan_bodies()
        self._finalize()

    # -- construction helpers ------------------------------------------------

    def _register_function(self, qual: str, module: LintModule,
                           node: ast.AST, cls: Optional[str]) -> None:
        params: Tuple[str, ...] = ()
        if isinstance(node, _FUNCTION_NODES):
            params = tuple(arg.arg for arg in node.args.posonlyargs
                           ) + tuple(arg.arg for arg in node.args.args)
        self.functions[qual] = FunctionInfo(
            qual=qual,
            module=module.name,
            name=qual.rsplit(".", 1)[-1],
            cls=cls,
            node=node,
            lineno=getattr(node, "lineno", 1),
            params=params,
        )

    def _finalize(self) -> None:
        """Classify raw targets into project calls vs external calls."""
        for caller, target, node in self._raw_calls:
            info = self.functions[caller]
            resolved = self._as_function(target)
            if resolved is not None:
                info.calls.add(resolved)
            elif target in self.classes:
                pass  # a class with no __init__: nothing to reach
            elif self._in_project_namespace(target):
                # A project-shaped name we could not pin to a def:
                # conservative fallback, recorded as dynamic.
                info.dynamic_calls.append((target, node))
            else:
                info.external_calls.append((target, node))
        for caller, target in self._raw_refs:
            info = self.functions[caller]
            resolved = self._as_function(target)
            if resolved is not None and resolved != caller:
                info.refs.add(resolved)
        self._raw_calls = []
        self._raw_refs = []

    def _as_function(self, target: str) -> Optional[str]:
        """Map a canonical target to a function qual, if it names one."""
        if target in self.functions:
            return target
        methods = self.classes.get(target)
        if methods is not None:
            # Instantiation: reach the constructor when it exists,
            # otherwise the class itself contributes no body.
            return methods.get("__init__")
        if target in self.classes:
            return None
        # module.<module> pseudo-functions are never call targets.
        return None

    def _in_project_namespace(self, target: str) -> bool:
        parts = target.split(".")
        for i in range(len(parts), 0, -1):
            if self.imports.is_project_module(".".join(parts[:i])):
                return True
        return False

    # -- queries -------------------------------------------------------------

    def resolve_in(self, function_qual: str,
                   expr: ast.AST) -> Optional[str]:
        """Resolve ``expr`` in the naming context of ``function_qual``."""
        resolver = self._resolvers.get(function_qual)
        return resolver(expr) if resolver is not None else None

    def function_for(self, target: str) -> Optional[FunctionInfo]:
        qual = self._as_function(target)
        return self.functions.get(qual) if qual is not None else None

    def module_body(self, module: str) -> Optional[FunctionInfo]:
        return self.functions.get(f"{module}.{MODULE_BODY}")

    def functions_in(self, module: str) -> List[FunctionInfo]:
        return [info for info in self.functions.values()
                if info.module == module]

    def reachable(self, roots: "List[str] | Set[str]",
                  follow_refs: bool = False) -> Set[str]:
        """Function quals reachable from ``roots`` along call edges.

        ``follow_refs`` additionally follows reference edges -- a
        function whose reference escapes into reachable code may be
        invoked there, so conservative rules (fork-safety partitions,
        signal-handler walks) turn this on.
        """
        seen: Set[str] = set()
        frontier = [qual for qual in roots if qual in self.functions]
        seen.update(frontier)
        while frontier:
            info = self.functions[frontier.pop()]
            neighbors = set(info.calls)
            if follow_refs:
                neighbors |= info.refs
            for target in neighbors:
                if target not in seen and target in self.functions:
                    seen.add(target)
                    frontier.append(target)
        return seen


def _call_label(func_expr: ast.AST) -> str:
    """Best-effort label of a dynamic call (attr or variable name)."""
    if isinstance(func_expr, ast.Attribute):
        return func_expr.attr
    if isinstance(func_expr, ast.Name):
        return func_expr.id
    dotted = dotted_expr(func_expr)
    return dotted if dotted is not None else "<dynamic>"


def _assigned_names(stmt: ast.stmt) -> List[str]:
    """Bare names a statement binds (assignment targets, with/for/etc.)."""
    names: List[str] = []

    def collect(target: ast.AST) -> None:
        if isinstance(target, ast.Name):
            names.append(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                collect(element)
        elif isinstance(target, ast.Starred):
            collect(target.value)

    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            collect(target)
    elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
        collect(stmt.target)
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        collect(stmt.target)
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            if item.optional_vars is not None:
                collect(item.optional_vars)
    return names


def _scoped_statements(stmts: List[ast.stmt]) -> List[ast.stmt]:
    """All statements in these blocks, minus nested def/class scopes."""
    result: List[ast.stmt] = []
    frontier = list(stmts)
    while frontier:
        stmt = frontier.pop()
        if isinstance(stmt, _FUNCTION_NODES) or isinstance(stmt,
                                                           ast.ClassDef):
            continue
        result.append(stmt)
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                frontier.append(child)
    return result


def _all_args(args: ast.arguments) -> List[ast.arg]:
    every = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
    if args.vararg is not None:
        every.append(args.vararg)
    if args.kwarg is not None:
        every.append(args.kwarg)
    return every
