"""Project import graph and per-module symbol tables.

For every :class:`~repro.lint.module.LintModule` this builds

* the set of *project-internal* modules it imports (the import graph's
  adjacency), each edge keeping the AST node that created it so rules
  can attach findings to the offending ``import`` line; and
* a symbol table mapping the module's local names to canonical dotted
  targets -- ``from repro.runner.sweep import _attempt_task`` binds
  ``_attempt_task`` to ``repro.runner.sweep._attempt_task``, ``import
  multiprocessing as mp`` binds ``mp`` to ``multiprocessing``.

``from pkg import name`` is ambiguous between a submodule and a symbol;
it resolves against the project's module set (if ``pkg.name`` is a
project module the binding is a module binding, otherwise a symbol of
``pkg``). Relative imports resolve against the importing module's
package. Imports of modules outside the project are kept in the symbol
table (external analyses need ``mp`` -> ``multiprocessing``) but create
no graph edge.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.lint.module import LintModule, LintProject


@dataclass(frozen=True)
class ImportEdge:
    """One project-internal import: ``importer`` imports ``imported``."""

    importer: str
    imported: str
    lineno: int
    col: int


@dataclass
class ModuleSymbols:
    """Local name -> canonical dotted target for one module."""

    module: str
    #: Names bound to modules (project or external): ``mp`` ->
    #: ``multiprocessing``, ``timing`` -> ``repro.sim.timing``.
    modules: Dict[str, str] = field(default_factory=dict)
    #: Names bound to symbols of other modules: ``_attempt_task`` ->
    #: ``repro.runner.sweep._attempt_task``.
    symbols: Dict[str, str] = field(default_factory=dict)

    def canonical(self, name: str) -> Optional[str]:
        """The dotted target bound to a bare local name, if any."""
        if name in self.symbols:
            return self.symbols[name]
        return self.modules.get(name)

    def resolve_dotted(self, dotted: str) -> Optional[str]:
        """Canonicalize ``a.b.c`` through this module's import bindings.

        Only the head is rewritten: ``mp.Queue`` -> ``multiprocessing.
        Queue``. Unbound heads come back unchanged (the caller decides
        whether a bare builtin like ``print`` is interesting).
        """
        head, _, rest = dotted.partition(".")
        canonical = self.canonical(head)
        if canonical is None:
            return None
        return f"{canonical}.{rest}" if rest else canonical


def _resolve_relative(module: str, is_package: bool, level: int,
                      target: Optional[str]) -> Optional[str]:
    """Absolute form of a ``from ...x import y`` relative import."""
    parts = module.split(".")
    # Level 1 anchors at the containing package -- which, for a package
    # __init__, is the module itself; every extra level climbs one up.
    anchor = parts if is_package else parts[:-1]
    if level > 1:
        anchor = anchor[:len(anchor) - (level - 1)]
    if not anchor:
        return None  # beyond the project root
    base = ".".join(anchor)
    if target:
        return f"{base}.{target}" if base else target
    return base or None


class ImportGraph:
    """Adjacency of project-internal imports, plus symbol tables."""

    def __init__(self, project: LintProject):
        self._names: Set[str] = {module.name for module in project}
        self._packages: Set[str] = self._find_packages(project)
        self.edges: List[ImportEdge] = []
        self.imports: Dict[str, Set[str]] = {m.name: set() for m in project}
        self.symbols: Dict[str, ModuleSymbols] = {}
        for module in project:
            self._scan(module)

    def _find_packages(self, project: LintProject) -> Set[str]:
        """Module names that are packages (some other module nests under)."""
        packages: Set[str] = set()
        for module in project:
            parts = module.name.split(".")
            for i in range(1, len(parts)):
                packages.add(".".join(parts[:i]))
        return packages

    def is_project_module(self, name: str) -> bool:
        return name in self._names

    def _module_or_ancestor(self, name: str) -> Optional[str]:
        """The longest project-module prefix of a dotted name."""
        parts = name.split(".")
        for i in range(len(parts), 0, -1):
            candidate = ".".join(parts[:i])
            if candidate in self._names:
                return candidate
        return None

    def _add_edge(self, importer: str, imported: str, node: ast.AST) -> None:
        if imported == importer:
            return
        self.imports[importer].add(imported)
        self.edges.append(ImportEdge(
            importer=importer, imported=imported,
            lineno=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
        ))

    def _scan(self, module: LintModule) -> None:
        table = ModuleSymbols(module.name)
        self.symbols[module.name] = table
        is_package = module.name in self._packages \
            or module.path.endswith("__init__.py")
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    bound = alias.name if alias.asname \
                        else alias.name.split(".")[0]
                    table.modules[local] = bound
                    target = self._module_or_ancestor(alias.name)
                    if target is not None:
                        self._add_edge(module.name, target, node)
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    base = _resolve_relative(module.name, is_package,
                                             node.level, node.module)
                    if base is None:
                        continue
                else:
                    base = node.module
                    if base is None:
                        continue
                base_target = self._module_or_ancestor(base)
                if base_target is not None:
                    self._add_edge(module.name, base_target, node)
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    full = f"{base}.{alias.name}"
                    if full in self._names:
                        # Submodule import: from repro.sim import timing
                        table.modules[local] = full
                        self._add_edge(module.name, full, node)
                    else:
                        table.symbols[local] = full

    # -- queries -------------------------------------------------------------

    def imported_by(self, name: str) -> Set[str]:
        """Project modules importing ``name`` directly."""
        return {importer for importer, targets in self.imports.items()
                if name in targets}

    def edges_from(self, name: str) -> List[ImportEdge]:
        return [edge for edge in self.edges if edge.importer == name]

    def cycles(self) -> List[List[str]]:
        """Strongly connected components with more than one module.

        Tarjan over the project import graph; each cycle comes back as
        a sorted module list, and the result is sorted for stable
        golden assertions.
        """
        index: Dict[str, int] = {}
        lowlink: Dict[str, int] = {}
        on_stack: Set[str] = set()
        stack: List[str] = []
        counter = [0]
        result: List[List[str]] = []

        def strongconnect(node: str) -> None:
            index[node] = lowlink[node] = counter[0]
            counter[0] += 1
            stack.append(node)
            on_stack.add(node)
            for neighbor in sorted(self.imports.get(node, ())):
                if neighbor not in index:
                    strongconnect(neighbor)
                    lowlink[node] = min(lowlink[node], lowlink[neighbor])
                elif neighbor in on_stack:
                    lowlink[node] = min(lowlink[node], index[neighbor])
            if lowlink[node] == index[node]:
                component: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1:
                    result.append(sorted(component))

        for name in sorted(self.imports):
            if name not in index:
                strongconnect(name)
        return sorted(result)

    def transitive_imports(self, name: str) -> Set[str]:
        """Every project module reachable from ``name`` via imports."""
        seen: Set[str] = set()
        frontier: List[str] = [name]
        while frontier:
            current = frontier.pop()
            for target in self.imports.get(current, ()):
                if target not in seen:
                    seen.add(target)
                    frontier.append(target)
        return seen


def dotted_expr(node: ast.AST) -> Optional[str]:
    """Render ``a.b.c`` attribute/name chains; ``None`` otherwise."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = dotted_expr(node.value)
        return f"{base}.{node.attr}" if base is not None else None
    return None


