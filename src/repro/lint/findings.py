"""Finding and severity types shared by every lint rule."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple


class Severity(enum.IntEnum):
    """How seriously a finding gates the build.

    Both levels fail ``starnuma lint`` (the invariants the rules protect
    are correctness invariants, not style); the level only orders the
    report so the most dangerous findings are read first.
    """

    WARNING = 1
    ERROR = 2

    @property
    def label(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    severity: Severity
    module: str
    path: str
    line: int
    col: int
    message: str

    @property
    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def render(self) -> str:
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.rule} {self.severity.label}: {self.message}")
