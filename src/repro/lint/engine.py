"""Lint driver: collect files, run rules, apply the baseline."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.lint.baseline import Baseline
from repro.lint.findings import Finding, Severity
from repro.lint.module import LintModule, LintProject
from repro.lint.registry import LintRule, create_rules

#: Directory names never descended into when expanding path arguments.
_SKIP_DIRS = {"__pycache__", ".git", ".mypy_cache", ".ruff_cache"}


@dataclass
class LintReport:
    """Outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: int = 0
    n_files: int = 0
    rule_names: List[str] = field(default_factory=list)

    @property
    def is_clean(self) -> bool:
        return not self.findings

    def count(self, severity: Severity) -> int:
        return sum(1 for finding in self.findings
                   if finding.severity is severity)


def collect_files(paths: Iterable[object]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)  # type: ignore[arg-type]
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not _SKIP_DIRS.intersection(candidate.parts):
                    files.append(candidate)
        elif path.suffix == ".py":
            files.append(path)
        else:
            raise FileNotFoundError(f"not a Python file or directory: {path}")
    seen = set()
    unique = []
    for candidate in files:
        if candidate not in seen:
            seen.add(candidate)
            unique.append(candidate)
    return unique


def build_project(paths: Iterable[Path]) -> Tuple[LintProject, List[Finding]]:
    """Parse every file; syntax errors become findings, not crashes."""
    modules: List[LintModule] = []
    errors: List[Finding] = []
    for path in collect_files(paths):
        try:
            modules.append(LintModule.from_path(path))
        except SyntaxError as exc:
            errors.append(Finding(
                rule="parse-error",
                severity=Severity.ERROR,
                module=path.stem,
                path=str(path),
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                message=f"cannot parse file: {exc.msg}",
            ))
    return LintProject(modules), errors


def run_lint(project: LintProject,
             rules: Optional[Sequence[LintRule]] = None,
             baseline: Optional[Baseline] = None,
             extra_findings: Sequence[Finding] = ()) -> LintReport:
    """Run ``rules`` over ``project`` and filter through ``baseline``.

    The whole-program :class:`~repro.lint.graph.ProgramIndex` is built
    once, lazily, iff any selected rule declares ``uses_graph`` -- a
    per-file rule run never pays for graph construction.
    """
    active = list(rules) if rules is not None else create_rules()
    index = None
    if any(rule.uses_graph for rule in active):
        from repro.lint.graph import ProgramIndex

        index = ProgramIndex(project)
    findings: List[Finding] = list(extra_findings)
    for rule in active:
        for module in project:
            findings.extend(rule.check_module(module, project))
        findings.extend(rule.check_project(project))
        if rule.uses_graph and index is not None:
            findings.extend(rule.check_graph(project, index))
    findings.sort(key=lambda finding: finding.sort_key)

    suppressed = 0
    if baseline is not None:
        findings, suppressed = baseline.split(findings, project)
    return LintReport(
        findings=findings,
        suppressed=suppressed,
        n_files=len(project),
        rule_names=[rule.name for rule in active],
    )


def lint_paths(paths: Iterable[object],
               rule_names: Optional[Iterable[str]] = None,
               baseline_path: Optional[object] = None) -> LintReport:
    """Convenience wrapper: parse, run, baseline -- one call."""
    project, parse_errors = build_project(paths)
    baseline = (Baseline.load(Path(baseline_path))  # type: ignore[arg-type]
                if baseline_path is not None else None)
    return run_lint(
        project,
        rules=create_rules(rule_names),
        baseline=baseline,
        extra_findings=parse_errors,
    )


def lint_sources(sources: dict,
                 rule_names: Optional[Iterable[str]] = None) -> LintReport:
    """Lint in-memory ``{dotted_name: source}`` mappings (test fixtures)."""
    project = LintProject([
        LintModule.from_source(name, text, path=f"<{name}>")
        for name, text in sources.items()
    ])
    return run_lint(project, rules=create_rules(rule_names))
