"""``starnuma lint``: project-specific static analysis.

An AST-based framework enforcing the invariants the StarNUMA
reproduction's headline numbers rest on -- unit correctness (never add
nanoseconds to cycles), determinism (byte-identical ``--resume``),
sim purity (no I/O in timing hot paths), hashable cache keys, and
config/model agreement. See ``docs/static-analysis.md``.
"""

from repro.lint.baseline import Baseline, BaselineError, fingerprint
from repro.lint.engine import (
    LintReport,
    build_project,
    collect_files,
    lint_paths,
    lint_sources,
    run_lint,
)
from repro.lint.findings import Finding, Severity
from repro.lint.graph import (
    CallGraph,
    ForwardDataflow,
    FunctionInfo,
    ImportGraph,
    ProgramIndex,
)
from repro.lint.module import LintModule, LintProject, module_name_for
from repro.lint.registry import (
    LintRule,
    all_rule_names,
    create_rules,
    register,
    rule_descriptions,
)
from repro.lint.reporters import render_json, render_sarif, render_text

__all__ = [
    "Baseline",
    "BaselineError",
    "CallGraph",
    "Finding",
    "ForwardDataflow",
    "FunctionInfo",
    "ImportGraph",
    "LintModule",
    "LintProject",
    "LintReport",
    "LintRule",
    "ProgramIndex",
    "Severity",
    "all_rule_names",
    "build_project",
    "collect_files",
    "create_rules",
    "fingerprint",
    "lint_paths",
    "lint_sources",
    "module_name_for",
    "register",
    "render_json",
    "render_sarif",
    "render_text",
    "rule_descriptions",
    "run_lint",
]
