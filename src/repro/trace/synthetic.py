"""Synthetic trace generation from a page population."""

from __future__ import annotations

from typing import Iterator, List, Optional

import numpy as np

from repro.trace.records import PhaseTrace, TraceRecord
from repro.workloads.population import PagePopulation


class TraceSynthesizer:
    """Draws per-phase access-count matrices for one workload instance.

    Each socket issues ``instructions_per_thread x threads_per_socket x
    MPKI / 1000`` LLC-missing accesses per phase, distributed over its
    shared pages according to the population's stationary rates. Counts
    are sampled as independent Poissons around the expected rates (the
    standard high-count approximation of the multinomial), and a mild
    lognormal weight drift is applied between phases so hotness rankings
    wobble without the sharing structure changing -- matching the paper's
    observation that sharing patterns are stable over time (Section V-B).
    """

    def __init__(self, population: PagePopulation,
                 threads_per_socket: int,
                 instructions_per_thread: int = 1_000_000_000,
                 seed: int = 0,
                 accesses_cap_per_socket: int = 2_000_000_000):
        if threads_per_socket < 1:
            raise ValueError("need at least one thread per socket")
        if instructions_per_thread < 1:
            raise ValueError("phase length must be positive")
        self.population = population
        self.threads_per_socket = threads_per_socket
        self.instructions_per_thread = instructions_per_thread
        self.seed = seed
        self.base_rates = population.socket_access_rates()
        accesses = int(
            instructions_per_thread * threads_per_socket
            * population.profile.mpki / 1000.0
        )
        self.accesses_per_socket = min(accesses, accesses_cap_per_socket)

    def phase_rates(self, phase: int) -> np.ndarray:
        """Access rates of one phase, after weight drift."""
        sigma = self.population.profile.drift_sigma
        if sigma <= 0:
            return self.base_rates
        rng = np.random.default_rng((self.seed, phase, 0x5eed))
        jitter = rng.lognormal(mean=0.0, sigma=sigma,
                               size=self.base_rates.shape[1])
        rates = self.base_rates * jitter[None, :]
        return rates / rates.sum(axis=1, keepdims=True)

    def synthesize_phase(self, phase: int) -> PhaseTrace:
        """Sample the count matrix of one phase."""
        rng = np.random.default_rng((self.seed, phase, 0xacce55))
        expected = self.phase_rates(phase) * self.accesses_per_socket
        counts = rng.poisson(expected).astype(np.int64)
        return PhaseTrace(
            phase=phase,
            counts=counts,
            instructions_per_thread=self.instructions_per_thread,
        )

    def synthesize(self, n_phases: int) -> List[PhaseTrace]:
        """Sample ``n_phases`` consecutive phases."""
        if n_phases < 1:
            raise ValueError("need at least one phase")
        return [self.synthesize_phase(phase) for phase in range(n_phases)]

    def record_stream(self, phase: int, n_records: int,
                      socket: Optional[int] = None) -> Iterator[TraceRecord]:
        """Yield individual trace records of one phase.

        Used by the functional substrates (TLB annex, cache, coherence
        replay); the phase pipeline consumes aggregated counts instead.
        When ``socket`` is None, records round-robin across sockets, as a
        merged multi-threaded trace would interleave.
        """
        if n_records < 1:
            raise ValueError("need at least one record")
        rng = np.random.default_rng((self.seed, phase, 0x7ec07d))
        rates = self.phase_rates(phase)
        n_sockets = rates.shape[0]
        sockets = ([socket] * n_records if socket is not None
                   else list(np.arange(n_records) % n_sockets))
        instructions_between = max(
            1, int(1000.0 / self.population.profile.mpki)
        )
        write_fraction = self.population.write_fraction
        instruction_index = 0
        for index, sock in enumerate(sockets):
            page = int(rng.choice(rates.shape[1], p=rates[sock]))
            is_write = bool(rng.random() < write_fraction[page])
            instruction_index += instructions_between
            yield TraceRecord(
                socket=int(sock),
                thread=int(sock) * self.threads_per_socket,
                instruction_index=instruction_index,
                page=page,
                is_write=is_write,
            )
