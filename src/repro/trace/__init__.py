"""Trace infrastructure (Step A of the methodology, Section IV-A1).

The paper traces real executions with Pin, recording per-thread memory
accesses tagged with dynamic instruction counts, chunked into one-billion-
instruction *phases*. We synthesize statistically equivalent traces from a
:class:`PagePopulation`: per phase, every socket draws its LLC-missing
accesses over pages from its stationary access distribution (with mild
phase-to-phase drift), yielding the per-(socket, page) count matrices the
rest of the pipeline consumes. A record-level stream is also available for
the functional substrates (TLB, cache, coherence replay).
"""

from repro.trace.records import PhaseTrace, TraceRecord
from repro.trace.synthetic import TraceSynthesizer

__all__ = ["PhaseTrace", "TraceRecord", "TraceSynthesizer"]
