"""Trace persistence and ingestion.

The paper's Step A writes per-thread instruction and memory traces to
files; this module provides the equivalent on-disk format so traces can
be generated once and reused, or imported from an external tracer (e.g. a
Pin tool) instead of the synthesizer:

* :func:`save_phase_traces` / :func:`load_phase_traces` -- a compressed
  ``.npz`` bundle of per-phase count matrices plus metadata;
* :func:`records_to_phase_trace` -- aggregate raw per-access records
  (socket, page, is_write) into the count matrix the pipeline consumes,
  which is all an external tracer needs to produce.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Union

import numpy as np

from repro.trace.records import PhaseTrace, TraceRecord

_FORMAT_VERSION = 1


def save_phase_traces(traces: List[PhaseTrace],
                      path: Union[str, Path]) -> None:
    """Write a phase-trace bundle as compressed ``.npz``."""
    if not traces:
        raise ValueError("need at least one phase trace")
    shapes = {trace.counts.shape for trace in traces}
    if len(shapes) != 1:
        raise ValueError(f"inconsistent count shapes: {shapes}")
    arrays = {
        f"counts_{trace.phase}": trace.counts.astype(np.int64)
        for trace in traces
    }
    arrays["phases"] = np.array([trace.phase for trace in traces],
                                dtype=np.int64)
    arrays["instructions"] = np.array(
        [trace.instructions_per_thread for trace in traces], dtype=np.int64
    )
    arrays["version"] = np.array([_FORMAT_VERSION], dtype=np.int64)
    np.savez_compressed(Path(path), **arrays)


def load_phase_traces(path: Union[str, Path]) -> List[PhaseTrace]:
    """Read a bundle written by :func:`save_phase_traces`."""
    with np.load(Path(path)) as bundle:
        version = int(bundle["version"][0])
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported trace bundle version {version} "
                f"(expected {_FORMAT_VERSION})"
            )
        phases = bundle["phases"]
        instructions = bundle["instructions"]
        traces = [
            PhaseTrace(
                phase=int(phase),
                counts=bundle[f"counts_{int(phase)}"],
                instructions_per_thread=int(instr),
            )
            for phase, instr in zip(phases, instructions)
        ]
    traces.sort(key=lambda trace: trace.phase)
    return traces


def records_to_phase_trace(records: Iterable[TraceRecord], n_sockets: int,
                           n_pages: int, instructions_per_thread: int,
                           phase: int = 0) -> PhaseTrace:
    """Aggregate raw access records into a phase count matrix.

    This is the ingestion point for external tracers: anything that can
    emit (socket, page) pairs for LLC-missing accesses can drive the
    pipeline.
    """
    counts = np.zeros((n_sockets, n_pages), dtype=np.int64)
    for record in records:
        if not 0 <= record.socket < n_sockets:
            raise ValueError(f"record socket {record.socket} out of range")
        if not 0 <= record.page < n_pages:
            raise ValueError(f"record page {record.page} out of range")
        counts[record.socket, record.page] += 1
    return PhaseTrace(phase=phase, counts=counts,
                      instructions_per_thread=instructions_per_thread)
