"""Trace record formats."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class TraceRecord:
    """One LLC-missing memory access, as the Pin-based tracer would log it."""

    socket: int
    thread: int
    instruction_index: int
    page: int
    is_write: bool


@dataclass
class PhaseTrace:
    """Aggregated access counts of one phase.

    ``counts[s, p]`` is the number of LLC-missing accesses socket ``s``
    issued to page ``p`` during the phase. ``instructions_per_thread`` is
    the phase length in dynamic instructions (one billion in the paper's
    setup).
    """

    phase: int
    counts: np.ndarray
    instructions_per_thread: int

    def __post_init__(self) -> None:
        if self.counts.ndim != 2:
            raise ValueError("counts must be (n_sockets, n_pages)")
        if self.instructions_per_thread <= 0:
            raise ValueError("phase length must be positive")

    @property
    def n_sockets(self) -> int:
        return int(self.counts.shape[0])

    @property
    def n_pages(self) -> int:
        return int(self.counts.shape[1])

    @property
    def total_accesses(self) -> int:
        return int(self.counts.sum())

    def accesses_per_socket(self) -> np.ndarray:
        return self.counts.sum(axis=1)

    def page_totals(self) -> np.ndarray:
        return self.counts.sum(axis=0)

    def touched_mask(self) -> np.ndarray:
        """Boolean (n_sockets, n_pages): who touched what this phase."""
        return self.counts > 0
