"""Read-side queries over the store: the engine behind ``starnuma query``.

Every function takes an open connection (see
:func:`repro.store.schema.open_store`) and returns plain
``(headers, rows)`` tables or dicts -- rendering is the CLI's job, so
this module needs no formatting stack and the service layer can reuse
it verbatim.

Sweeps and traces are referenced by integer id or by label; a bare
string that parses as an int is treated as an id.
"""

from __future__ import annotations

import json
import sqlite3
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.obs.storefmt import row_to_record, trace_meta_record

#: A reference to a sweep or trace: row id, or label.
Ref = Union[int, str]

#: (headers, rows) -- the shape every tabular query returns.
Table = Tuple[Tuple[str, ...], List[Tuple[object, ...]]]


class QueryError(ValueError):
    """The query cannot be answered (unknown sweep, missing table...)."""


def _has_table(conn: sqlite3.Connection, name: str) -> bool:
    return conn.execute(
        "SELECT 1 FROM sqlite_master WHERE type = 'table' AND name = ?",
        (name,),
    ).fetchone() is not None


def _require_results(conn: sqlite3.Connection) -> None:
    if not _has_table(conn, "sweeps"):
        raise QueryError(
            "store has no results tables yet; ingest an export "
            "directory first (starnuma store ingest --db DB DIR)"
        )


def resolve_sweep(conn: sqlite3.Connection, ref: Optional[Ref]) -> int:
    """A sweep reference -> ``sweep_id`` (None picks the only sweep)."""
    _require_results(conn)
    if ref is None:
        rows = conn.execute(
            "SELECT sweep_id, label FROM sweeps ORDER BY sweep_id"
        ).fetchall()
        if len(rows) == 1:
            return int(rows[0][0])
        labels = ", ".join(str(row[1]) for row in rows) or "none ingested"
        raise QueryError(
            f"store holds {len(rows)} sweeps ({labels}); pick one with "
            f"--sweep"
        )
    row = None
    text = str(ref)
    if text.isdigit():
        row = conn.execute(
            "SELECT sweep_id FROM sweeps WHERE sweep_id = ?", (int(text),)
        ).fetchone()
    if row is None:
        row = conn.execute(
            "SELECT sweep_id FROM sweeps WHERE label = ?", (text,)
        ).fetchone()
    if row is None:
        raise QueryError(f"no such sweep: {ref!r}")
    return int(row[0])


def resolve_trace(conn: sqlite3.Connection, ref: Optional[Ref]
                  ) -> Optional[int]:
    """A trace reference -> ``trace_id`` (None means every trace)."""
    if ref is None:
        return None
    row = None
    text = str(ref)
    if text.isdigit():
        row = conn.execute(
            "SELECT trace_id FROM traces WHERE trace_id = ?", (int(text),)
        ).fetchone()
    if row is None:
        row = conn.execute(
            "SELECT trace_id FROM traces WHERE label = ?", (text,)
        ).fetchone()
    if row is None:
        raise QueryError(f"no such trace: {ref!r}")
    return int(row[0])


# -- catalog ----------------------------------------------------------------

def list_sweeps(conn: sqlite3.Connection) -> Table:
    """Every sweep with its run count."""
    _require_results(conn)
    headers = ("sweep", "label", "seed", "phases", "runs", "source")
    rows = [tuple(row) for row in conn.execute(
        "SELECT s.sweep_id, s.label, s.seed, s.n_phases, "
        "       (SELECT COUNT(*) FROM runs r WHERE r.sweep_id = "
        "        s.sweep_id), s.source "
        "FROM sweeps s ORDER BY s.sweep_id"
    )]
    return headers, rows


def list_traces(conn: sqlite3.Connection) -> Table:
    """Every obs trace with its record count."""
    headers = ("trace", "label", "level", "records", "source")
    rows = [tuple(row) for row in conn.execute(
        "SELECT trace_id, label, level, n_records, source "
        "FROM traces ORDER BY trace_id"
    )]
    return headers, rows


def list_runs(conn: sqlite3.Connection,
              sweep: Optional[Ref] = None) -> Table:
    """Every result table of one sweep (or all sweeps)."""
    _require_results(conn)
    headers = ("sweep", "experiment", "rows", "notes")
    sql = ("SELECT s.label, r.experiment, r.n_rows, r.notes "
           "FROM runs r JOIN sweeps s ON s.sweep_id = r.sweep_id ")
    params: Tuple[object, ...] = ()
    if sweep is not None:
        sql += "WHERE r.sweep_id = ? "
        params = (resolve_sweep(conn, sweep),)
    sql += "ORDER BY r.sweep_id, r.experiment"
    return headers, [tuple(row) for row in conn.execute(sql, params)]


# -- exact result tables ----------------------------------------------------

def run_table(conn: sqlite3.Connection, sweep: Optional[Ref],
              experiment: str) -> Dict[str, object]:
    """One stored result, in the exported-JSON shape, byte-for-value.

    Returns ``{experiment, notes, headers, rows}`` exactly as the
    ``<id>.json`` export carried it -- rows come back from the verbatim
    JSON cells, not the long-form metric explosion.
    """
    sweep_id = resolve_sweep(conn, sweep)
    run = conn.execute(
        "SELECT run_id, notes, headers FROM runs "
        "WHERE sweep_id = ? AND experiment = ?",
        (sweep_id, experiment),
    ).fetchone()
    if run is None:
        known = [str(row[0]) for row in conn.execute(
            "SELECT experiment FROM runs WHERE sweep_id = ? "
            "ORDER BY experiment", (sweep_id,))]
        raise QueryError(
            f"sweep has no experiment {experiment!r} "
            f"(has: {', '.join(known) or 'none'})"
        )
    run_id, notes, headers_json = run
    rows = [json.loads(str(data)) for (data,) in conn.execute(
        "SELECT data FROM run_rows WHERE run_id = ? ORDER BY row_index",
        (run_id,),
    )]
    return {
        "experiment": experiment,
        "notes": notes,
        "headers": json.loads(str(headers_json)),
        "rows": rows,
    }


def _column(table: Dict[str, object], name: str) -> int:
    headers = table["headers"]
    assert isinstance(headers, list)
    if name not in headers:
        raise QueryError(
            f"experiment {table['experiment']!r} has no column {name!r} "
            f"(has: {', '.join(map(str, headers))})"
        )
    return headers.index(name)


# -- analysis ---------------------------------------------------------------

def degradation_curve(conn: sqlite3.Connection, sweep: Optional[Ref],
                      experiment: str = "fault-study",
                      metric: str = "speedup_over_baseline",
                      workload: Optional[str] = None) -> Table:
    """The fault-study degradation curve, straight from the store.

    One row per (workload, severity rung): the metric's value as the
    fault ladder escalates, ordered exactly as the experiment emitted
    it. ``workload`` narrows to one curve.
    """
    table = run_table(conn, sweep, experiment)
    workload_col = _column(table, "workload")
    severity_col = _column(table, "severity")
    scenario_col = _column(table, "scenario")
    value_col = _column(table, metric)
    headers = ("workload", "severity", "scenario", metric)
    rows: List[Tuple[object, ...]] = []
    table_rows = table["rows"]
    assert isinstance(table_rows, list)
    for cells in table_rows:
        if workload is not None and cells[workload_col] != workload:
            continue
        rows.append((cells[workload_col], cells[severity_col],
                     cells[scenario_col], cells[value_col]))
    if workload is not None and not rows:
        raise QueryError(f"no rows for workload {workload!r} in "
                         f"{experiment!r}")
    return headers, rows


def metric_values(conn: sqlite3.Connection, sweep: Ref,
                  experiment: str, metric: str
                  ) -> Dict[str, float]:
    """scenario -> value of one metric column in one sweep (indexed)."""
    sweep_id = resolve_sweep(conn, sweep)
    rows = conn.execute(
        "SELECT m.scenario, m.value FROM run_metrics m "
        "JOIN runs r ON r.run_id = m.run_id "
        "WHERE r.sweep_id = ? AND r.experiment = ? AND m.metric = ? "
        "ORDER BY m.row_index",
        (sweep_id, experiment, metric),
    ).fetchall()
    if not rows:
        raise QueryError(
            f"sweep has no numeric metric {metric!r} for experiment "
            f"{experiment!r}"
        )
    return {str(scenario): float(value) for scenario, value in rows}


def cross_sweep_diff(conn: sqlite3.Connection, sweep_a: Ref, sweep_b: Ref,
                     experiment: str, metric: str) -> Table:
    """Per-scenario values of one metric in two sweeps, with deltas.

    Rows: ``(scenario, a, b, delta, ratio)`` where ``delta = b - a``
    and ``ratio = b / a`` (None when a is 0). Scenarios present in only
    one sweep get a None on the missing side and no delta.
    """
    values_a = metric_values(conn, sweep_a, experiment, metric)
    values_b = metric_values(conn, sweep_b, experiment, metric)
    headers = ("scenario", "a", "b", "delta", "ratio")
    rows: List[Tuple[object, ...]] = []
    for scenario in list(values_a) + [key for key in values_b
                                      if key not in values_a]:
        a = values_a.get(scenario)
        b = values_b.get(scenario)
        if a is None or b is None:
            rows.append((scenario, a, b, None, None))
            continue
        rows.append((scenario, a, b, b - a, (b / a) if a else None))
    return headers, rows


def top_regressions(conn: sqlite3.Connection, sweep_a: Ref, sweep_b: Ref,
                    top: int = 10, experiment: Optional[str] = None,
                    metric: Optional[str] = None) -> Table:
    """The N largest relative drops from sweep A to sweep B.

    Joins every (experiment, scenario, metric) cell present in both
    sweeps and ranks by relative drop ``(a - b) / |a|`` -- for
    speedup-shaped metrics that is exactly "which scenarios regressed".
    ``experiment``/``metric`` narrow the join.
    """
    if top < 1:
        raise QueryError(f"top must be >= 1, got {top}")
    id_a = resolve_sweep(conn, sweep_a)
    id_b = resolve_sweep(conn, sweep_b)
    sql = (
        "SELECT ra.experiment, ma.scenario, ma.metric, ma.value, mb.value "
        "FROM run_metrics ma "
        "JOIN runs ra ON ra.run_id = ma.run_id AND ra.sweep_id = ? "
        "JOIN runs rb ON rb.sweep_id = ? AND rb.experiment = ra.experiment "
        "JOIN run_metrics mb ON mb.run_id = rb.run_id "
        "     AND mb.scenario = ma.scenario AND mb.metric = ma.metric "
    )
    params: List[object] = [id_a, id_b]
    clauses = []
    if experiment is not None:
        clauses.append("ra.experiment = ?")
        params.append(experiment)
    if metric is not None:
        clauses.append("ma.metric = ?")
        params.append(metric)
    if clauses:
        sql += "WHERE " + " AND ".join(clauses) + " "
    ranked: List[Tuple[object, ...]] = []
    for exp, scenario, name, a, b in conn.execute(sql, params):
        a = float(a)
        b = float(b)
        drop = (a - b) / abs(a) if a else 0.0
        ranked.append((exp, scenario, name, a, b, drop))
    ranked.sort(key=lambda row: (-float(row[5]), row[0], row[1], row[2]))  # type: ignore[arg-type]
    headers = ("experiment", "scenario", "metric", "a", "b", "drop")
    return headers, ranked[:top]


# -- obs-side queries -------------------------------------------------------

def _phase_fold(conn: sqlite3.Connection, trace_id: Optional[int]
                ) -> List[Tuple[str, int, float]]:
    """Per-phase (phase, span_count, total_ns), in phase order.

    Served from the materialized ``phase_metrics`` table when the
    trace has been indexed (ingest does this; ``starnuma store
    ingest`` indexes live-sink traces too), falling back to an indexed
    scan of the raw record log otherwise.
    """
    params: Tuple[object, ...] = ()
    clause = ""
    if trace_id is not None:
        clause = "WHERE trace_id = ? "
        params = (trace_id,)
    if _has_table(conn, "phase_metrics"):
        rows = conn.execute(
            "SELECT phase, SUM(span_count), SUM(total_dur_ns) "
            f"FROM phase_metrics {clause}"
            "GROUP BY phase ORDER BY CAST(phase AS INTEGER), phase",
            params,
        ).fetchall()
        if rows:
            return [(str(phase), int(count), float(total))
                    for phase, count, total in rows]
    fold: Dict[str, List[float]] = {}
    sql = ("SELECT dur_ns, attrs FROM obs_records "
           "WHERE kind = 'span' AND name = 'sim.phase'")
    if trace_id is not None:
        sql += " AND trace_id = ?"
    for dur_ns, attrs_json in conn.execute(sql, params):
        attrs = json.loads(str(attrs_json)) if attrs_json else {}
        phase = str(attrs.get("phase", "?"))
        entry = fold.setdefault(phase, [0, 0.0])
        entry[0] += 1
        entry[1] += float(dur_ns or 0)

    def _order(item: Tuple[str, List[float]]) -> Tuple[int, str]:
        try:
            return (int(item[0]), item[0])
        except ValueError:
            return (1 << 30, item[0])

    return [(phase, int(count), total)
            for phase, (count, total) in sorted(fold.items(), key=_order)]


def phase_timeline(conn: sqlite3.Connection,
                   trace: Optional[Ref] = None) -> Table:
    """Per-phase ``sim.phase`` totals: the phase timeline, indexed."""
    trace_id = resolve_trace(conn, trace)
    headers = ("phase", "spans", "total_ms")
    return headers, [
        (phase, count, total_ns / 1e6)
        for phase, count, total_ns in _phase_fold(conn, trace_id)
    ]


def migration_provenance(conn: sqlite3.Connection,
                         trace: Optional[Ref] = None,
                         name: Optional[str] = None,
                         limit: int = 50) -> Table:
    """Per-decision migration provenance rows, newest-phase last."""
    trace_id = resolve_trace(conn, trace)
    clauses = []
    params: List[object] = []
    if trace_id is not None:
        clauses.append("trace_id = ?")
        params.append(trace_id)
    if name is not None:
        clauses.append("name = ?")
        params.append(name)
    sql = ("SELECT trace_id, name, policy, phase, region, pages, "
           "source, destination, rule FROM migration_decisions ")
    if clauses:
        sql += "WHERE " + " AND ".join(clauses) + " "
    sql += "ORDER BY trace_id, seq LIMIT ?"
    params.append(max(1, limit))
    headers = ("trace", "event", "policy", "phase", "region", "pages",
               "source", "destination", "rule")
    return headers, [tuple(row) for row in conn.execute(sql, params)]


def _merge_metric(folded: Dict[str, Dict[str, object]],
                  record: Dict[str, object]) -> None:
    name = str(record.get("name"))
    existing = folded.get(name)
    if existing is None:
        folded[name] = dict(record)
        return
    metric_type = record.get("type")
    if metric_type == "counter":
        existing["value"] = (float(existing.get("value", 0.0))  # type: ignore[arg-type]
                             + float(record.get("value", 0.0)))  # type: ignore[arg-type]
    elif metric_type == "gauge":
        existing["value"] = record.get("value")
        existing["samples"] = (int(existing.get("samples", 0))  # type: ignore[call-overload]
                               + int(record.get("samples", 0)))  # type: ignore[call-overload]
    elif metric_type == "histogram":
        if existing.get("edges") == record.get("edges"):
            buckets = [int(a) + int(b) for a, b in
                       zip(existing.get("buckets", []),  # type: ignore[arg-type]
                           record.get("buckets", []))]  # type: ignore[arg-type]
            existing["buckets"] = buckets
            existing["count"] = (int(existing.get("count", 0))  # type: ignore[call-overload]
                                 + int(record.get("count", 0)))  # type: ignore[call-overload]
            existing["total"] = (float(existing.get("total", 0.0))  # type: ignore[arg-type]
                                 + float(record.get("total", 0.0)))  # type: ignore[arg-type]


def summarize_store(conn: sqlite3.Connection,
                    trace: Optional[Ref] = None) -> Dict[str, object]:
    """The ``starnuma obs summary`` fold, as store index lookups.

    Returns the exact summary-dict shape
    :func:`repro.obs.summary.summarize_records` folds from a JSONL
    trace, but computed with grouped SQL over the record log (and the
    materialized ``phase_metrics`` index) -- no trace re-scan, no
    directory walk. With ``trace=None`` every trace in the store is
    folded together, which is how a resumed sweep's two sessions read
    as one record set; metric summaries merge across traces (counters
    and histogram buckets sum, gauges keep the last write).
    """
    trace_id = resolve_trace(conn, trace)
    clause = ""
    params: Tuple[object, ...] = ()
    if trace_id is not None:
        clause = "AND trace_id = ? "
        params = (trace_id,)

    meta_sql = "SELECT level, schema_version, clock FROM traces "
    count_sql = "SELECT COALESCE(SUM(n_records), 0) FROM traces "
    if trace_id is not None:
        meta_sql += "WHERE trace_id = ? "
        count_sql += "WHERE trace_id = ? "
    meta_sql += "ORDER BY trace_id LIMIT 1"
    meta_row = conn.execute(meta_sql, params).fetchone()
    if meta_row is None:
        raise QueryError("store holds no obs traces")
    meta = trace_meta_record(meta_row[0], meta_row[1], meta_row[2])
    n_records = int(conn.execute(count_sql, params).fetchone()[0])

    spans: Dict[str, Dict[str, float]] = {}
    for name, count, total in conn.execute(
            "SELECT name, COUNT(*), COALESCE(SUM(dur_ns), 0) "
            f"FROM obs_records WHERE kind = 'span' {clause}"
            "GROUP BY name ORDER BY name", params):
        spans[str(name)] = {"count": int(count), "total_ns": float(total)}

    events: Dict[str, int] = {}
    for name, count in conn.execute(
            "SELECT name, COUNT(*) "
            f"FROM obs_records WHERE kind = 'event' {clause}"
            "GROUP BY name ORDER BY name", params):
        events[str(name)] = int(count)

    phase_ns: Dict[object, float] = {}
    for phase, _spans, total_ns in _phase_fold(conn, trace_id):
        key: object = phase
        try:
            key = int(phase)
        except ValueError:
            pass
        phase_ns[key] = total_ns

    metrics: Dict[str, Dict[str, object]] = {}
    for row in conn.execute(
            "SELECT kind, name, t_ns, dur_ns, metric_type, value, attrs, "
            f"payload FROM obs_records WHERE kind = 'metric' {clause}"
            "ORDER BY trace_id, seq", params):
        _merge_metric(metrics, row_to_record(row))

    return {
        "meta": meta,
        "n_records": n_records,
        "spans": spans,
        "phase_ns": phase_ns,
        "events": events,
        "metrics": sorted(metrics.values(),
                          key=lambda record: str(record.get("name"))),
    }
