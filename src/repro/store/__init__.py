"""``repro.store``: the embedded results & trace database.

One sqlite file (WAL mode, busy timeout) replaces the loose-JSON
sprawl of export directories and JSONL obs traces with a queryable
substrate:

* **schema** (:mod:`repro.store.schema`) -- schema-versioned tables
  for sweeps, runs (result tables), long-form run metrics, per-phase
  metrics, migration-decision provenance, and raw obs records. The
  obs-side half (trace registry + record log + buffered batch writer)
  lives in :mod:`repro.obs.storefmt` so the layering arrow stays
  ``store -> obs``.
* **writer** (:mod:`repro.store.writer`) -- :class:`StoreWriter`, the
  buffered write-side lifecycle (``append N rows in memory, flush in
  one transaction; flush()/close()``), fork-safe like the obs sink.
* **ingest** (:mod:`repro.store.ingest`) -- backfills existing JSONL
  traces and export/manifest directories (``starnuma store ingest``).
* **query** (:mod:`repro.store.query`) -- the read-side API behind
  ``starnuma query``: exact result tables, top-N regressions between
  sweeps, cross-sweep scenario diffs, degradation curves, per-phase
  timelines, and the store-backed ``starnuma obs summary`` fold.

The layering contract (DESIGN.md §8) allows ``store`` to import only
``config`` and ``obs``; the simulator never imports it, so headline
numbers stay computable without a database anywhere near the model.
"""

from repro.obs.storefmt import StoreSchemaError, is_sqlite_path
from repro.store.ingest import (
    StoreIngestError,
    ingest_export_dir,
    ingest_path,
    ingest_trace,
    index_traces,
)
from repro.store.query import (
    QueryError,
    cross_sweep_diff,
    degradation_curve,
    list_runs,
    list_sweeps,
    list_traces,
    metric_values,
    migration_provenance,
    phase_timeline,
    run_table,
    summarize_store,
    top_regressions,
)
from repro.store.schema import (
    STORE_SCHEMA_VERSION,
    ensure_schema,
    open_store,
)
from repro.store.writer import StoreWriter

__all__ = [
    "STORE_SCHEMA_VERSION",
    "StoreIngestError",
    "StoreSchemaError",
    "StoreWriter",
    "QueryError",
    "cross_sweep_diff",
    "degradation_curve",
    "ensure_schema",
    "index_traces",
    "ingest_export_dir",
    "ingest_path",
    "ingest_trace",
    "is_sqlite_path",
    "list_runs",
    "list_sweeps",
    "list_traces",
    "metric_values",
    "migration_provenance",
    "open_store",
    "phase_timeline",
    "run_table",
    "summarize_store",
    "top_regressions",
]
