"""The results half of the store schema, stacked on the obs half.

:mod:`repro.obs.storefmt` owns the tables the live obs sink also
writes (``store_meta``, ``traces``, ``obs_records``); this module adds
the results tables and the derived index tables:

``sweeps``
    One ingested export directory (or live result set): the manifest's
    identity fields plus its full JSON. ``label`` is unique -- queries
    name sweeps by label or id.
``runs`` / ``run_rows``
    One experiment result table per row of ``runs`` (headers + notes),
    with every result row stored verbatim as a JSON cell list in
    ``run_rows`` -- ``starnuma query table`` reproduces the exported
    JSON byte-for-value from these.
``run_metrics``
    The same rows exploded long-form: one (scenario, metric, value)
    row per numeric cell, which is what cross-sweep joins (diffs,
    top-N regressions) select on.
``phase_metrics``
    The materialized per-phase fold of ``sim.phase`` spans -- the
    index the summary/timeline queries hit instead of re-folding raw
    records.
``migration_decisions``
    Per-decision migration provenance (``migration.*`` events)
    extracted from the record log with its discriminating columns
    typed out.

Everything is schema-versioned through the ``store_meta`` ledger
(``obs_schema`` for the obs half, ``store_schema`` for this half); a
mismatch refuses with one line rather than guessing at a layout.
"""

from __future__ import annotations

import sqlite3
from pathlib import Path
from typing import Tuple, Union

from repro.obs.storefmt import (
    DEFAULT_BUSY_TIMEOUT_S,
    StoreSchemaError,
    connect,
    ensure_core_schema,
)

#: Version of the results half of the schema (``store_meta`` key
#: ``store_schema``).
STORE_SCHEMA_VERSION = 1

STORE_DDL: Tuple[str, ...] = (
    """
    CREATE TABLE IF NOT EXISTS sweeps (
        sweep_id       INTEGER PRIMARY KEY AUTOINCREMENT,
        label          TEXT NOT NULL UNIQUE,
        source         TEXT NOT NULL,
        schema_version INTEGER,
        seed           INTEGER,
        n_phases       INTEGER,
        warmup_phases  INTEGER,
        git            TEXT,
        manifest       TEXT
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS runs (
        run_id     INTEGER PRIMARY KEY AUTOINCREMENT,
        sweep_id   INTEGER NOT NULL,
        experiment TEXT NOT NULL,
        notes      TEXT,
        headers    TEXT NOT NULL,
        n_rows     INTEGER NOT NULL DEFAULT 0,
        UNIQUE (sweep_id, experiment)
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS run_rows (
        run_id    INTEGER NOT NULL,
        row_index INTEGER NOT NULL,
        scenario  TEXT NOT NULL,
        data      TEXT NOT NULL,
        PRIMARY KEY (run_id, row_index)
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS run_metrics (
        run_id    INTEGER NOT NULL,
        row_index INTEGER NOT NULL,
        scenario  TEXT NOT NULL,
        metric    TEXT NOT NULL,
        value     REAL NOT NULL
    )
    """,
    """
    CREATE INDEX IF NOT EXISTS idx_run_metrics_lookup
        ON run_metrics (run_id, metric, scenario)
    """,
    """
    CREATE TABLE IF NOT EXISTS phase_metrics (
        trace_id     INTEGER NOT NULL,
        phase        TEXT NOT NULL,
        span_count   INTEGER NOT NULL,
        total_dur_ns INTEGER NOT NULL,
        PRIMARY KEY (trace_id, phase)
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS migration_decisions (
        trace_id    INTEGER NOT NULL,
        seq         INTEGER NOT NULL,
        t_ns        INTEGER,
        name        TEXT NOT NULL,
        policy      TEXT,
        phase       INTEGER,
        region      INTEGER,
        pages       INTEGER,
        source      TEXT,
        destination TEXT,
        rule        TEXT,
        attrs       TEXT,
        PRIMARY KEY (trace_id, seq)
    )
    """,
    """
    CREATE INDEX IF NOT EXISTS idx_migration_decisions_name
        ON migration_decisions (trace_id, name)
    """,
)

INSERT_RUN_ROW = (
    "INSERT INTO run_rows (run_id, row_index, scenario, data) "
    "VALUES (?, ?, ?, ?)"
)
INSERT_RUN_METRIC = (
    "INSERT INTO run_metrics (run_id, row_index, scenario, metric, value) "
    "VALUES (?, ?, ?, ?, ?)"
)
INSERT_PHASE_METRIC = (
    "INSERT INTO phase_metrics (trace_id, phase, span_count, total_dur_ns) "
    "VALUES (?, ?, ?, ?)"
)
INSERT_MIGRATION_DECISION = (
    "INSERT INTO migration_decisions (trace_id, seq, t_ns, name, policy, "
    "phase, region, pages, source, destination, rule, attrs) "
    "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)"
)


def ensure_schema(conn: sqlite3.Connection) -> None:
    """Create both schema halves; verify their recorded versions."""
    ensure_core_schema(conn)
    with conn:
        for statement in STORE_DDL:
            conn.execute(statement)
        conn.execute(
            "INSERT OR IGNORE INTO store_meta (key, value) VALUES (?, ?)",
            ("store_schema", str(STORE_SCHEMA_VERSION)),
        )
    row = conn.execute(
        "SELECT value FROM store_meta WHERE key = 'store_schema'"
    ).fetchone()
    if row is None or str(row[0]) != str(STORE_SCHEMA_VERSION):
        recorded = None if row is None else row[0]
        raise StoreSchemaError(
            f"store records store_schema {recorded!r}; this version "
            f"reads {STORE_SCHEMA_VERSION} -- refusing to guess at an "
            f"unknown layout"
        )


def open_store(path: Union[str, Path], *, readonly: bool = False,
               busy_timeout_s: float = DEFAULT_BUSY_TIMEOUT_S,
               ) -> sqlite3.Connection:
    """Open (creating if needed) a store with the full schema applied.

    ``readonly`` skips schema creation -- the file must already be a
    store; a bare sqlite file without the ledger is refused.
    """
    conn = connect(path, readonly=readonly, busy_timeout_s=busy_timeout_s)
    if readonly:
        ledger = conn.execute(
            "SELECT name FROM sqlite_master WHERE type = 'table' "
            "AND name = 'store_meta'"
        ).fetchone()
        if ledger is None:
            conn.close()
            raise StoreSchemaError(
                f"{path} is a sqlite file but not a results store "
                f"(no store_meta schema ledger)"
            )
        return conn
    ensure_schema(conn)
    return conn
