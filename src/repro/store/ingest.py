"""Backfill existing artifacts into the store: ``starnuma store ingest``.

Two artifact shapes exist in the wild and both land here:

* **JSONL obs traces** (``--obs-trace foo.jsonl`` output) stream in
  line by line -- the file is never materialized -- into the same
  ``obs_records``/``phase_metrics``/``migration_decisions`` tables the
  live :class:`~repro.obs.sinks.SqliteSink` feeds.
* **Export directories** (``starnuma export --out DIR``): the
  ``manifest.json`` becomes a ``sweeps`` row and every result
  ``<id>.json`` a ``runs``/``run_rows``/``run_metrics`` group. A JSONL
  obs trace the manifest points at is ingested alongside.

:func:`index_traces` closes the loop for traces written live by the
sink (which streams raw records only): it folds any trace missing its
derived rows into ``phase_metrics``/``migration_decisions``, so
summary and timeline queries are index lookups afterwards.
"""

from __future__ import annotations

import json
import sqlite3
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.obs.storefmt import (
    SELECT_OBS_RECORDS,
    is_sqlite_path,
    row_to_record,
)
from repro.obs.summary import iter_trace
from repro.store.schema import (
    INSERT_MIGRATION_DECISION,
    INSERT_PHASE_METRIC,
)
from repro.store.writer import StoreWriter

#: Files of an export directory that are not result tables.
_NON_RESULT_FILES = ("manifest.json", "checkpoint.json")


class StoreIngestError(ValueError):
    """An artifact cannot be ingested (shape, duplicate label, ...)."""


def _unique_label(conn: sqlite3.Connection, table: str, column: str,
                  label: str) -> None:
    row = conn.execute(
        f"SELECT 1 FROM {table} WHERE {column} = ?", (label,)
    ).fetchone()
    if row is not None:
        raise StoreIngestError(
            f"{table[:-1]} label {label!r} already exists in the store; "
            f"pick another with --label"
        )


def ingest_trace(writer: StoreWriter, path: Path,
                 label: Optional[str] = None) -> int:
    """Stream one JSONL obs trace into the store; returns ``trace_id``."""
    label = label or path.name
    trace_id = writer.begin_trace(source=str(path), label=label)
    for record in iter_trace(path):
        writer.add_obs_record(trace_id, record)
    writer.finish_trace(trace_id)
    return trace_id


def ingest_export_dir(writer: StoreWriter, directory: Path,
                      label: Optional[str] = None) -> int:
    """Ingest one export directory; returns ``sweep_id``.

    The manifest is optional (a directory of bare result JSON files
    still ingests); result files are every ``*.json`` that parses to
    the exported ``{experiment, notes, headers, rows}`` shape.
    """
    label = label or directory.resolve().name
    _unique_label(writer.connection, "sweeps", "label", label)
    manifest: Dict[str, object] = {}
    manifest_path = directory / "manifest.json"
    if manifest_path.exists():
        loaded = json.loads(manifest_path.read_text(encoding="utf-8"))
        if isinstance(loaded, dict):
            manifest = loaded
    sweep_id = writer.begin_sweep(label, source=str(directory),
                                  manifest=manifest)
    n_results = 0
    for result_path in sorted(directory.glob("*.json")):
        if result_path.name in _NON_RESULT_FILES:
            continue
        try:
            result = json.loads(result_path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise StoreIngestError(
                f"{result_path} is not valid JSON: {exc}") from exc
        if not isinstance(result, dict) or "headers" not in result \
                or "rows" not in result:
            continue  # some other JSON artifact riding along
        writer.add_result(sweep_id, result)
        n_results += 1
    if n_results == 0:
        raise StoreIngestError(
            f"{directory} holds no exported result tables "
            f"(no *.json with headers/rows)"
        )
    trace_ref = manifest.get("obs_trace")
    if isinstance(trace_ref, str):
        trace_path = Path(trace_ref)
        if not trace_path.is_absolute():
            trace_path = directory / trace_path
        if trace_path.exists() and not is_sqlite_path(trace_path):
            ingest_trace(writer, trace_path, label=f"{label}:obs")
    return sweep_id


def ingest_path(writer: StoreWriter, path: Path,
                label: Optional[str] = None) -> Tuple[str, int]:
    """Dispatch one artifact path; returns ("sweep"|"trace", id)."""
    if path.is_dir():
        return ("sweep", ingest_export_dir(writer, path, label=label))
    if path.is_file():
        if is_sqlite_path(path):
            raise StoreIngestError(
                f"{path} is already a sqlite store; point --db at it "
                f"instead of ingesting it"
            )
        return ("trace", ingest_trace(writer, path, label=label))
    raise StoreIngestError(f"no such artifact: {path}")


def index_traces(conn: sqlite3.Connection) -> List[int]:
    """Materialize derived rows for traces that lack them.

    Live-sink traces carry raw records only; this folds their
    ``sim.phase`` spans into ``phase_metrics`` and their
    ``migration.*`` events into ``migration_decisions``. Returns the
    trace ids indexed. Idempotent: already-indexed traces are skipped.
    """
    indexed: List[int] = []
    trace_ids = [int(row[0]) for row in conn.execute(
        "SELECT trace_id FROM traces ORDER BY trace_id")]
    for trace_id in trace_ids:
        have = conn.execute(
            "SELECT (SELECT COUNT(*) FROM phase_metrics "
            "        WHERE trace_id = ?) + "
            "       (SELECT COUNT(*) FROM migration_decisions "
            "        WHERE trace_id = ?)",
            (trace_id, trace_id),
        ).fetchone()
        if have and int(have[0]) > 0:
            continue
        phase_fold: Dict[str, List[int]] = {}
        migration_rows: List[Tuple[object, ...]] = []
        seq = 0
        for row in conn.execute(SELECT_OBS_RECORDS, (trace_id,)):
            seq += 1
            record = row_to_record(row)
            kind = record.get("kind")
            name = str(record.get("name", ""))
            attrs = record.get("attrs")
            attrs = attrs if isinstance(attrs, dict) else {}
            if kind == "span" and name == "sim.phase":
                phase = str(attrs.get("phase", len(phase_fold)))
                entry = phase_fold.setdefault(phase, [0, 0])
                entry[0] += 1
                entry[1] += int(record.get("dur_ns", 0))  # type: ignore[call-overload]
            elif kind == "event" and name.startswith("migration."):
                migration_rows.append((
                    trace_id, seq, record.get("t_ns"), name,
                    attrs.get("policy"), attrs.get("phase"),
                    attrs.get("region"), attrs.get("pages"),
                    attrs.get("source"), attrs.get("destination"),
                    attrs.get("rule"),
                    json.dumps(attrs, sort_keys=True,
                               separators=(",", ":")) if attrs else None,
                ))
        if not phase_fold and not migration_rows:
            continue
        with conn:
            conn.executemany(INSERT_PHASE_METRIC, [
                (trace_id, phase, count, total_ns)
                for phase, (count, total_ns) in phase_fold.items()
            ])
            conn.executemany(INSERT_MIGRATION_DECISION, migration_rows)
        indexed.append(trace_id)
    return indexed
