"""The store's write side: one lifecycle object, buffered batch writers.

:class:`StoreWriter` owns the connection and one
:class:`~repro.obs.storefmt.BufferedTableWriter` per bulk table. Row
headers that other rows reference (``sweeps``, ``runs``, ``traces``)
are inserted eagerly so their autoincrement ids exist before the bulk
rows that point at them; everything else accumulates in memory and
lands ``batch_size`` rows at a time in single transactions. The
explicit ``flush()``/``close()`` lifecycle mirrors the obs sink, and
the same fork contract applies: the writer belongs to the process that
opened it, a forked child's calls raise instead of corrupting the WAL.

Determinism: nothing here reads a clock or draws randomness -- every
row's content comes from the ingested records and results themselves,
so ingesting the same inputs twice (under different labels) produces
identical row content.
"""

from __future__ import annotations

import json
import os
import sqlite3
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.obs import storefmt
from repro.store import schema as store_schema

#: Result cell types treated as metric values (bool is a label, not a
#: measurement, despite being an int subclass).
_NUMERIC = (int, float)


def scenario_key(cells: List[object]) -> str:
    """The cross-sweep join key of one result row.

    Label cells (strings and bools) joined with ``/`` -- ``bfs``,
    ``bfs/baseline``, ``bfs/pool-dead`` -- so the same scenario in two
    sweeps lands on the same key regardless of its metric values.
    """
    labels = [str(cell) for cell in cells
              if isinstance(cell, (str, bool))]
    return "/".join(labels) if labels else "-"


class StoreWriter:
    """Write-side lifecycle of the results & trace store."""

    def __init__(self, path: Union[str, Path], *,
                 batch_size: int = storefmt.DEFAULT_BATCH_SIZE,
                 busy_timeout_s: float = storefmt.DEFAULT_BUSY_TIMEOUT_S,
                 ) -> None:
        self.path = Path(path)
        self._conn: sqlite3.Connection = store_schema.open_store(
            self.path, busy_timeout_s=busy_timeout_s)
        self._obs_rows = storefmt.BufferedTableWriter(
            self._conn, storefmt.INSERT_OBS_RECORD, batch_size)
        self._run_rows = storefmt.BufferedTableWriter(
            self._conn, store_schema.INSERT_RUN_ROW, batch_size)
        self._run_metrics = storefmt.BufferedTableWriter(
            self._conn, store_schema.INSERT_RUN_METRIC, batch_size)
        self._phase_metrics = storefmt.BufferedTableWriter(
            self._conn, store_schema.INSERT_PHASE_METRIC, batch_size)
        self._migrations = storefmt.BufferedTableWriter(
            self._conn, store_schema.INSERT_MIGRATION_DECISION, batch_size)
        # Per-trace bounded fold state: phase label -> [count, total_ns].
        self._phase_folds: Dict[int, Dict[str, List[int]]] = {}
        self._trace_seq: Dict[int, int] = {}
        self._trace_records: Dict[int, int] = {}
        self._pid = os.getpid()
        self._closed = False

    # -- lifecycle -----------------------------------------------------------

    def __enter__(self) -> "StoreWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    @property
    def connection(self) -> sqlite3.Connection:
        """The underlying connection (read-side reuse after flush)."""
        return self._conn

    def flush(self) -> None:
        """Land every buffered row now (one transaction per table)."""
        self._guard()
        for writer in (self._obs_rows, self._run_rows, self._run_metrics,
                       self._phase_metrics, self._migrations):
            writer.flush()

    def close(self) -> None:
        if self._closed or os.getpid() != self._pid:
            return
        for trace_id in list(self._phase_folds):
            self.finish_trace(trace_id)
        self.flush()
        self._conn.close()
        self._closed = True

    def _guard(self) -> None:
        if self._closed:
            raise ValueError(f"store writer {self.path} is closed")
        if os.getpid() != self._pid:
            raise RuntimeError(
                f"store writer {self.path} crossed a fork: open a fresh "
                f"writer in the child instead of inheriting this one"
            )

    # -- results -------------------------------------------------------------

    def begin_sweep(self, label: str, *, source: str,
                    manifest: Optional[Dict[str, object]] = None) -> int:
        """Register one sweep (export directory); returns ``sweep_id``."""
        self._guard()
        manifest = manifest or {}
        with self._conn:
            cursor = self._conn.execute(
                "INSERT INTO sweeps (label, source, schema_version, seed, "
                "n_phases, warmup_phases, git, manifest) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                (label, source, manifest.get("schema"),
                 manifest.get("seed"), manifest.get("n_phases"),
                 manifest.get("warmup_phases"), manifest.get("git"),
                 json.dumps(manifest, sort_keys=True) if manifest else None),
            )
        row_id = cursor.lastrowid
        assert row_id is not None
        return int(row_id)

    def add_result(self, sweep_id: int, result: Dict[str, object]) -> int:
        """Store one exported result table; returns ``run_id``.

        ``result`` is the ``result_to_dict`` shape every ``<id>.json``
        export carries: ``experiment``, ``notes``, ``headers``,
        ``rows``. Rows are kept verbatim (JSON cell lists) and also
        exploded long-form into ``run_metrics``.
        """
        self._guard()
        headers = [str(header) for header in result.get("headers", [])]
        rows = result.get("rows", [])
        assert isinstance(rows, list)
        with self._conn:
            cursor = self._conn.execute(
                "INSERT INTO runs (sweep_id, experiment, notes, headers, "
                "n_rows) VALUES (?, ?, ?, ?, ?)",
                (sweep_id, result.get("experiment"), result.get("notes"),
                 json.dumps(headers), len(rows)),
            )
        run_id = cursor.lastrowid
        assert run_id is not None
        for row_index, row in enumerate(rows):
            cells = list(row)
            scenario = scenario_key(cells)
            self._run_rows.append((run_id, row_index, scenario,
                                   json.dumps(cells)))
            for header, cell in zip(headers, cells):
                if isinstance(cell, _NUMERIC) and not isinstance(cell, bool):
                    self._run_metrics.append(
                        (run_id, row_index, scenario, header, float(cell)))
        return int(run_id)

    # -- obs traces ----------------------------------------------------------

    def begin_trace(self, *, source: str, label: Optional[str] = None,
                    meta: Optional[Dict[str, object]] = None) -> int:
        """Register one obs trace; returns ``trace_id``."""
        self._guard()
        trace_id = storefmt.begin_trace(self._conn, source=source,
                                        label=label, meta=meta)
        self._phase_folds[trace_id] = {}
        self._trace_seq[trace_id] = 0
        self._trace_records[trace_id] = 1 if meta is not None else 0
        return trace_id

    def add_obs_record(self, trace_id: int,
                       record: Dict[str, object]) -> None:
        """Append one record; feeds the derived index tables as it goes."""
        self._guard()
        self._trace_records[trace_id] = (
            self._trace_records.get(trace_id, 0) + 1)
        kind = record.get("kind")
        if kind == "meta":
            storefmt.set_trace_meta(self._conn, trace_id, record)
            return
        seq = self._trace_seq.get(trace_id, 0) + 1
        self._trace_seq[trace_id] = seq
        self._obs_rows.append(
            storefmt.record_to_row(trace_id, seq, record))
        name = str(record.get("name", ""))
        attrs = record.get("attrs")
        attrs = attrs if isinstance(attrs, dict) else {}
        if kind == "span" and name == "sim.phase":
            fold = self._phase_folds.setdefault(trace_id, {})
            phase = str(attrs.get("phase", len(fold)))
            entry = fold.setdefault(phase, [0, 0])
            entry[0] += 1
            entry[1] += int(record.get("dur_ns", 0))  # type: ignore[call-overload]
        elif kind == "event" and name.startswith("migration."):
            self._migrations.append((
                trace_id, seq, record.get("t_ns"), name,
                attrs.get("policy"), attrs.get("phase"),
                attrs.get("region"), attrs.get("pages"),
                attrs.get("source"), attrs.get("destination"),
                attrs.get("rule"),
                json.dumps(attrs, sort_keys=True,
                           separators=(",", ":")) if attrs else None,
            ))

    def finish_trace(self, trace_id: int) -> None:
        """Materialize the trace's phase fold and final record count."""
        self._guard()
        fold = self._phase_folds.pop(trace_id, {})
        for phase, (count, total_ns) in fold.items():
            self._phase_metrics.append((trace_id, phase, count, total_ns))
        storefmt.finish_trace(self._conn, trace_id,
                              self._trace_records.pop(trace_id, 0))
        self._trace_seq.pop(trace_id, None)
