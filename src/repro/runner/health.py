"""Worker-health primitives for the supervised sweep pool.

Three small pieces, shared by :mod:`repro.runner.supervisor` and the
chaos harness:

* :class:`HeartbeatBoard` -- one shared-memory ``double`` slot per
  worker. A worker writes ``time.monotonic()`` into its slot at every
  attempt boundary (and, voluntarily, at phase boundaries via
  :func:`repro.runner.supervisor.tick_heartbeat`); the parent compares
  slot ages against the heartbeat deadline to spot workers hung where
  SIGALRM cannot reach them (inside C extensions, with the signal
  blocked).
* :class:`SupervisionPolicy` -- the knobs of the supervision state
  machine: heartbeat deadline, strike budget before quarantine,
  consecutive-incident circuit breaker, drain grace.
* :class:`HealthReport` -- counters of everything the supervisor did
  (restarts, hangs, requeues, quarantines, breaker/drain state),
  serializable for the ``starnuma chaos`` health artifact.

On Linux ``time.monotonic()`` is CLOCK_MONOTONIC, which is consistent
across processes, so parent-read ages of worker-written ticks are
meaningful.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

#: Slot value meaning "no tick recorded" (cleared at assignment).
NEVER_TICKED = 0.0


class HeartbeatBoard:
    """A fixed array of per-worker-slot heartbeat timestamps.

    Backed by a fork-shared ``multiprocessing.Array`` when created via
    :meth:`shared`, or a plain list for in-process tests. Only the
    owning worker writes its slot; the parent reads and may reset a
    slot when (re)assigning work, so no lock is needed -- a torn read
    of a double at worst mis-ages one poll cycle.
    """

    def __init__(self, slots: Any) -> None:
        # Either a fork-shared ctypes double array or a plain list --
        # both support index get/set, which is all the board needs.
        self._slots = slots

    @classmethod
    def shared(cls, n_slots: int, mp_context: Any) -> "HeartbeatBoard":
        return cls(mp_context.Array("d", [NEVER_TICKED] * n_slots,
                                    lock=False))

    @classmethod
    def local(cls, n_slots: int) -> "HeartbeatBoard":
        return cls([NEVER_TICKED] * n_slots)

    def __len__(self) -> int:
        return len(self._slots)

    def tick(self, slot: int) -> None:
        """Record liveness for ``slot`` (worker side)."""
        self._slots[slot] = time.monotonic()

    def reset(self, slot: int, now: Optional[float] = None) -> None:
        """Start a slot's clock at assignment time (parent side)."""
        self._slots[slot] = time.monotonic() if now is None else now

    def age_s(self, slot: int, now: Optional[float] = None) -> float:
        """Seconds since the slot last ticked (0 when never ticked)."""
        last = self._slots[slot]
        if last == NEVER_TICKED:
            return 0.0
        return (time.monotonic() if now is None else now) - last


@dataclass(frozen=True)
class SupervisionPolicy:
    """How the supervised pool reacts to sick workers.

    ``heartbeat_timeout_s`` of ``None`` derives a deadline from the
    runner's per-attempt budget (``timeout_s`` plus the worst backoff
    plus slack); when the runner is untimed (``timeout_s`` of ``None``
    or ``<= 0``, which :func:`repro.runner.sweep._deadline` treats as
    "no per-attempt limit"), hang detection is disabled -- without any
    budget hint a slow task is indistinguishable from a hung one.
    """

    #: Kill a busy worker whose heartbeat is older than this.
    heartbeat_timeout_s: Optional[float] = None
    #: Parent poll cadence for results and health checks.
    poll_interval_s: float = 0.05
    #: Worker kills (crash or hang) a task survives before quarantine.
    max_task_strikes: int = 2
    #: Consecutive worker-level incidents before degrading the sweep
    #: to sequential execution in the parent.
    breaker_threshold: int = 5
    #: Grace given to in-flight tasks on SIGINT/SIGTERM before the
    #: drain kills the pool and exits resumably.
    drain_grace_s: float = 5.0

    def __post_init__(self) -> None:
        if self.heartbeat_timeout_s is not None \
                and self.heartbeat_timeout_s <= 0:
            raise ValueError(
                f"heartbeat_timeout_s must be > 0, "
                f"got {self.heartbeat_timeout_s}")
        if self.poll_interval_s <= 0:
            raise ValueError(
                f"poll_interval_s must be > 0, got {self.poll_interval_s}")
        if self.max_task_strikes < 1:
            raise ValueError(
                f"max_task_strikes must be >= 1, "
                f"got {self.max_task_strikes}")
        if self.breaker_threshold < 1:
            raise ValueError(
                f"breaker_threshold must be >= 1, "
                f"got {self.breaker_threshold}")
        if self.drain_grace_s < 0:
            raise ValueError(
                f"drain_grace_s must be >= 0, got {self.drain_grace_s}")

    def effective_heartbeat_s(self, timeout_s: Optional[float],
                              max_backoff_s: float) -> Optional[float]:
        """The deadline actually enforced, deriving from the runner.

        An *untimed* runner (``timeout_s`` unset, zero, or negative --
        all of which disarm the per-attempt SIGALRM deadline) must not
        inherit the derived ``timeout_s + max_backoff_s + 5`` window:
        with ``timeout_s=0`` that formula silently becomes a
        ``5 + max_backoff_s`` second kill window, executing perfectly
        healthy long tasks. Untimed tasks use ``heartbeat_timeout_s``
        alone, or no hang detection at all.
        """
        if self.heartbeat_timeout_s is not None:
            return self.heartbeat_timeout_s
        if timeout_s is None or timeout_s <= 0:
            return None
        return timeout_s + max_backoff_s + 5.0


@dataclass
class HealthReport:
    """What the supervisor saw and did during one sweep."""

    workers: int = 0
    worker_restarts: int = 0
    crashes_detected: int = 0
    hangs_detected: int = 0
    tasks_requeued: int = 0
    tasks_quarantined: int = 0
    quarantined_tasks: List[str] = field(default_factory=list)
    breaker_tripped: bool = False
    drained: bool = False
    drain_signal: Optional[str] = None

    @property
    def incidents(self) -> int:
        return self.crashes_detected + self.hangs_detected

    def to_dict(self) -> Dict[str, object]:
        return {
            "workers": self.workers,
            "worker_restarts": self.worker_restarts,
            "crashes_detected": self.crashes_detected,
            "hangs_detected": self.hangs_detected,
            "tasks_requeued": self.tasks_requeued,
            "tasks_quarantined": self.tasks_quarantined,
            "quarantined_tasks": list(self.quarantined_tasks),
            "breaker_tripped": self.breaker_tripped,
            "drained": self.drained,
            "drain_signal": self.drain_signal,
        }
