"""Supervised execution: the fault-contained worker pool of a sweep.

``SweepRunner(jobs=N)`` used to fan tasks out over a bare
``ProcessPoolExecutor`` and consume futures in submission order -- one
crashed worker raised ``BrokenProcessPool`` and aborted the whole
sweep, and a worker hung where SIGALRM cannot fire (inside a C
extension, or with the signal blocked) stalled it forever. This module
replaces that loop with a supervised pool:

* **One outstanding task per worker.** The parent assigns tasks over
  per-worker queues and therefore always knows which task each worker
  holds; results come home over per-worker pipes -- never a shared
  queue, whose cross-process write lock a dying worker could take to
  its grave and deadlock every survivor -- and are *flushed*
  (checkpointed, events replayed, obs records absorbed) strictly in
  submission order, so checkpoints and event streams stay
  byte-identical to a sequential sweep.
* **Heartbeats.** Workers tick a shared :class:`HeartbeatBoard` slot at
  every attempt boundary (and during backoff sleeps); long-running task
  code may volunteer extra ticks via :func:`tick_heartbeat`. A busy
  worker whose heartbeat outlives the deadline is SIGKILLed and its
  task requeued as a transient -- this catches hangs that are immune to
  the worker-side SIGALRM deadline.
* **Crash containment.** A worker that dies (``os._exit``, segfault,
  OOM kill) costs one *strike* against its in-flight task; the task is
  requeued at the front and a replacement worker is forked. A task
  that kills workers ``max_task_strikes`` times is *quarantined*: a
  ``quarantined`` outcome recorded in the checkpoint so a resumed
  sweep does not re-run the poisoned task.
* **Circuit breaker.** ``breaker_threshold`` consecutive worker losses
  (with no successful result in between) means the pool machinery
  itself is sick; the sweep degrades to sequential execution in the
  parent for the remaining tasks.
* **Graceful drain.** SIGINT/SIGTERM stop task assignment, give
  in-flight work ``drain_grace_s`` to finish, flush what completed to
  the checkpoint, then raise :class:`SweepDrained` -- the sweep exits
  resumably instead of losing progress. A second signal aborts
  immediately.
"""

from __future__ import annotations

import signal
import threading
import time
from multiprocessing import connection as mp_connection
from typing import (TYPE_CHECKING, Any, Callable, Dict, List, Optional,
                    Tuple)

if TYPE_CHECKING:  # pragma: no cover -- typing only, avoids a cycle
    from repro.runner.sweep import SweepRunner

from repro.obs import OBS
from repro.runner.health import HealthReport, HeartbeatBoard, SupervisionPolicy

_RESULT = Tuple[int, str, object, List[str], List[Dict[str, object]]]


class WorkerLostError(RuntimeError):
    """A worker process died (crash) or was killed (hang) mid-task."""


class SweepDrained(RuntimeError):
    """The sweep stopped on SIGINT/SIGTERM after a graceful drain.

    Progress up to the drain is checkpointed; rerunning with
    ``--resume`` finishes the remaining tasks.
    """

    def __init__(self, signal_name: str, completed: int,
                 remaining: int) -> None:
        self.signal_name = signal_name
        self.completed = completed
        self.remaining = remaining
        super().__init__(
            f"sweep drained on {signal_name}: {completed} task(s) "
            f"checkpointed, {remaining} remaining; resume to finish"
        )


# -- worker side -------------------------------------------------------------

#: The runner a forked worker inherits (sweep tasks are closures, so
#: they travel by fork, never by pickle). Parked by :func:`run_supervised`.
_SUPERVISED_RUNNER: Optional[Any] = None

#: Worker-process state: which heartbeat slot is mine, and which
#: incarnation (= prior strikes) of the current task I am running.
_WORKER_BOARD: Optional[HeartbeatBoard] = None
_WORKER_SLOT: Optional[int] = None
_TASK_INCARNATION: int = 0


def in_worker() -> bool:
    """True inside a supervised worker process."""
    return _WORKER_SLOT is not None


def task_incarnation() -> int:
    """How many workers the current task has already killed (0 first)."""
    return _TASK_INCARNATION


def _set_task_incarnation(incarnation: int) -> None:
    """Sole writer of :data:`_TASK_INCARNATION`.

    Both the forked worker loop and the parent's circuit-breaker
    fallback run task attempts, and each must publish the incarnation
    for :func:`task_incarnation` readers. Rebinding the global from
    both sides of the fork is exactly the divergence the fork-safety
    lint flags, so every write goes through this one chokepoint.
    """
    global _TASK_INCARNATION
    _TASK_INCARNATION = incarnation


def tick_heartbeat() -> None:
    """Voluntary liveness tick for long-running task code.

    Task callables that legitimately run longer than one heartbeat
    deadline (e.g. one tick per simulated phase) call this to stay
    alive; it is a no-op outside supervised workers.
    """
    if _WORKER_BOARD is not None and _WORKER_SLOT is not None:
        _WORKER_BOARD.tick(_WORKER_SLOT)


def _ticking_sleep(base_sleep: Callable[[float], None],
                   tick: Callable[[], None]) -> Callable[[float], None]:
    """Backoff sleeps must not read as hangs: tick while sleeping."""
    if base_sleep is not time.sleep:
        def wrapped(seconds: float) -> None:
            tick()
            base_sleep(seconds)
            tick()
        return wrapped

    def chunked(seconds: float) -> None:
        deadline = time.monotonic() + seconds
        while True:
            tick()
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return
            time.sleep(min(remaining, 0.2))
    return chunked


def _worker_main(slot: int, board: HeartbeatBoard,
                 task_queue: Any, result_conn: Any) -> None:
    """One worker: receive (task_id, incarnation), run, ship the result."""
    global _WORKER_BOARD, _WORKER_SLOT
    # The parent coordinates interrupts: it drains gracefully on SIGINT
    # while workers finish their in-flight task undisturbed.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    if hasattr(signal, "SIGTERM"):
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
    from repro.runner.sweep import _attempt_task

    runner = _SUPERVISED_RUNNER
    assert runner is not None, "worker forked without a parked runner"
    _WORKER_BOARD = board
    _WORKER_SLOT = slot
    tick = lambda: board.tick(slot)  # noqa: E731
    sleep = _ticking_sleep(runner.sleep, tick)
    while True:
        item = task_queue.get()
        if item is None:
            return
        task_id, incarnation = item
        _set_task_incarnation(incarnation)
        tick()
        events: List[str] = []
        obs_records: List[Dict[str, object]] = []
        with OBS.capture(obs_records):
            outcome = _attempt_task(
                task_id, runner.run_task, runner.timeout_s,
                runner.max_retries, runner.backoff_s, runner.max_backoff_s,
                runner.transient_types, sleep, events.append,
                heartbeat=tick,
            )
        _set_task_incarnation(0)
        # This worker is the pipe's only writer, so a SIGKILL here can
        # at worst tear *this* pipe -- the parent discards it with the
        # dead worker; the survivors' pipes share nothing with it.
        result_conn.send((slot, task_id, outcome, events, obs_records))


# -- parent side -------------------------------------------------------------


class _Worker:
    """Parent-side record of one worker process and its assignment."""

    def __init__(self, slot: int, ctx: Any, board: HeartbeatBoard) -> None:
        self.slot = slot
        self.task: Optional[str] = None
        self.task_queue = ctx.SimpleQueue()
        self.conn, send_conn = ctx.Pipe(duplex=False)
        self.process = ctx.Process(
            target=_worker_main,
            args=(slot, board, self.task_queue, send_conn),
            daemon=True,
        )
        self.process.start()
        # Drop the parent's copy of the write end right away, before
        # any sibling forks could inherit it: once this worker dies,
        # its pipe must read as EOF, not hang open forever.
        send_conn.close()

    def assign(self, board: HeartbeatBoard, task_id: str,
               incarnation: int) -> None:
        self.task = task_id
        board.reset(self.slot)
        self.task_queue.put((task_id, incarnation))

    def close_conn(self) -> None:
        if self.conn is not None:
            try:
                self.conn.close()
            except OSError:
                pass
            self.conn = None

    def stop(self, join_s: float = 1.0) -> None:
        if self.process.is_alive():
            try:
                self.task_queue.put(None)
            except (OSError, ValueError):
                pass
            self.process.join(join_s)
        if self.process.is_alive():
            self.process.kill()
            self.process.join(join_s)
        self.close_conn()


class SupervisedPool:
    """Runs one pending task list for a :class:`SweepRunner`."""

    def __init__(self, runner: "SweepRunner", ctx: Any) -> None:
        from repro.runner.sweep import RunFailure, RunOutcome
        self._RunFailure = RunFailure
        self._RunOutcome = RunOutcome
        self.runner = runner
        self.policy: SupervisionPolicy = runner.policy
        self.ctx = ctx
        self.health = HealthReport()
        self._heartbeat_s = self.policy.effective_heartbeat_s(
            runner.timeout_s, runner.max_backoff_s)
        self._order: List[str] = []
        self._pending: List[str] = []  # treated as a stack-front deque
        self._results: Dict[str, Tuple[object, List[str],
                                       List[Dict[str, object]]]] = {}
        self._strikes: Dict[str, int] = {}
        self._flushed = 0
        self._consecutive_incidents = 0
        self._drain_signal: Optional[str] = None
        self._workers: List[_Worker] = []
        self.board: HeartbeatBoard = HeartbeatBoard.local(0)
        self.by_id: Dict[str, object] = {}

    # -- lifecycle ----------------------------------------------------------

    def run(self, pending: List[str]) -> Dict[str, object]:
        self._order = list(pending)
        self._pending = list(pending)
        n_workers = min(self.runner.jobs, len(pending))
        self.health.workers = n_workers
        self.board = HeartbeatBoard.shared(n_workers, self.ctx)
        previous_handlers = self._install_signal_handlers()
        try:
            self._workers = [
                _Worker(slot, self.ctx, self.board)
                for slot in range(n_workers)
            ]
            while self._flushed < len(self._order):
                if self._drain_signal is not None:
                    self._drain()
                self._assign_idle_workers()
                self._collect(self.policy.poll_interval_s)
                self._check_worker_health()
                self._flush()
                if self.health.breaker_tripped:
                    self._run_rest_sequentially()
        finally:
            for worker in self._workers:
                worker.stop()
            self._restore_signal_handlers(previous_handlers)
        return self.by_id

    def _install_signal_handlers(self) -> Dict[int, Any]:
        if threading.current_thread() is not threading.main_thread():
            return {}
        previous: Dict[int, Any] = {}
        for signum in (signal.SIGINT, getattr(signal, "SIGTERM", None)):
            if signum is None:
                continue
            try:
                previous[signum] = signal.signal(signum, self._on_signal)
            except (ValueError, OSError):
                pass
        return previous

    def _restore_signal_handlers(self, previous: Dict[int, Any]) -> None:
        for signum, handler in previous.items():
            try:
                signal.signal(signum, handler)
            except (ValueError, OSError):
                pass

    def _on_signal(self, signum: int, frame: Any) -> None:
        if self._drain_signal is not None:
            raise KeyboardInterrupt  # second signal: abort immediately
        self._drain_signal = signal.Signals(signum).name

    # -- task assignment and results ----------------------------------------

    def _next_task(self) -> Optional[str]:
        while self._pending:
            task_id = self._pending.pop(0)
            if task_id not in self._results:
                return task_id
        return None

    def _assign_idle_workers(self) -> None:
        if self._drain_signal is not None or self.health.breaker_tripped:
            return
        for worker in self._workers:
            if worker.task is not None or not worker.process.is_alive():
                continue
            task_id = self._next_task()
            if task_id is None:
                return
            worker.assign(self.board, task_id,
                          self._strikes.get(task_id, 0))

    def _collect(self, timeout: Optional[float]) -> None:
        by_conn = {worker.conn: worker for worker in self._workers
                   if worker.conn is not None}
        if not by_conn:
            if timeout:
                time.sleep(timeout)
            return
        try:
            ready = mp_connection.wait(list(by_conn), timeout=timeout)
        except OSError:
            return  # a pipe died under us; the health check sorts it out
        for conn in ready:
            self._read_result(by_conn[conn])

    def _read_result(self, worker: _Worker) -> None:
        """One readable pipe: a result, or EOF from a dead worker."""
        if worker.conn is None:
            return
        try:
            result: _RESULT = worker.conn.recv()
        except (EOFError, OSError):
            # Worker died; retire the pipe so wait() stops reporting it.
            # The strike/requeue decision belongs to the health check.
            worker.close_conn()
            return
        self._accept(result)

    def _drain_conn(self, worker: _Worker) -> None:
        """Absorb any complete results a (possibly dead) worker sent."""
        while worker.conn is not None and worker.conn.poll(0):
            self._read_result(worker)

    def _accept(self, result: _RESULT) -> None:
        slot, task_id, outcome, events, obs_records = result
        # Any delivered result means the pool machinery works: the
        # consecutive-incident breaker counts only silent worker losses.
        self._consecutive_incidents = 0
        for worker in self._workers:
            if worker.slot == slot and worker.task == task_id:
                worker.task = None
        if task_id in self._results:
            return  # late result of a worker killed as hung: keep the first
        self._results[task_id] = (outcome, events, obs_records)

    def _flush(self) -> None:
        """Record finished tasks strictly in submission order."""
        while self._flushed < len(self._order):
            task_id = self._order[self._flushed]
            entry = self._results.get(task_id)
            if entry is None:
                return
            outcome, events, obs_records = entry
            for message in events:
                self.runner.on_event(message)
            for record in obs_records:
                OBS.absorb(record)
            self.runner._record(outcome)
            self.by_id[task_id] = outcome
            self._flushed += 1
            OBS.gauge("runner.queue_depth",
                      len(self._order) - self._flushed)

    # -- health -------------------------------------------------------------

    def _check_worker_health(self) -> None:
        max_age = 0.0
        for index, worker in enumerate(self._workers):
            process = worker.process
            if worker.task is None:
                continue
            if not process.is_alive():
                # A complete result may have landed just before death;
                # losing the worker is then not a strike on the task.
                self._drain_conn(worker)
                if worker.task is None:
                    if self._drain_signal is None \
                            and not self.health.breaker_tripped:
                        self._respawn(index)
                    continue
                self._incident(index, "crash", exitcode=process.exitcode)
                continue
            age = self.board.age_s(worker.slot)
            max_age = max(max_age, age)
            if self._heartbeat_s is not None and age > self._heartbeat_s:
                process.kill()
                process.join(5.0)
                self._incident(index, "hang", age_s=age)
        if OBS.enabled:
            OBS.gauge("runner.heartbeat_age_s", round(max_age, 6))

    def _incident(self, index: int, kind: str,
                  exitcode: Optional[int] = None,
                  age_s: Optional[float] = None) -> None:
        worker = self._workers[index]
        task_id = worker.task
        worker.task = None
        pid = worker.process.pid
        self._consecutive_incidents += 1
        if kind == "crash":
            self.health.crashes_detected += 1
            detail = f"worker pid {pid} died (exit {exitcode})"
        else:
            self.health.hangs_detected += 1
            OBS.counter("runner.hangs")
            detail = (f"worker pid {pid} missed its heartbeat "
                      f"({age_s:.1f}s > {self._heartbeat_s:.1f}s), killed")
        if OBS.enabled:
            OBS.event("runner.worker_lost", kind=kind, task=task_id,
                      pid=pid, exitcode=exitcode)
        assert task_id is not None
        strikes = self._strikes.get(task_id, 0) + 1
        self._strikes[task_id] = strikes
        if strikes >= self.policy.max_task_strikes:
            self._quarantine(task_id, kind, strikes, pid)
        else:
            self._pending.insert(0, task_id)
            self.health.tasks_requeued += 1
            OBS.counter("runner.requeues")
            self.runner.on_event(
                f"{task_id}: {detail}; requeued "
                f"(strike {strikes}/{self.policy.max_task_strikes})"
            )
        if self._consecutive_incidents >= self.policy.breaker_threshold:
            self._trip_breaker()
        elif self._drain_signal is None:
            self._respawn(index)

    def _quarantine(self, task_id: str, kind: str, strikes: int,
                    pid: Optional[int]) -> None:
        message = (f"task killed {strikes} worker(s) "
                   f"(last loss: {kind}); quarantined as poisoned")
        failure = self._RunFailure(
            task_id=task_id, error_type=WorkerLostError.__name__,
            message=message, traceback="", attempts=strikes,
            transient=False,
        )
        outcome = self._RunOutcome(task_id=task_id, status="quarantined",
                                   attempts=strikes, failure=failure)
        self._results[task_id] = (outcome, [], [])
        self.health.tasks_quarantined += 1
        self.health.quarantined_tasks.append(task_id)
        OBS.counter("runner.quarantined")
        if OBS.enabled:
            span = OBS.span("runner.task", task=task_id, pid=pid)
            with span:
                span.set(status="quarantined", attempts=strikes,
                         error=WorkerLostError.__name__)

    def _respawn(self, index: int) -> None:
        old = self._workers[index]
        old.process.join(1.0)
        old.close_conn()
        self._workers[index] = _Worker(old.slot, self.ctx, self.board)
        self.health.worker_restarts += 1
        OBS.counter("runner.worker_restarts")

    # -- degraded modes -----------------------------------------------------

    def _trip_breaker(self) -> None:
        self.health.breaker_tripped = True
        OBS.counter("runner.breaker_trips")
        if OBS.enabled:
            OBS.event("runner.breaker_open",
                      incidents=self._consecutive_incidents)
        self.runner.on_event(
            f"circuit breaker open after {self._consecutive_incidents} "
            f"consecutive worker losses; degrading to sequential execution"
        )
        for worker in self._workers:
            if worker.process.is_alive():
                worker.process.kill()
                worker.process.join(1.0)
            worker.task = None
            worker.close_conn()

    def _run_rest_sequentially(self) -> None:
        """Breaker fallback: finish the sweep in the parent process."""
        from repro.runner.sweep import _attempt_task

        runner = self.runner
        for task_id in self._order[self._flushed:]:
            if task_id in self._results:
                continue
            if self._drain_signal is not None:
                self._flush()
                self._drain()
            _set_task_incarnation(self._strikes.get(task_id, 0))
            try:
                outcome = _attempt_task(
                    task_id, runner.run_task, runner.timeout_s,
                    runner.max_retries, runner.backoff_s,
                    runner.max_backoff_s, runner.transient_types,
                    runner.sleep, runner.on_event,
                )
            finally:
                _set_task_incarnation(0)
            self._results[task_id] = (outcome, [], [])
            self._flush()

    def _drain(self) -> None:
        """Signal received: bounded grace, checkpoint, resumable exit."""
        assert self._drain_signal is not None
        self.health.drained = True
        self.health.drain_signal = self._drain_signal
        OBS.counter("runner.drains")
        if OBS.enabled:
            OBS.event("runner.drain", signal=self._drain_signal,
                      grace_s=self.policy.drain_grace_s)
        self.runner.on_event(
            f"{self._drain_signal} received: draining in-flight tasks "
            f"(grace {self.policy.drain_grace_s:.1f}s)"
        )
        deadline = time.monotonic() + self.policy.drain_grace_s
        while any(worker.task is not None for worker in self._workers):
            remaining_grace = deadline - time.monotonic()
            if remaining_grace <= 0:
                break
            self._collect(min(remaining_grace,
                              self.policy.poll_interval_s))
            self._flush()
        for worker in self._workers:
            if worker.process.is_alive():
                worker.process.kill()
                worker.process.join(1.0)
        for worker in self._workers:
            self._drain_conn(worker)  # results that landed while killing
        self._flush()
        raise SweepDrained(self._drain_signal, completed=self._flushed,
                           remaining=len(self._order) - self._flushed)


def run_supervised(runner: "SweepRunner", pending: List[str],
                   ctx: Any) -> Dict[str, object]:
    """Run ``pending`` under supervision; returns {task_id: RunOutcome}.

    Parks ``runner`` in the module global that forked workers inherit
    (sweep tasks are closures and cannot be pickled), and publishes the
    pool's :class:`HealthReport` as ``runner.last_health``.
    """
    global _SUPERVISED_RUNNER
    pool = SupervisedPool(runner, ctx)
    _SUPERVISED_RUNNER = runner
    try:
        runner.last_health = pool.health
        return pool.run(pending)
    finally:
        _SUPERVISED_RUNNER = None
