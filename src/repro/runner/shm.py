"""Shared-memory array packs for zero-copy batched-sweep handoff.

One :class:`SharedArrayPack` owns a single ``multiprocessing``
shared-memory segment carved into named float64 arrays. The batched
sweep (:mod:`repro.experiments.lanes`) creates a pack in the parent,
forks workers that each fill disjoint lane columns of the stacked
arrays in place, and then solves the stacks in the parent without a
single pickle or copy of the (phases, lanes, width) data.

Lifecycle discipline (fork-safe per the whole-program lint's
fork/signal rules):

* the creating process calls :meth:`create`, and is the only process
  that ever calls :meth:`unlink` -- in a ``finally`` block, so the
  segment disappears even when workers crash mid-fill;
* workers attach by name (or inherit the mapping over ``fork``), use
  the arrays, and call :meth:`close` -- never :meth:`unlink`;
* :meth:`close` and :meth:`unlink` are idempotent, so double cleanup
  on error paths is harmless.
"""

from __future__ import annotations

from multiprocessing import shared_memory
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.obs import OBS

#: (name, shape) description of one array in a pack.
ArraySpec = Tuple[str, Tuple[int, ...]]


class SharedArrayPack:
    """Named float64 arrays backed by one shared-memory segment.

    Arrays are laid out back to back in spec order; the mapping from
    name to (offset, shape) is deterministic from the specs alone, so
    a child process reattaches with just the segment name and the same
    specs -- no pickled views cross the process boundary.
    """

    def __init__(self, specs: Iterable[ArraySpec],
                 segment: shared_memory.SharedMemory,
                 owner: bool):
        self.specs: List[ArraySpec] = list(specs)
        self._segment: Optional[shared_memory.SharedMemory] = segment
        self._owner = owner
        self._unlinked = False
        self.arrays: Dict[str, np.ndarray] = {}
        offset = 0
        for name, shape in self.specs:
            size = int(np.prod(shape)) * 8
            self.arrays[name] = np.ndarray(
                shape, dtype=np.float64,
                buffer=segment.buf[offset:offset + size],
            )
            offset += size

    @staticmethod
    def nbytes(specs: Iterable[ArraySpec]) -> int:
        return sum(int(np.prod(shape)) * 8 for _, shape in specs)

    @classmethod
    def create(cls, specs: Iterable[ArraySpec]) -> "SharedArrayPack":
        """Allocate a fresh segment sized for ``specs`` (parent side)."""
        specs = list(specs)
        if not specs:
            raise ValueError("a shared array pack needs at least one array")
        seen = set()
        for name, shape in specs:
            if name in seen:
                raise ValueError(f"duplicate array name {name!r}")
            seen.add(name)
            if not shape or any(dim < 1 for dim in shape):
                raise ValueError(
                    f"array {name!r} has invalid shape {shape!r}"
                )
        size = cls.nbytes(specs)
        segment = shared_memory.SharedMemory(create=True, size=size)
        OBS.counter("runner.shm.segments_created")
        OBS.gauge("runner.shm.segment_bytes", size)
        return cls(specs, segment, owner=True)

    @classmethod
    def attach(cls, name: str,
               specs: Iterable[ArraySpec]) -> "SharedArrayPack":
        """Map an existing segment by name (worker side)."""
        segment = shared_memory.SharedMemory(name=name)
        return cls(specs, segment, owner=False)

    @property
    def name(self) -> str:
        if self._segment is None:
            raise ValueError("pack is closed")
        return self._segment.name

    def __getitem__(self, name: str) -> np.ndarray:
        return self.arrays[name]

    def close(self) -> None:
        """Drop this process's mapping (both sides; idempotent)."""
        if self._segment is None:
            return
        # The views must die before the mapping can be released.
        self.arrays = {}
        self._segment.close()
        if not self._owner:
            self._segment = None

    def unlink(self) -> None:
        """Free the segment itself (owner only; idempotent).

        Call from the creating process's ``finally`` so crashed
        workers never leak the segment.
        """
        if not self._owner:
            raise ValueError("only the creating process may unlink")
        if self._unlinked or self._segment is None:
            return
        self._unlinked = True
        self._segment.unlink()
        self._segment = None
        OBS.counter("runner.shm.segments_unlinked")

    def __enter__(self) -> "SharedArrayPack":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
        if self._owner:
            self.unlink()
