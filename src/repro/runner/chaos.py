"""Deterministic chaos harness for the supervised sweep runner.

Proof, not promise: the supervisor's claims (no hangs, no lost or
duplicated results, poisoned tasks quarantined without stalling healthy
ones) are only worth anything if they are exercised against real worker
deaths. This module injects four fault kinds into a synthetic sweep --

* **crash** -- the worker calls ``os._exit`` mid-task, exactly like a
  segfault or OOM kill;
* **hang** -- the worker blocks SIGALRM and spins, simulating a hang
  inside a C extension where the per-attempt deadline cannot fire (only
  the heartbeat supervisor can recover this one);
* **transient** -- an ordinary retryable exception;
* **torn checkpoint write** -- the checkpoint's temp file is truncated
  mid-write and the atomic replace never happens, as if the parent died
  at the worst moment;

plus a **poison** class: tasks that crash their worker on *every*
attempt and must end quarantined. Every decision derives from a sha256
hash of ``(seed, task id, incarnation, attempt)`` -- no ``random``, so
the same seed injects the same faults in the same places on every run,
and :func:`run_chaos` can verify the chaotic sweep's surviving results
byte-for-byte against the fault-free expectation.

Exposed as ``starnuma chaos`` and as the CI ``chaos-smoke`` soak.
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import time
from collections import Counter
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.obs import OBS
from repro.runner import supervisor
from repro.runner.health import SupervisionPolicy
from repro.runner.sweep import (
    SweepCheckpoint,
    SweepRunner,
    TransientRunError,
)

#: Exit status of chaos-crashed workers (visible in supervisor events).
CRASH_EXIT_CODE = 86


def chaos_fraction(*parts: object) -> float:
    """A deterministic hash fraction in [0, 1) from any key parts."""
    key = ":".join(str(part) for part in parts)
    digest = hashlib.sha256(key.encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2.0 ** 64


def chaos_payload(task_id: str) -> Dict[str, object]:
    """The fault-free result of one synthetic chaos task."""
    return {
        "task": task_id,
        "value": round(chaos_fraction("payload", task_id), 12),
    }


@dataclass(frozen=True)
class ChaosConfig:
    """Per-attempt fault probabilities and shapes (all deterministic)."""

    seed: int = 1
    #: Worker calls ``os._exit`` mid-attempt.
    crash: float = 0.05
    #: Worker blocks SIGALRM and spins until killed by the supervisor.
    hang: float = 0.03
    #: Retryable exception (injected on the first two attempts only,
    #: so the default retry budget always recovers from it).
    transient: float = 0.10
    #: Fraction of tasks that crash on *every* attempt -- these must
    #: end quarantined.
    poison: float = 0.02
    #: Probability that one checkpoint write is torn mid-flight.
    torn_write: float = 0.05
    #: How long an injected hang spins if nobody kills it; bounds the
    #: damage of a failed detection, and any soak that takes this long
    #: has already failed its wall-clock check.
    hang_s: float = 30.0

    def validate(self) -> Optional[str]:
        """One-line complaint for an invalid configuration, else None."""
        for name in ("crash", "hang", "transient", "poison", "torn_write"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                return f"{name} rate must be in [0, 1], got {value}"
        if self.crash + self.hang + self.transient > 1.0:
            return (f"crash + hang + transient rates must not exceed 1 "
                    f"(got {self.crash + self.hang + self.transient})")
        if self.hang_s <= 0:
            return f"hang_s must be > 0, got {self.hang_s}"
        return None


def poisoned_tasks(config: ChaosConfig, task_ids: List[str]) -> List[str]:
    """Which tasks the injector poisons (derivable without running)."""
    return [task_id for task_id in task_ids
            if chaos_fraction(config.seed, task_id, "poison") < config.poison]


class ChaosInjector:
    """Wraps a task callable, injecting seeded faults around it.

    Worker-killing faults (crash, hang) are only injected inside
    supervised workers -- in the parent process they are contained by
    design conversion into transient errors, because an ``os._exit``
    of the parent is not a containable fault, it is the kill-mid-sweep
    scenario (covered by the resume tests instead).
    """

    def __init__(self, config: ChaosConfig,
                 run_task: Callable[[str], Optional[Dict[str, object]]],
                 ) -> None:
        self.config = config
        self.run_task = run_task
        self._attempts: Counter = Counter()

    def __call__(self, task_id: str) -> Optional[Dict[str, object]]:
        config = self.config
        incarnation = supervisor.task_incarnation()
        self._attempts[(task_id, incarnation)] += 1
        attempt = self._attempts[(task_id, incarnation)]
        if chaos_fraction(config.seed, task_id, "poison") < config.poison:
            self._crash_worker("poison")
        roll = chaos_fraction(config.seed, task_id, incarnation, attempt,
                              "fault")
        if roll < config.crash:
            self._crash_worker("crash")
        elif roll < config.crash + config.hang:
            self._hang_worker()
        elif attempt <= 2 and \
                roll < config.crash + config.hang + config.transient:
            raise TransientRunError(
                f"chaos: injected transient ({task_id} attempt {attempt})")
        return self.run_task(task_id)

    def _crash_worker(self, kind: str) -> None:
        if supervisor.in_worker():
            os._exit(CRASH_EXIT_CODE)
        raise TransientRunError(f"chaos: {kind} fault contained in parent")

    def _hang_worker(self) -> None:
        if not supervisor.in_worker():
            raise TransientRunError("chaos: hang fault contained in parent")
        # A SIGALRM-immune hang: the per-attempt deadline cannot fire
        # (as inside a C extension), so only the heartbeat supervisor
        # can recover this worker -- by killing it.
        if hasattr(signal, "pthread_sigmask") and hasattr(signal, "SIGALRM"):
            signal.pthread_sigmask(signal.SIG_BLOCK, {signal.SIGALRM})
        deadline = time.monotonic() + self.config.hang_s
        while time.monotonic() < deadline:
            time.sleep(0.05)
        raise TransientRunError("chaos: hang outlived the supervisor")


class TornWriteCheckpoint(SweepCheckpoint):
    """A checkpoint whose writes are occasionally torn mid-flight.

    A torn write leaves a truncated ``.tmp`` file behind and never
    reaches the atomic replace -- exactly the disk state of a process
    killed inside :meth:`SweepCheckpoint._write`. The on-disk
    checkpoint simply stays one state behind (and self-heals on the
    next intact write); ``load()`` must tolerate and remove the
    leftover temp file.
    """

    def __init__(self, path: "str | Path", params: Dict[str, object], *,
                 seed: int, torn_rate: float) -> None:
        super().__init__(path, params)
        self._seed = seed
        self._torn_rate = torn_rate
        self._writes = 0
        self.torn_writes = 0

    def _write(self) -> None:
        self._writes += 1
        if self._torn_rate > 0 and chaos_fraction(
                self._seed, "torn", self._writes) < self._torn_rate:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            text = json.dumps(self._payload(), indent=2, sort_keys=True)
            self._temporary_path().write_text(text[:max(1, len(text) // 2)])
            self.torn_writes += 1
            OBS.counter("chaos.torn_writes")
            return
        super()._write()


@dataclass
class ChaosReport:
    """What one chaos soak did, and whether it held the line."""

    n_tasks: int
    jobs: int
    seed: int
    wall_s: float
    statuses: Dict[str, int]
    quarantined: List[str]
    poisoned: List[str]
    torn_writes: int
    health: Dict[str, object]
    problems: List[str]

    @property
    def passed(self) -> bool:
        return not self.problems

    def to_dict(self) -> Dict[str, object]:
        return {
            "n_tasks": self.n_tasks,
            "jobs": self.jobs,
            "seed": self.seed,
            "wall_s": round(self.wall_s, 3),
            "statuses": dict(self.statuses),
            "quarantined": list(self.quarantined),
            "poisoned": list(self.poisoned),
            "torn_writes": self.torn_writes,
            "health": self.health,
            "problems": list(self.problems),
            "passed": self.passed,
        }


def run_chaos(n_tasks: int = 200, jobs: int = 4, *,
              config: Optional[ChaosConfig] = None,
              heartbeat_timeout_s: float = 1.0,
              breaker_threshold: int = 25,
              max_wall_s: Optional[float] = None,
              out_dir: Optional[str] = None,
              on_event: Optional[Callable[[str], None]] = None,
              ) -> ChaosReport:
    """One seeded chaos soak of the supervised runner; returns a report.

    The report fails (collects problems) if any task is lost,
    duplicated, or left in a status other than ``ok``/``quarantined``;
    if any surviving result differs byte-for-byte from the fault-free
    expectation; if a poisoned task escaped quarantine; or if the soak
    exceeded ``max_wall_s``. ``out_dir`` persists the checkpoint and a
    ``health-report.json`` artifact.
    """
    if n_tasks < 2:
        raise ValueError(f"n_tasks must be >= 2, got {n_tasks}")
    if jobs < 2:
        raise ValueError(
            f"jobs must be >= 2: worker-killing faults need workers "
            f"(got {jobs})")
    config = config or ChaosConfig()
    complaint = config.validate()
    if complaint is not None:
        raise ValueError(complaint)

    task_ids = [f"task-{index:04d}" for index in range(n_tasks)]
    expected = {task_id: json.dumps(chaos_payload(task_id), sort_keys=True)
                for task_id in task_ids}
    poisoned = poisoned_tasks(config, task_ids)

    checkpoint: Optional[TornWriteCheckpoint] = None
    if out_dir is not None:
        checkpoint = TornWriteCheckpoint(
            Path(out_dir) / "checkpoint.json",
            params={"chaos_seed": config.seed, "n_tasks": n_tasks},
            seed=config.seed, torn_rate=config.torn_write,
        )
        checkpoint.reset()

    policy = SupervisionPolicy(
        heartbeat_timeout_s=heartbeat_timeout_s,
        poll_interval_s=0.02,
        breaker_threshold=breaker_threshold,
    )
    runner = SweepRunner(
        ChaosInjector(config, chaos_payload),
        jobs=jobs, max_retries=3, backoff_s=0.01, max_backoff_s=0.05,
        timeout_s=None, checkpoint=checkpoint, policy=policy,
        on_event=on_event,
    )
    started = time.monotonic()
    outcomes = runner.run(task_ids)
    wall_s = time.monotonic() - started

    problems: List[str] = []
    statuses = Counter(outcome.status for outcome in outcomes)
    quarantined = [outcome.task_id for outcome in outcomes
                   if outcome.status == "quarantined"]
    if sorted(outcome.task_id for outcome in outcomes) != sorted(task_ids):
        problems.append("lost or duplicated task outcomes")
    for outcome in outcomes:
        if outcome.status == "ok":
            got = json.dumps(outcome.payload, sort_keys=True)
            if got != expected[outcome.task_id]:
                problems.append(
                    f"{outcome.task_id}: result diverged from the "
                    f"fault-free run")
        elif outcome.status != "quarantined":
            problems.append(
                f"{outcome.task_id}: unexpected status {outcome.status!r}"
                + (f" ({outcome.failure.error_type}: "
                   f"{outcome.failure.message})" if outcome.failure else ""))
    for task_id in poisoned:
        if task_id not in quarantined:
            problems.append(f"{task_id}: poisoned but not quarantined")

    if checkpoint is not None:
        fresh = SweepCheckpoint(checkpoint.path, checkpoint.params)
        fresh.load()  # also exercises stale-.tmp tolerance after torn writes
        for task_id, entry in fresh.completed.items():
            got = json.dumps(entry.get("payload"), sort_keys=True)
            if got != expected.get(task_id):
                problems.append(
                    f"{task_id}: on-disk checkpoint payload diverged")
        for task_id in fresh.quarantined:
            if task_id not in quarantined:
                problems.append(
                    f"{task_id}: on-disk quarantine not reflected in "
                    f"outcomes")

    if max_wall_s is not None and wall_s > max_wall_s:
        problems.append(
            f"soak took {wall_s:.1f}s, over the {max_wall_s:.1f}s bound")

    health = (runner.last_health.to_dict()
              if runner.last_health is not None else {})
    report = ChaosReport(
        n_tasks=n_tasks, jobs=jobs, seed=config.seed, wall_s=wall_s,
        statuses=dict(statuses), quarantined=quarantined, poisoned=poisoned,
        torn_writes=checkpoint.torn_writes if checkpoint else 0,
        health=health, problems=problems,
    )
    if out_dir is not None:
        (Path(out_dir) / "health-report.json").write_text(
            json.dumps(report.to_dict(), indent=2, sort_keys=True))
    return report
