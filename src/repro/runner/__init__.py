"""Harness robustness: isolated, retried, resumable experiment sweeps.

Long multi-seed sweeps should survive one bad run instead of dying on
the first raised exception. :class:`SweepRunner` executes a list of
tasks with per-task try/except isolation (structured
:class:`RunFailure` records instead of a half-finished process), bounded
exponential-backoff retry for transient errors, per-task wall-clock
timeouts, and JSON checkpointing via :class:`SweepCheckpoint` so an
interrupted sweep resumes where it stopped (``starnuma export --out DIR
--resume DIR``).
"""

from repro.runner.sweep import (
    CheckpointMismatchError,
    RunFailure,
    RunOutcome,
    RunTimeoutError,
    SweepCheckpoint,
    SweepError,
    SweepRunner,
    TransientRunError,
)

__all__ = [
    "CheckpointMismatchError",
    "RunFailure",
    "RunOutcome",
    "RunTimeoutError",
    "SweepCheckpoint",
    "SweepError",
    "SweepRunner",
    "TransientRunError",
]
