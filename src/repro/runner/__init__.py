"""Harness robustness: supervised, retried, resumable experiment sweeps.

Long multi-seed sweeps should survive one bad run instead of dying on
the first raised exception. :class:`SweepRunner` executes a list of
tasks with per-task try/except isolation (structured
:class:`RunFailure` records instead of a half-finished process), bounded
jittered exponential-backoff retry for transient errors, per-task
wall-clock timeouts, and crash-safe JSON checkpointing via
:class:`SweepCheckpoint` so an interrupted sweep resumes where it
stopped (``starnuma export --out DIR --resume DIR``).

With ``jobs > 1`` the sweep runs under :mod:`repro.runner.supervisor`:
a supervised worker pool with per-worker heartbeats, hung-worker
detection (kill + requeue), crash containment, quarantine of tasks
that repeatedly kill workers (``quarantined`` outcome, checkpointed),
a consecutive-failure circuit breaker degrading to sequential
execution, and a graceful SIGINT/SIGTERM drain
(:class:`SweepDrained`). :mod:`repro.runner.chaos` proves all of it
with a deterministic seed-driven fault injector (``starnuma chaos``).
See ``docs/runner.md``.
"""

from repro.runner.chaos import (
    ChaosConfig,
    ChaosInjector,
    ChaosReport,
    TornWriteCheckpoint,
    chaos_payload,
    run_chaos,
)
from repro.runner.health import (
    HealthReport,
    HeartbeatBoard,
    SupervisionPolicy,
)
from repro.runner.supervisor import (
    SweepDrained,
    WorkerLostError,
    in_worker,
    tick_heartbeat,
)
from repro.runner.sweep import (
    CheckpointMismatchError,
    RunFailure,
    RunOutcome,
    RunTimeoutError,
    SweepCheckpoint,
    SweepError,
    SweepRunner,
    TransientRunError,
    retry_delay,
)

__all__ = [
    "ChaosConfig",
    "ChaosInjector",
    "ChaosReport",
    "CheckpointMismatchError",
    "HealthReport",
    "HeartbeatBoard",
    "RunFailure",
    "RunOutcome",
    "RunTimeoutError",
    "SupervisionPolicy",
    "SweepCheckpoint",
    "SweepDrained",
    "SweepError",
    "SweepRunner",
    "TornWriteCheckpoint",
    "TransientRunError",
    "WorkerLostError",
    "chaos_payload",
    "in_worker",
    "retry_delay",
    "run_chaos",
    "tick_heartbeat",
]
