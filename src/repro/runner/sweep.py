"""The sweep runner: isolation, retry, timeout, checkpoint/resume.

Every task runs inside its own try/except; a failure produces a
:class:`RunFailure` record (error type, message, traceback, attempt
count) and the sweep moves on. Errors classified as transient are
retried with exponential backoff up to a bound; a per-task timeout
(SIGALRM-based, POSIX main thread only) converts a hung run into a
retryable :class:`RunTimeoutError`. Completed tasks are recorded in an
atomically rewritten JSON checkpoint, so a killed sweep resumes by
skipping them.

With ``jobs > 1`` tasks fan out over a fork-based
:class:`~concurrent.futures.ProcessPoolExecutor`. The retry/backoff
loop runs inside each worker (whose main thread can arm SIGALRM), the
task callable travels by fork inheritance (sweep tasks are closures, so
they cannot be pickled), and the parent serializes every checkpoint
write -- futures are consumed in submission order, so the checkpoint
and event stream match a sequential run of the same task list.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import threading
import time
import traceback as traceback_module
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Type

from repro.obs import OBS

CHECKPOINT_VERSION = 1


class TransientRunError(RuntimeError):
    """An error worth retrying (resource blips, flaky I/O...)."""


class RunTimeoutError(TimeoutError):
    """A task exceeded its per-run wall-clock budget."""


class CheckpointMismatchError(RuntimeError):
    """A resume directory's checkpoint was written by a different sweep."""


@dataclass(frozen=True)
class RunFailure:
    """Structured record of one task that ultimately failed."""

    task_id: str
    error_type: str
    message: str
    traceback: str
    attempts: int
    transient: bool

    def to_dict(self) -> Dict[str, object]:
        return {
            "task_id": self.task_id,
            "error_type": self.error_type,
            "message": self.message,
            "traceback": self.traceback,
            "attempts": self.attempts,
            "transient": self.transient,
        }

    @classmethod
    def from_exception(cls, task_id: str, exc: BaseException,
                       attempts: int, transient: bool) -> "RunFailure":
        return cls(
            task_id=task_id,
            error_type=type(exc).__name__,
            message=str(exc),
            traceback="".join(traceback_module.format_exception(
                type(exc), exc, exc.__traceback__)),
            attempts=attempts,
            transient=transient,
        )


@dataclass
class RunOutcome:
    """What happened to one task of the sweep."""

    task_id: str
    #: ``ok`` (ran now), ``cached`` (resumed from checkpoint), ``failed``.
    status: str
    attempts: int = 0
    payload: Optional[Dict[str, object]] = None
    failure: Optional[RunFailure] = None

    @property
    def succeeded(self) -> bool:
        return self.status in ("ok", "cached")


class SweepError(RuntimeError):
    """Raised at sweep end when one or more tasks failed (strict mode)."""

    def __init__(self, failures: Sequence[RunFailure]):
        self.failures = list(failures)
        lines = ", ".join(
            f"{failure.task_id} ({failure.error_type}: {failure.message})"
            for failure in self.failures
        )
        super().__init__(
            f"{len(self.failures)} task(s) failed after retries: {lines}"
        )


class SweepCheckpoint:
    """Atomic JSON record of a sweep's completed tasks and failures.

    The checkpoint carries a ``params`` fingerprint of the sweep
    (seed, phases, workloads...); resuming with different parameters is
    refused rather than silently mixing incompatible results.
    """

    def __init__(self, path, params: Dict[str, object]):
        self.path = Path(path)
        self.params = params
        self.completed: Dict[str, Dict[str, object]] = {}
        self.failures: List[Dict[str, object]] = []

    def exists(self) -> bool:
        return self.path.exists()

    def load(self) -> bool:
        """Adopt an existing checkpoint; returns False when none exists."""
        if not self.path.exists():
            return False
        try:
            data = json.loads(self.path.read_text())
        except json.JSONDecodeError as exc:
            raise CheckpointMismatchError(
                f"corrupt checkpoint {self.path}: {exc}"
            ) from None
        if data.get("version") != CHECKPOINT_VERSION:
            raise CheckpointMismatchError(
                f"checkpoint {self.path} has version {data.get('version')}, "
                f"expected {CHECKPOINT_VERSION}"
            )
        if data.get("params") != self.params:
            raise CheckpointMismatchError(
                f"checkpoint {self.path} was written by a sweep with "
                f"different parameters; refusing to resume "
                f"(theirs: {data.get('params')}, ours: {self.params})"
            )
        self.completed = dict(data.get("completed", {}))
        self.failures = []  # prior failures are retried on resume
        return True

    def reset(self) -> None:
        """Start fresh, discarding any on-disk checkpoint."""
        self.completed = {}
        self.failures = []
        self._write()

    def mark_completed(self, task_id: str,
                       payload: Optional[Dict[str, object]]) -> None:
        self.completed[task_id] = {"payload": payload}
        self._write()

    def record_failure(self, failure: RunFailure) -> None:
        self.failures.append(failure.to_dict())
        self._write()

    def payload_of(self, task_id: str) -> Optional[Dict[str, object]]:
        entry = self.completed.get(task_id)
        return entry.get("payload") if entry else None

    def _write(self) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        data = {
            "version": CHECKPOINT_VERSION,
            "params": self.params,
            "completed": self.completed,
            "failures": self.failures,
        }
        temporary = self.path.with_suffix(self.path.suffix + ".tmp")
        temporary.write_text(json.dumps(data, indent=2, sort_keys=True))
        os.replace(temporary, self.path)


@contextmanager
def _deadline(seconds: Optional[float]):
    """Raise :class:`RunTimeoutError` if the block outlives ``seconds``.

    SIGALRM-based, so it only arms on POSIX main threads; elsewhere the
    block runs unbounded (a best-effort guard, not a hard sandbox).
    """
    usable = (
        seconds is not None and seconds > 0
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        yield
        return

    def _on_alarm(signum, frame):
        raise RunTimeoutError(f"run exceeded {seconds:.1f}s timeout")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


#: Errors retried by default: explicit transients, timeouts, and the
#: OS-level hiccups (file descriptors, interrupted syscalls) a long sweep
#: occasionally hits. Model errors (ValueError and kin) are NOT here --
#: a deterministic simulation that raised once will raise again.
DEFAULT_TRANSIENT_TYPES: Tuple[Type[BaseException], ...] = (
    TransientRunError,
    TimeoutError,
    OSError,
)


def _attempt_task(task_id: str,
                  run_task: Callable[[str], Optional[Dict[str, object]]],
                  timeout_s: Optional[float],
                  max_retries: int,
                  backoff_s: float,
                  transient_types: Tuple[Type[BaseException], ...],
                  sleep: Callable[[float], None],
                  emit: Callable[[str], None]) -> RunOutcome:
    """One task through the retry/timeout loop; no checkpoint access.

    Shared by the sequential path (``emit`` is the runner's event sink)
    and the pool workers (``emit`` collects messages for the parent to
    replay); the caller records the outcome in the checkpoint.
    """
    attempts = 0
    # The pid attribute attributes the span to the worker that ran it;
    # in a sequential sweep it is simply the parent's pid.
    span = OBS.span("runner.task", task=task_id, pid=os.getpid())
    with span:
        while True:
            attempts += 1
            try:
                with _deadline(timeout_s):
                    payload = run_task(task_id)
            except KeyboardInterrupt:
                raise
            except BaseException as exc:  # noqa: BLE001 -- isolation is the point
                transient = isinstance(exc, transient_types)
                if isinstance(exc, RunTimeoutError):
                    OBS.counter("runner.timeouts")
                if transient and attempts <= max_retries:
                    delay = backoff_s * (2.0 ** (attempts - 1))
                    OBS.counter("runner.retries")
                    OBS.event("runner.retry", task=task_id,
                              attempt=attempts,
                              error=type(exc).__name__, delay_s=delay)
                    emit(
                        f"{task_id}: transient {type(exc).__name__} "
                        f"({exc}); retry {attempts}/{max_retries} "
                        f"in {delay:.1f}s"
                    )
                    sleep(delay)
                    continue
                failure = RunFailure.from_exception(task_id, exc, attempts,
                                                    transient)
                span.set(status="failed", attempts=attempts,
                         error=failure.error_type)
                return RunOutcome(task_id=task_id, status="failed",
                                  attempts=attempts, failure=failure)
            span.set(status="ok", attempts=attempts)
            return RunOutcome(task_id=task_id, status="ok",
                              attempts=attempts, payload=payload)


#: The forked workers' view of the sweep: ProcessPoolExecutor pickles
#: submitted callables, and sweep tasks are closures over live state
#: (an export closes over its context and output directory), so the
#: parent parks the task callable here right before forking the pool
#: and the children inherit it.
_POOL_RUNNER: Optional["SweepRunner"] = None


def _pool_worker(
    task_id: str,
) -> Tuple[RunOutcome, List[str], List[Dict[str, object]]]:
    """Run one task in a forked worker; events return with the outcome.

    The worker's main thread can arm SIGALRM, so the per-task deadline
    behaves exactly as in a sequential sweep. Obs records are captured
    in memory (the inherited JSONL handle belongs to the parent) and
    travel home with the outcome for the parent to absorb.
    """
    runner = _POOL_RUNNER
    assert runner is not None, "worker forked without a parked runner"
    events: List[str] = []
    obs_records: List[Dict[str, object]] = []
    with OBS.capture(obs_records):
        outcome = _attempt_task(
            task_id, runner.run_task, runner.timeout_s, runner.max_retries,
            runner.backoff_s, runner.transient_types, runner.sleep,
            events.append,
        )
    return outcome, events, obs_records


class SweepRunner:
    """Runs a list of task ids through one callable, robustly.

    ``jobs`` > 1 fans tasks out over a fork-based process pool; where
    the fork start method is unavailable the sweep degrades to
    sequential execution with an event message.
    """

    def __init__(self, run_task: Callable[[str], Optional[Dict[str, object]]],
                 *,
                 max_retries: int = 2,
                 backoff_s: float = 0.5,
                 timeout_s: Optional[float] = None,
                 transient_types: Tuple[Type[BaseException], ...]
                 = DEFAULT_TRANSIENT_TYPES,
                 checkpoint: Optional[SweepCheckpoint] = None,
                 sleep: Callable[[float], None] = time.sleep,
                 on_event: Optional[Callable[[str], None]] = None,
                 jobs: int = 1):
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if backoff_s < 0:
            raise ValueError(f"backoff_s must be >= 0, got {backoff_s}")
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.run_task = run_task
        self.max_retries = max_retries
        self.backoff_s = backoff_s
        self.timeout_s = timeout_s
        self.transient_types = transient_types
        self.checkpoint = checkpoint
        self.sleep = sleep
        self.on_event = on_event or (lambda message: None)
        self.jobs = jobs

    def run(self, task_ids: Sequence[str]) -> List[RunOutcome]:
        span = OBS.span("runner.sweep", tasks=len(task_ids), jobs=self.jobs)
        with span:
            if self.jobs > 1 and len(task_ids) > 1:
                outcomes = self._run_parallel(task_ids)
            else:
                outcomes = [self._run_one(task_id) for task_id in task_ids]
            if OBS.enabled:
                span.set(
                    ok=sum(1 for o in outcomes if o.status == "ok"),
                    cached=sum(1 for o in outcomes if o.status == "cached"),
                    failed=sum(1 for o in outcomes if o.status == "failed"),
                )
            return outcomes

    # -- sequential ----------------------------------------------------------

    def _run_one(self, task_id: str) -> RunOutcome:
        cached = self._cached_outcome(task_id)
        if cached is not None:
            return cached
        outcome = _attempt_task(
            task_id, self.run_task, self.timeout_s, self.max_retries,
            self.backoff_s, self.transient_types, self.sleep, self.on_event,
        )
        self._record(outcome)
        return outcome

    # -- parallel ------------------------------------------------------------

    def _run_parallel(self, task_ids: Sequence[str]) -> List[RunOutcome]:
        by_id: Dict[str, RunOutcome] = {}
        pending: List[str] = []
        for task_id in task_ids:
            cached = self._cached_outcome(task_id)
            if cached is not None:
                by_id[task_id] = cached
            else:
                pending.append(task_id)

        if pending:
            try:
                fork = multiprocessing.get_context("fork")
            except ValueError:
                fork = None
            if fork is None:
                self.on_event(
                    "fork start method unavailable; running sequentially"
                )
                for task_id in pending:
                    by_id[task_id] = self._run_one(task_id)
            else:
                self._run_pool(pending, fork, by_id)
        return [by_id[task_id] for task_id in task_ids]

    def _run_pool(self, pending: List[str], fork, by_id) -> None:
        global _POOL_RUNNER
        workers = min(self.jobs, len(pending))
        _POOL_RUNNER = self
        try:
            with ProcessPoolExecutor(max_workers=workers,
                                     mp_context=fork) as pool:
                futures = [(task_id, pool.submit(_pool_worker, task_id))
                           for task_id in pending]
                # Submission order, not completion order: checkpoint
                # writes and events then match a sequential sweep of the
                # same list byte for byte.
                for done, (task_id, future) in enumerate(futures, start=1):
                    try:
                        outcome, events, obs_records = future.result(
                            timeout=self._future_timeout()
                        )
                    except FutureTimeoutError:
                        failure = RunFailure.from_exception(
                            task_id,
                            RunTimeoutError(
                                f"worker exceeded the "
                                f"{self._future_timeout():.1f}s future-level "
                                f"timeout"
                            ),
                            attempts=1, transient=True,
                        )
                        outcome = RunOutcome(task_id=task_id, status="failed",
                                             attempts=1, failure=failure)
                        events = []
                        obs_records = []
                        OBS.counter("runner.timeouts")
                    for message in events:
                        self.on_event(message)
                    for record in obs_records:
                        OBS.absorb(record)
                    OBS.gauge("runner.queue_depth", len(futures) - done)
                    self._record(outcome)
                    by_id[task_id] = outcome
        finally:
            _POOL_RUNNER = None

    def _future_timeout(self) -> Optional[float]:
        """Parent-side guard when workers cannot arm SIGALRM themselves.

        Covers the whole retry budget (every attempt plus backoff) with
        slack; on POSIX the worker-side deadline fires long before this.
        """
        if self.timeout_s is None or hasattr(signal, "SIGALRM"):
            return None
        attempts = self.max_retries + 1
        backoff = sum(self.backoff_s * (2.0 ** n)
                      for n in range(self.max_retries))
        return self.timeout_s * attempts + backoff + 30.0

    # -- shared bookkeeping --------------------------------------------------

    def _cached_outcome(self, task_id: str) -> Optional[RunOutcome]:
        if self.checkpoint is not None and task_id in self.checkpoint.completed:
            self.on_event(f"{task_id}: already completed, skipping")
            return RunOutcome(task_id=task_id, status="cached",
                              payload=self.checkpoint.payload_of(task_id))
        return None

    def _record(self, outcome: RunOutcome) -> None:
        """Checkpoint one finished task (parent process only)."""
        if outcome.status == "ok":
            if self.checkpoint is not None:
                self.checkpoint.mark_completed(outcome.task_id,
                                               outcome.payload)
        elif outcome.failure is not None:
            if self.checkpoint is not None:
                self.checkpoint.record_failure(outcome.failure)
            self.on_event(
                f"{outcome.task_id}: FAILED after {outcome.attempts} "
                f"attempt(s): {outcome.failure.error_type}: "
                f"{outcome.failure.message}"
            )
