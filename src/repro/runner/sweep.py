"""The sweep runner: isolation, retry, timeout, checkpoint/resume.

Every task runs inside its own try/except; a failure produces a
:class:`RunFailure` record (error type, message, traceback, attempt
count) and the sweep moves on. Errors classified as transient are
retried with exponential backoff up to a bound; a per-task timeout
(SIGALRM-based, POSIX main thread only) converts a hung run into a
retryable :class:`RunTimeoutError`. Completed tasks are recorded in an
atomically rewritten JSON checkpoint, so a killed sweep resumes by
skipping them.

With ``jobs > 1`` tasks fan out over a *supervised* fork-based worker
pool (:mod:`repro.runner.supervisor`): per-worker heartbeats catch
hangs that SIGALRM cannot reach, a crashed worker costs its task one
strike and is replaced (a task that kills two workers is quarantined as
poisoned), a circuit breaker degrades the sweep to sequential execution
when worker losses become systemic, and SIGINT/SIGTERM drain the pool
gracefully into a resumable checkpoint. The retry/backoff loop runs
inside each worker (whose main thread can arm SIGALRM), the task
callable travels by fork inheritance (sweep tasks are closures, so they
cannot be pickled), and the parent serializes every checkpoint write in
submission order, so the checkpoint and event stream match a sequential
run of the same task list.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import signal
import threading
import time
import traceback as traceback_module
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import (Callable, Dict, Iterator, List, Optional, Sequence,
                    Tuple, Type, Union)

from repro.obs import OBS
from repro.runner.health import HealthReport, SupervisionPolicy

#: Schema of the checkpoint JSON layout. Written as ``"schema"``;
#: version 1 files (written before the key was renamed from
#: ``"version"``) are still accepted because their layout is identical.
CHECKPOINT_SCHEMA_VERSION = 2

#: Schemas this code knows how to load.
_SUPPORTED_CHECKPOINT_SCHEMAS = (1, 2)

#: Backwards-compatible alias (pre-schema-rename name).
CHECKPOINT_VERSION = CHECKPOINT_SCHEMA_VERSION

#: Joins member task ids into one group unit id (lane-group scheduling).
#: An ASCII unit separator, so it cannot collide with experiment names.
GROUP_SEPARATOR = "\x1f"

#: Key under which a group unit's payload carries its members' payloads.
GROUP_PAYLOAD_KEY = "__group__"


class TransientRunError(RuntimeError):
    """An error worth retrying (resource blips, flaky I/O...)."""


class RunTimeoutError(TimeoutError):
    """A task exceeded its per-run wall-clock budget."""


class CheckpointMismatchError(RuntimeError):
    """A resume directory's checkpoint was written by a different sweep."""


@dataclass(frozen=True)
class RunFailure:
    """Structured record of one task that ultimately failed."""

    task_id: str
    error_type: str
    message: str
    traceback: str
    attempts: int
    transient: bool

    def to_dict(self) -> Dict[str, object]:
        return {
            "task_id": self.task_id,
            "error_type": self.error_type,
            "message": self.message,
            "traceback": self.traceback,
            "attempts": self.attempts,
            "transient": self.transient,
        }

    @classmethod
    def from_exception(cls, task_id: str, exc: BaseException,
                       attempts: int, transient: bool) -> "RunFailure":
        return cls(
            task_id=task_id,
            error_type=type(exc).__name__,
            message=str(exc),
            traceback="".join(traceback_module.format_exception(
                type(exc), exc, exc.__traceback__)),
            attempts=attempts,
            transient=transient,
        )


@dataclass
class RunOutcome:
    """What happened to one task of the sweep."""

    task_id: str
    #: ``ok`` (ran now), ``cached`` (resumed from checkpoint), ``failed``,
    #: or ``quarantined`` (killed a worker too many times; never re-run).
    status: str
    attempts: int = 0
    payload: Optional[Dict[str, object]] = None
    failure: Optional[RunFailure] = None

    @property
    def succeeded(self) -> bool:
        return self.status in ("ok", "cached")


class SweepError(RuntimeError):
    """Raised at sweep end when one or more tasks failed (strict mode)."""

    def __init__(self, failures: Sequence[RunFailure]) -> None:
        self.failures = list(failures)
        lines = ", ".join(
            f"{failure.task_id} ({failure.error_type}: {failure.message})"
            for failure in self.failures
        )
        super().__init__(
            f"{len(self.failures)} task(s) failed after retries: {lines}"
        )


class SweepCheckpoint:
    """Atomic JSON record of a sweep's completed tasks and failures.

    The checkpoint carries a ``params`` fingerprint of the sweep
    (seed, phases, workloads...); resuming with different parameters is
    refused rather than silently mixing incompatible results.
    """

    def __init__(self, path: Union[str, Path],
                 params: Dict[str, object]) -> None:
        self.path = Path(path)
        self.params = params
        self.completed: Dict[str, Dict[str, object]] = {}
        self.failures: List[Dict[str, object]] = []
        self.quarantined: Dict[str, Dict[str, object]] = {}
        #: Where a corrupt/truncated checkpoint was quarantined by
        #: :meth:`load` (``<path>.corrupt``), for the caller to report.
        self.corrupt_quarantined: Optional[Path] = None

    def exists(self) -> bool:
        return self.path.exists()

    def load(self) -> bool:
        """Adopt an existing checkpoint; returns False when none exists.

        A stale ``.tmp`` file (a write torn by a crash before the
        atomic replace) is removed and otherwise ignored -- the main
        checkpoint file is always a complete earlier state. A corrupt
        or truncated checkpoint (invalid JSON, or not a JSON object) is
        *quarantined* -- renamed to ``<path>.corrupt`` and recorded in
        :attr:`corrupt_quarantined` -- and the sweep starts fresh
        instead of dying on a traceback; an unknown ``schema`` is
        refused with a one-line :class:`CheckpointMismatchError`.
        """
        self._clean_stale_tmp()
        if not self.path.exists():
            return False
        try:
            data = json.loads(self.path.read_text())
        except (json.JSONDecodeError, UnicodeDecodeError):
            data = None
        if not isinstance(data, dict):
            self.corrupt_quarantined = self._quarantine_corrupt()
            return False
        schema = data.get("schema", data.get("version"))
        if schema not in _SUPPORTED_CHECKPOINT_SCHEMAS:
            raise CheckpointMismatchError(
                f"checkpoint {self.path} has schema {schema!r}; this "
                f"version reads schemas "
                f"{list(_SUPPORTED_CHECKPOINT_SCHEMAS)} -- refusing to "
                f"guess at an unknown layout"
            )
        if data.get("params") != self.params:
            raise CheckpointMismatchError(
                f"checkpoint {self.path} was written by a sweep with "
                f"different parameters; refusing to resume "
                f"(theirs: {data.get('params')}, ours: {self.params})"
            )
        self.completed = dict(data.get("completed", {}))
        self.failures = []  # prior failures are retried on resume
        # Quarantined tasks are poisoned, not flaky: they stay skipped.
        self.quarantined = dict(data.get("quarantined", {}))
        return True

    def reset(self) -> None:
        """Start fresh, discarding any on-disk checkpoint."""
        self._clean_stale_tmp()
        self.completed = {}
        self.failures = []
        self.quarantined = {}
        self._write()

    def mark_completed(self, task_id: str,
                       payload: Optional[Dict[str, object]]) -> None:
        self.completed[task_id] = {"payload": payload}
        self._write()

    def record_failure(self, failure: RunFailure) -> None:
        self.failures.append(failure.to_dict())
        self._write()

    def mark_quarantined(self, failure: RunFailure) -> None:
        """Record a poisoned task so resume never re-runs it."""
        self.quarantined[failure.task_id] = {
            "error_type": failure.error_type,
            "message": failure.message,
            "attempts": failure.attempts,
        }
        self._write()

    def payload_of(self, task_id: str) -> Optional[Dict[str, object]]:
        entry = self.completed.get(task_id)
        return entry.get("payload") if entry else None

    def quarantine_of(self, task_id: str) -> Optional[Dict[str, object]]:
        return self.quarantined.get(task_id)

    def _clean_stale_tmp(self) -> None:
        try:
            self._temporary_path().unlink()
        except FileNotFoundError:
            pass
        except OSError:
            pass  # unreadable leftovers never block a resume

    def _quarantine_corrupt(self) -> Optional[Path]:
        """Move a broken checkpoint aside; never let it block a resume."""
        quarantine = self.path.with_suffix(self.path.suffix + ".corrupt")
        try:
            os.replace(self.path, quarantine)
        except OSError:
            try:  # rename failed (odd mount?); removal also unblocks
                self.path.unlink()
            except OSError:
                pass
            return None
        return quarantine

    def _temporary_path(self) -> Path:
        return self.path.with_suffix(self.path.suffix + ".tmp")

    def _payload(self) -> Dict[str, object]:
        return {
            "schema": CHECKPOINT_SCHEMA_VERSION,
            "params": self.params,
            "completed": self.completed,
            "failures": self.failures,
            "quarantined": self.quarantined,
        }

    def _write(self) -> None:
        """Crash-safe rewrite: fsync the temp file, replace, fsync the dir.

        Without the fsyncs a power loss (or SIGKILL plus an unlucky
        page-cache flush) after ``os.replace`` could leave a truncated
        file under the *final* name; fsync-before-replace makes the
        rename the commit point, and the directory fsync persists the
        rename itself.
        """
        self.path.parent.mkdir(parents=True, exist_ok=True)
        temporary = self._temporary_path()
        with open(temporary, "w") as handle:
            handle.write(json.dumps(self._payload(), indent=2,
                                    sort_keys=True))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temporary, self.path)
        try:
            directory_fd = os.open(self.path.parent, os.O_RDONLY)
        except OSError:
            return  # platform cannot open directories; best effort
        try:
            os.fsync(directory_fd)
        finally:
            os.close(directory_fd)


@contextmanager
def _deadline(seconds: Optional[float]) -> Iterator[None]:
    """Raise :class:`RunTimeoutError` if the block outlives ``seconds``.

    SIGALRM-based, so it only arms on POSIX main threads; elsewhere the
    block runs unbounded (a best-effort guard, not a hard sandbox).
    """
    usable = (
        seconds is not None and seconds > 0
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        yield
        return

    def _on_alarm(signum: int, frame: object) -> None:
        raise RunTimeoutError(f"run exceeded {seconds:.1f}s timeout")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


#: Errors retried by default: explicit transients, timeouts, and the
#: OS-level hiccups (file descriptors, interrupted syscalls) a long sweep
#: occasionally hits. Model errors (ValueError and kin) are NOT here --
#: a deterministic simulation that raised once will raise again.
DEFAULT_TRANSIENT_TYPES: Tuple[Type[BaseException], ...] = (
    TransientRunError,
    TimeoutError,
    OSError,
)

#: Ceiling on one retry backoff, whatever the attempt count.
DEFAULT_MAX_BACKOFF_S = 30.0


def retry_delay(task_id: str, attempt: int, backoff_s: float,
                max_backoff_s: float = DEFAULT_MAX_BACKOFF_S) -> float:
    """Capped exponential backoff with deterministic per-task jitter.

    The nominal ``backoff_s * 2**(attempt - 1)`` is clamped to
    ``max_backoff_s`` and then scaled into ``[0.5, 1.0)`` of itself by
    a sha256 hash of ``(task_id, attempt)`` -- no ``random``, so the
    determinism lint rule stays clean and reruns sleep identically,
    while concurrent workers retrying different tasks desynchronize
    instead of thundering back in lockstep.
    """
    nominal = min(backoff_s * (2.0 ** (attempt - 1)), max_backoff_s)
    if nominal <= 0:
        return 0.0
    digest = hashlib.sha256(f"{task_id}:{attempt}".encode()).digest()
    fraction = int.from_bytes(digest[:8], "big") / 2.0 ** 64
    return nominal * (0.5 + 0.5 * fraction)


def _attempt_task(task_id: str,
                  run_task: Callable[[str], Optional[Dict[str, object]]],
                  timeout_s: Optional[float],
                  max_retries: int,
                  backoff_s: float,
                  max_backoff_s: float,
                  transient_types: Tuple[Type[BaseException], ...],
                  sleep: Callable[[float], None],
                  emit: Callable[[str], None],
                  heartbeat: Callable[[], None] = lambda: None,
                  ) -> RunOutcome:
    """One task through the retry/timeout loop; no checkpoint access.

    Shared by the sequential path (``emit`` is the runner's event sink)
    and the pool workers (``emit`` collects messages for the parent to
    replay, ``heartbeat`` ticks the worker's supervision slot at every
    attempt boundary); the caller records the outcome in the checkpoint.
    """
    attempts = 0
    # The pid attribute attributes the span to the worker that ran it;
    # in a sequential sweep it is simply the parent's pid.
    span = OBS.span("runner.task", task=task_id, pid=os.getpid())
    with span:
        while True:
            attempts += 1
            heartbeat()
            try:
                with _deadline(timeout_s):
                    payload = run_task(task_id)
            except KeyboardInterrupt:
                raise
            except BaseException as exc:  # noqa: BLE001 -- isolation is the point
                transient = isinstance(exc, transient_types)
                if isinstance(exc, RunTimeoutError):
                    OBS.counter("runner.timeouts")
                if transient and attempts <= max_retries:
                    delay = retry_delay(task_id, attempts, backoff_s,
                                        max_backoff_s)
                    OBS.counter("runner.retries")
                    OBS.event("runner.retry", task=task_id,
                              attempt=attempts,
                              error=type(exc).__name__, delay_s=delay)
                    emit(
                        f"{task_id}: transient {type(exc).__name__} "
                        f"({exc}); retry {attempts}/{max_retries} "
                        f"in {delay:.1f}s"
                    )
                    sleep(delay)
                    continue
                failure = RunFailure.from_exception(task_id, exc, attempts,
                                                    transient)
                span.set(status="failed", attempts=attempts,
                         error=failure.error_type)
                return RunOutcome(task_id=task_id, status="failed",
                                  attempts=attempts, failure=failure)
            span.set(status="ok", attempts=attempts)
            return RunOutcome(task_id=task_id, status="ok",
                              attempts=attempts, payload=payload)




class SweepRunner:
    """Runs a list of task ids through one callable, robustly.

    ``jobs`` > 1 fans tasks out over the supervised fork pool
    (:mod:`repro.runner.supervisor`), governed by ``policy``; where the
    fork start method is unavailable the sweep degrades to sequential
    execution with an event message. After a supervised run the pool's
    :class:`~repro.runner.health.HealthReport` is published as
    ``last_health``.
    """

    def __init__(self, run_task: Callable[[str], Optional[Dict[str, object]]],
                 *,
                 max_retries: int = 2,
                 backoff_s: float = 0.5,
                 max_backoff_s: float = DEFAULT_MAX_BACKOFF_S,
                 timeout_s: Optional[float] = None,
                 transient_types: Tuple[Type[BaseException], ...]
                 = DEFAULT_TRANSIENT_TYPES,
                 checkpoint: Optional[SweepCheckpoint] = None,
                 sleep: Callable[[float], None] = time.sleep,
                 on_event: Optional[Callable[[str], None]] = None,
                 jobs: int = 1,
                 policy: Optional[SupervisionPolicy] = None,
                 plan_groups: Optional[
                     Callable[[Sequence[str]], List[List[str]]]] = None,
                 run_group: Optional[
                     Callable[[List[str]],
                              Dict[str, Optional[Dict[str, object]]]]]
                 = None) -> None:
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if backoff_s < 0:
            raise ValueError(f"backoff_s must be >= 0, got {backoff_s}")
        if max_backoff_s < 0:
            raise ValueError(
                f"max_backoff_s must be >= 0, got {max_backoff_s}")
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if (plan_groups is None) != (run_group is None):
            raise ValueError(
                "plan_groups and run_group must be given together")
        self._base_run_task = run_task
        self.plan_groups = plan_groups
        self.run_group = run_group
        # The dispatch wrapper routes group unit ids to run_group; the
        # supervisor's workers call ``runner.run_task`` directly, so the
        # wrapper must BE run_task for group units to work under jobs>1.
        self.run_task = (self._dispatch if run_group is not None
                         else run_task)
        self.max_retries = max_retries
        self.backoff_s = backoff_s
        self.max_backoff_s = max_backoff_s
        self.timeout_s = timeout_s
        self.transient_types = transient_types
        self.checkpoint = checkpoint
        self.sleep = sleep
        self.on_event = on_event or (lambda message: None)
        self.jobs = jobs
        self.policy = policy or SupervisionPolicy()
        #: Health report of the last supervised (parallel) run.
        self.last_health: Optional[HealthReport] = None

    def run(self, task_ids: Sequence[str]) -> List[RunOutcome]:
        if self.run_group is not None:
            return self._run_grouped(task_ids)
        span = OBS.span("runner.sweep", tasks=len(task_ids), jobs=self.jobs)
        with span:
            if self.jobs > 1 and len(task_ids) > 1:
                outcomes = self._run_parallel(task_ids)
            else:
                outcomes = []
                for done, task_id in enumerate(task_ids, start=1):
                    outcomes.append(self._run_one(task_id))
                    OBS.gauge("runner.queue_depth", len(task_ids) - done)
            if OBS.enabled:
                span.set(
                    ok=sum(1 for o in outcomes if o.status == "ok"),
                    cached=sum(1 for o in outcomes if o.status == "cached"),
                    failed=sum(1 for o in outcomes if o.status == "failed"),
                    quarantined=sum(1 for o in outcomes
                                    if o.status == "quarantined"),
                )
            return outcomes

    # -- lane groups ---------------------------------------------------------

    def _dispatch(self, unit_id: str) -> Optional[Dict[str, object]]:
        """Route one scheduling unit: a group id fans out to run_group."""
        if GROUP_SEPARATOR in unit_id:
            assert self.run_group is not None
            members = unit_id.split(GROUP_SEPARATOR)
            return {GROUP_PAYLOAD_KEY: self.run_group(members)}
        return self._base_run_task(unit_id)

    def _run_grouped(self, task_ids: Sequence[str]) -> List[RunOutcome]:
        """Lane-group scheduling: compatible tasks run as one unit.

        ``plan_groups`` partitions the *pending* (not yet checkpointed)
        tasks into units; each multi-member unit runs through one
        ``run_group`` call, whose per-member payloads are checkpointed
        individually in member order -- so the checkpoint file is
        byte-identical to a sequential, ungrouped sweep of the same
        tasks. A unit that fails (or is quarantined under jobs>1)
        falls back to running its members individually, isolating a
        poison member to itself. The per-task timeout scales by the
        largest group size while units are in flight.
        """
        span = OBS.span("runner.sweep", tasks=len(task_ids),
                        jobs=self.jobs, grouped=True)
        with span:
            by_task: Dict[str, RunOutcome] = {}
            pending: List[str] = []
            for task_id in task_ids:
                if GROUP_SEPARATOR in task_id:
                    raise ValueError(
                        f"task id {task_id!r} contains the group separator")
                cached = self._cached_outcome(task_id)
                if cached is not None:
                    by_task[task_id] = cached
                else:
                    pending.append(task_id)
            assert self.plan_groups is not None
            groups = ([list(group) for group in self.plan_groups(pending)]
                      if pending else [])
            flattened = [member for group in groups for member in group]
            if sorted(flattened) != sorted(pending):
                raise ValueError(
                    "plan_groups must partition the pending tasks")
            units = [GROUP_SEPARATOR.join(group) for group in groups]
            original_timeout = self.timeout_s
            if self.timeout_s and groups:
                self.timeout_s = self.timeout_s * max(
                    len(group) for group in groups)
            try:
                if self.jobs > 1 and len(units) > 1:
                    unit_outcomes = self._run_parallel(units)
                else:
                    unit_outcomes = [self._run_one(unit) for unit in units]
            finally:
                self.timeout_s = original_timeout
            for group, outcome in zip(groups, unit_outcomes):
                if len(group) == 1:
                    by_task[group[0]] = outcome
                    continue
                payloads: Dict[str, object] = {}
                if outcome.succeeded and outcome.payload:
                    payloads = outcome.payload.get(GROUP_PAYLOAD_KEY) or {}
                fallback = [member for member in group
                            if member not in payloads]
                for member in group:
                    if member in payloads:
                        by_task[member] = RunOutcome(
                            task_id=member, status="ok",
                            attempts=outcome.attempts,
                            payload=payloads[member],  # type: ignore[arg-type]
                        )
                if fallback:
                    OBS.counter("runner.group_fallback", len(fallback))
                    self.on_event(
                        f"group of {len(group)}: {len(fallback)} member(s) "
                        f"unresolved; falling back per scenario")
                    for member in fallback:
                        by_task[member] = self._run_one(member)
            if OBS.enabled:
                span.set(
                    units=len(units),
                    ok=sum(1 for o in by_task.values()
                           if o.status == "ok"),
                    cached=sum(1 for o in by_task.values()
                               if o.status == "cached"),
                    failed=sum(1 for o in by_task.values()
                               if o.status == "failed"),
                )
            return [by_task[task_id] for task_id in task_ids]

    # -- sequential ----------------------------------------------------------

    def _run_one(self, task_id: str) -> RunOutcome:
        cached = self._cached_outcome(task_id)
        if cached is not None:
            return cached
        outcome = _attempt_task(
            task_id, self.run_task, self.timeout_s, self.max_retries,
            self.backoff_s, self.max_backoff_s, self.transient_types,
            self.sleep, self.on_event,
        )
        self._record(outcome)
        return outcome

    # -- parallel ------------------------------------------------------------

    def _run_parallel(self, task_ids: Sequence[str]) -> List[RunOutcome]:
        by_id: Dict[str, RunOutcome] = {}
        pending: List[str] = []
        for task_id in task_ids:
            cached = self._cached_outcome(task_id)
            if cached is not None:
                by_id[task_id] = cached
            else:
                pending.append(task_id)

        if pending:
            try:
                fork = multiprocessing.get_context("fork")
            except ValueError:
                fork = None
            if fork is None:
                self.on_event(
                    "fork start method unavailable; running sequentially"
                )
                for task_id in pending:
                    by_id[task_id] = self._run_one(task_id)
            else:
                from repro.runner.supervisor import run_supervised

                by_id.update(run_supervised(self, pending, fork))
        return [by_id[task_id] for task_id in task_ids]

    # -- shared bookkeeping --------------------------------------------------

    def _cached_outcome(self, task_id: str) -> Optional[RunOutcome]:
        if self.checkpoint is None:
            return None
        if task_id in self.checkpoint.completed:
            self.on_event(f"{task_id}: already completed, skipping")
            return RunOutcome(task_id=task_id, status="cached",
                              payload=self.checkpoint.payload_of(task_id))
        quarantine = self.checkpoint.quarantine_of(task_id)
        if quarantine is not None:
            self.on_event(
                f"{task_id}: quarantined in a previous run, skipping")
            attempts = int(quarantine.get("attempts", 0))  # type: ignore[call-overload]
            failure = RunFailure(
                task_id=task_id,
                error_type=str(quarantine.get("error_type",
                                              "WorkerLostError")),
                message=str(quarantine.get("message", "quarantined")),
                traceback="",
                attempts=attempts,
                transient=False,
            )
            return RunOutcome(task_id=task_id, status="quarantined",
                              attempts=attempts, failure=failure)
        return None

    def _record(self, outcome: RunOutcome) -> None:
        """Checkpoint one finished task (parent process only)."""
        if GROUP_SEPARATOR in outcome.task_id:
            # A group unit: successful members are checkpointed one by
            # one under their own ids (so the checkpoint matches an
            # ungrouped sweep byte for byte); a failed group is not
            # recorded at all -- its members re-run individually and
            # are recorded then.
            members = outcome.task_id.split(GROUP_SEPARATOR)
            payloads: Dict[str, object] = {}
            if outcome.succeeded and outcome.payload:
                payloads = outcome.payload.get(GROUP_PAYLOAD_KEY) or {}
            for member in members:
                if member in payloads:
                    self._record(RunOutcome(
                        task_id=member, status="ok",
                        attempts=outcome.attempts,
                        payload=payloads[member],  # type: ignore[arg-type]
                    ))
            return
        if outcome.status == "ok":
            if self.checkpoint is not None:
                self.checkpoint.mark_completed(outcome.task_id,
                                               outcome.payload)
        elif outcome.status == "quarantined":
            if outcome.failure is not None:
                if self.checkpoint is not None:
                    self.checkpoint.mark_quarantined(outcome.failure)
                self.on_event(
                    f"{outcome.task_id}: QUARANTINED after killing "
                    f"{outcome.attempts} worker(s): "
                    f"{outcome.failure.message}"
                )
        elif outcome.failure is not None:
            if self.checkpoint is not None:
                self.checkpoint.record_failure(outcome.failure)
            self.on_event(
                f"{outcome.task_id}: FAILED after {outcome.attempts} "
                f"attempt(s): {outcome.failure.error_type}: "
                f"{outcome.failure.message}"
            )
