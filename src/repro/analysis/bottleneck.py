"""Per-link bottleneck analysis of one simulated phase.

Answers "where do the cycles actually go?" for a given (system, workload,
phase): per-link-direction utilization and waiting time, grouped by link
family, plus the critical resources. Used by the bottleneck example and
by diagnostics in the experiment notes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.interconnect.loads import TrafficSample
from repro.sim.engine import Simulator
from repro.topology.model import LinkKind


@dataclass
class BottleneckReport:
    """Link-level view of one phase under a given IPC."""

    phase: int
    ipc: float
    samples: List[TrafficSample]
    by_kind: Dict[LinkKind, float]

    def critical(self, top: int = 5) -> List[TrafficSample]:
        ranked = sorted(self.samples, key=lambda s: s.utilization,
                        reverse=True)
        return ranked[:top]

    def peak_utilization(self, kind: Optional[LinkKind] = None) -> float:
        samples = self.samples
        if kind is not None:
            samples = [s for s in samples
                       if s.link_id.startswith(kind.value)
                       or (kind is LinkKind.NUMALINK
                           and s.link_id.startswith("numa"))]
        if not samples:
            return 0.0
        return max(sample.utilization for sample in samples)


def analyze_phase(simulator: Simulator, phase_index: int, ipc: float,
                  mode: str = "dynamic") -> BottleneckReport:
    """Build the link report of one checkpointed phase at a given IPC."""
    checkpoints = simulator.checkpoints(mode)
    if not 0 <= phase_index < len(checkpoints):
        raise ValueError(
            f"phase {phase_index} out of range [0, {len(checkpoints)})"
        )
    if ipc <= 0:
        raise ValueError(f"ipc must be positive, got {ipc}")
    checkpoint = checkpoints[phase_index]
    trace = simulator.setup.traces[phase_index]

    from repro.sim.classification import classify_phase

    classification = classify_phase(trace.counts, checkpoint.page_map,
                                    simulator.setup.population,
                                    simulator.timing.replication)
    loads = simulator.timing._build_loads(classification, checkpoint.batch)
    window = simulator.timing._duration_ns(ipc, trace)

    samples: List[TrafficSample] = []
    for link in simulator.topology.links.values():
        from repro.topology.model import DirectedLink

        for forward in (True, False):
            hop = DirectedLink(link, forward)
            sample = loads.sample(hop, window)
            if sample.offered_gbps > 0:
                samples.append(sample)
            if link.kind is LinkKind.DRAM:
                break  # DRAM queues are direction-less

    by_kind: Dict[LinkKind, float] = {}
    for link in simulator.topology.links.values():
        kind_samples = [s for s in samples
                        if simulator.topology.link(s.link_id).kind
                        is link.kind]
        if kind_samples:
            by_kind[link.kind] = max(s.utilization for s in kind_samples)

    return BottleneckReport(phase=checkpoint.phase, ipc=ipc,
                            samples=samples, by_kind=by_kind)
