"""Analysis utilities: robustness and model-sensitivity studies.

The reproduction's conclusions should not hinge on one random trace draw
or one fitted constant. This package provides:

* :func:`seed_robustness` -- repeat a baseline/StarNUMA pair across
  trace seeds and report the speedup spread and ordering stability;
* :func:`burstiness_sensitivity` -- sweep the queueing model's
  arrival-burstiness multiplier (the one global constant of the
  contention model);
* :func:`coupling_sensitivity` -- sweep a workload's coherence coupling
  factor (the one fitted constant of the block-transfer model).
"""

from repro.analysis.bottleneck import BottleneckReport, analyze_phase
from repro.analysis.robustness import SeedStudy, seed_robustness
from repro.analysis.sensitivity import (
    burstiness_sensitivity,
    coupling_sensitivity,
)

__all__ = [
    "BottleneckReport",
    "SeedStudy",
    "analyze_phase",
    "burstiness_sensitivity",
    "coupling_sensitivity",
    "seed_robustness",
]
