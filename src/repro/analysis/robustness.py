"""Seed-robustness study: is the headline stable across trace draws?"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.config import SystemConfig, baseline_config, starnuma_config
from repro.sim import SimulationSetup, Simulator
from repro.workloads import get_workload


@dataclass
class SeedStudy:
    """Per-seed speedups of one workload."""

    workload: str
    seeds: List[int]
    speedups: List[float]

    @property
    def mean(self) -> float:
        return float(np.mean(self.speedups))

    @property
    def std(self) -> float:
        return float(np.std(self.speedups))

    @property
    def spread(self) -> float:
        return float(max(self.speedups) - min(self.speedups))

    @property
    def coefficient_of_variation(self) -> float:
        if self.mean == 0:
            return 0.0
        return self.std / self.mean


def pair_speedup(workload: str, seed: int, n_phases: int = 8,
                 warmup_phases: int = 2,
                 star_system: Optional[SystemConfig] = None) -> float:
    """One baseline/StarNUMA speedup at a given trace seed."""
    base_system = baseline_config()
    star_system = star_system or starnuma_config()
    setup = SimulationSetup.create(get_workload(workload), base_system,
                                   n_phases=n_phases, seed=seed)
    base_sim = Simulator(base_system, setup)
    calibration = base_sim.calibrate()
    base = base_sim.run(calibration=calibration,
                        warmup_phases=warmup_phases)
    star = Simulator(star_system, setup).run(calibration=calibration,
                                             warmup_phases=warmup_phases)
    return star.speedup_over(base)


def seed_robustness(workloads: Sequence[str],
                    seeds: Sequence[int] = (1, 2, 3),
                    n_phases: int = 8,
                    warmup_phases: int = 2) -> Dict[str, SeedStudy]:
    """Repeat the main experiment across seeds.

    Returns one :class:`SeedStudy` per workload. A healthy reproduction
    shows small coefficients of variation and a seed-stable ordering of
    workloads by speedup.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    studies: Dict[str, SeedStudy] = {}
    for workload in workloads:
        speedups = [
            pair_speedup(workload, seed, n_phases, warmup_phases)
            for seed in seeds
        ]
        studies[workload] = SeedStudy(
            workload=workload, seeds=list(seeds), speedups=speedups
        )
    return studies


def ordering_stable(studies: Dict[str, SeedStudy]) -> bool:
    """Whether the workload speedup ordering is identical for every seed."""
    if not studies:
        return True
    n_seeds = len(next(iter(studies.values())).seeds)
    orderings = []
    for index in range(n_seeds):
        ranked = sorted(studies,
                        key=lambda name: studies[name].speedups[index])
        orderings.append(tuple(ranked))
    return len(set(orderings)) == 1
