"""Sensitivity of the headline speedup to the model's free constants."""

from __future__ import annotations

import dataclasses
from typing import Dict, Sequence

from repro.config import baseline_config, starnuma_config
from repro.sim import SimulationSetup, Simulator
from repro.sim.timing import FixedPointSettings
from repro.workloads import build_population, get_workload


def burstiness_sensitivity(workload: str,
                           burstiness_values: Sequence[float] = (1, 3, 6, 12),
                           seed: int = 1, n_phases: int = 8,
                           warmup_phases: int = 2) -> Dict[float, float]:
    """Speedup as a function of the arrival-burstiness multiplier.

    Burstiness scales every queueing delay; since both systems are priced
    with the same constant and the baseline is re-calibrated at each
    value, the *speedup* should move far less than the constant itself.
    """
    if not burstiness_values:
        raise ValueError("need at least one burstiness value")
    base_system = baseline_config()
    star_system = starnuma_config()
    setup = SimulationSetup.create(get_workload(workload), base_system,
                                   n_phases=n_phases, seed=seed)
    results: Dict[float, float] = {}
    for burstiness in burstiness_values:
        settings = FixedPointSettings(burstiness=float(burstiness))
        base_sim = Simulator(base_system, setup, settings=settings)
        calibration = base_sim.calibrate()
        base = base_sim.run(calibration=calibration,
                            warmup_phases=warmup_phases)
        star = Simulator(star_system, setup, settings=settings).run(
            calibration=calibration, warmup_phases=warmup_phases
        )
        results[float(burstiness)] = star.speedup_over(base)
    return results


def coupling_sensitivity(workload: str,
                         coupling_values: Sequence[float] = (0.1, 0.2, 0.3),
                         seed: int = 1, n_phases: int = 8,
                         warmup_phases: int = 2) -> Dict[float, float]:
    """Speedup as a function of the coherence coupling factor.

    Coupling controls how many misses become block transfers; it is the
    one fitted constant of the coherence model, so the headline should be
    robust to plausible perturbations of it.
    """
    if not coupling_values:
        raise ValueError("need at least one coupling value")
    base_system = baseline_config()
    star_system = starnuma_config()
    profile = get_workload(workload)
    results: Dict[float, float] = {}
    for coupling in coupling_values:
        varied = dataclasses.replace(profile, coupling=float(coupling))
        population = build_population(
            varied, n_sockets=base_system.n_sockets,
            sockets_per_chassis=base_system.sockets_per_chassis,
            seed=seed, layout="clustered",
        )
        from repro.trace import TraceSynthesizer

        synthesizer = TraceSynthesizer(
            population, threads_per_socket=base_system.cores_per_socket,
            instructions_per_thread=SimulationSetup.scaled_phase_instructions(
                varied, base_system
            ),
            seed=seed,
        )
        setup = SimulationSetup(profile=varied, population=population,
                                traces=synthesizer.synthesize(n_phases),
                                seed=seed)
        base_sim = Simulator(base_system, setup)
        calibration = base_sim.calibrate()
        base = base_sim.run(calibration=calibration,
                            warmup_phases=warmup_phases)
        star = Simulator(star_system, setup).run(
            calibration=calibration, warmup_phases=warmup_phases
        )
        results[float(coupling)] = star.speedup_over(base)
    return results
