"""Record-level replay through LLCs, directories, and DRAM channels."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

from repro.cache import SetAssociativeCache
from repro.coherence import Directory, TransferKind
from repro.config import SystemConfig
from repro.config.parameters import CACHE_BLOCK_BYTES, PAGE_SIZE_BYTES
from repro.memory import MemoryControllerModel, RequestKind
from repro.placement.pagemap import PageMap
from repro.topology.model import AccessType, POOL_LOCATION, Topology
from repro.trace.records import TraceRecord


@dataclass
class ReplayStats:
    """Aggregates of one replay run."""

    accesses: int = 0
    llc_hits: int = 0
    total_latency_ns: float = 0.0
    counts_by_type: Dict[AccessType, int] = field(default_factory=dict)
    writebacks: int = 0
    invalidations: int = 0

    @property
    def llc_misses(self) -> int:
        return self.accesses - self.llc_hits

    @property
    def llc_hit_rate(self) -> float:
        if not self.accesses:
            return 0.0
        return self.llc_hits / self.accesses

    @property
    def average_miss_latency_ns(self) -> float:
        """Mean end-to-end latency of LLC-missing accesses."""
        if not self.llc_misses:
            return 0.0
        return self.total_latency_ns / self.llc_misses

    def fraction(self, kind: AccessType) -> float:
        if not self.llc_misses:
            return 0.0
        return self.counts_by_type.get(kind, 0) / self.llc_misses


class DetailedReplay:
    """Functional replay of a trace-record stream.

    Each record's page is split into cache blocks (the block within the
    page rotates with a per-page counter, approximating spatial reuse),
    filtered by the requester socket's LLC, looked up in the home
    location's directory slice, and -- if served from memory -- timed
    through the home's functional DRAM controller. Block transfers take
    the unloaded 3-hop/4-hop latencies of the coherence model.
    """

    def __init__(self, system: SystemConfig, page_map: PageMap,
                 llc_bytes: Optional[int] = None,
                 injection_interval_ns: float = 10.0):
        if injection_interval_ns <= 0:
            raise ValueError("injection interval must be positive")
        system.validate()
        self.system = system
        self.topology = Topology(system)
        self.page_map = page_map
        self.injection_interval_ns = injection_interval_ns

        core = system.core
        llc_bytes = llc_bytes or (core.llc_kb_per_core * 1024
                                  * system.cores_per_socket)
        self.llcs = [
            SetAssociativeCache(llc_bytes, core.llc_ways)
            for _ in range(system.n_sockets)
        ]
        self.directories: Dict[int, Directory] = {
            socket: Directory(home=socket)
            for socket in range(system.n_sockets)
        }
        if self.topology.has_pool:
            self.directories[POOL_LOCATION] = Directory(home=POOL_LOCATION)

        bandwidth = system.bandwidth
        self.controllers: Dict[int, MemoryControllerModel] = {
            socket: MemoryControllerModel(bandwidth.channels_per_socket,
                                          bandwidth.dram_channel_gbps)
            for socket in range(system.n_sockets)
        }
        if self.topology.has_pool:
            self.controllers[POOL_LOCATION] = MemoryControllerModel(
                bandwidth.pool_channels, bandwidth.dram_channel_gbps
            )

        self._block_cursor: Dict[int, int] = {}
        self.stats = ReplayStats()

    # -- address formation ---------------------------------------------------

    def block_address(self, page: int) -> int:
        """Rotate through a page's blocks to approximate spatial reuse."""
        cursor = self._block_cursor.get(page, 0)
        self._block_cursor[page] = (cursor + 1) % (
            PAGE_SIZE_BYTES // CACHE_BLOCK_BYTES
        )
        return page * PAGE_SIZE_BYTES + cursor * CACHE_BLOCK_BYTES

    # -- replay ----------------------------------------------------------------

    def replay(self, records: Iterable[TraceRecord]) -> ReplayStats:
        """Replay a record stream; return (and retain) the statistics."""
        now_ns = 0.0
        latency = self.system.latency
        for record in records:
            now_ns += self.injection_interval_ns
            self.stats.accesses += 1
            address = self.block_address(record.page)
            result = self.llcs[record.socket].access(address,
                                                     record.is_write)
            if result.hit:
                self.stats.llc_hits += 1
                continue

            home = self.page_map.location_of(record.page)
            directory = self.directories[home]
            if record.is_write:
                event = directory.write(address // CACHE_BLOCK_BYTES,
                                        record.socket)
            else:
                event = directory.read(address // CACHE_BLOCK_BYTES,
                                       record.socket)
            self.stats.invalidations += len(event.invalidated)
            for victim in event.invalidated:
                self.llcs[victim].invalidate(address)

            if event.transfer is TransferKind.CACHE_3HOP:
                kind = AccessType.BLOCK_TRANSFER_SOCKET
                access_latency = latency.block_transfer_socket_ns
            elif event.transfer is TransferKind.CACHE_4HOP:
                kind = AccessType.BLOCK_TRANSFER_POOL
                access_latency = latency.block_transfer_pool_ns
            else:
                kind = self.topology.classify(record.socket, home)
                unloaded = self.topology.unloaded_latency_ns(kind)
                # The DRAM portion of the unloaded figure is replaced by
                # the functional channel's actual service time, capturing
                # row-buffer and bank effects.
                controller = self.controllers[home]
                done = controller.access(
                    address,
                    RequestKind.WRITE if record.is_write
                    else RequestKind.READ,
                    now_ns,
                )
                dram_ns = done - now_ns
                access_latency = (unloaded - latency.local_dram_service_ns
                                  + dram_ns)

            if result.writeback_block is not None:
                self.stats.writebacks += 1
                victim_home = self.page_map.location_of(
                    result.writeback_block // PAGE_SIZE_BYTES
                )
                self.controllers[victim_home].access(
                    result.writeback_block, RequestKind.WRITE, now_ns
                )

            self.stats.counts_by_type[kind] = (
                self.stats.counts_by_type.get(kind, 0) + 1
            )
            self.stats.total_latency_ns += access_latency
        return self.stats
