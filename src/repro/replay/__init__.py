"""Detailed (record-level) replay: the mixed-modality "detailed socket".

The paper simulates one socket in full microarchitectural detail and the
rest as light endpoints (Section IV-B). This package is our analogue of
the detailed path: individual trace records flow through per-socket
LLC filters, MESI directory slices at each page's home, and functional
DRAM channels, producing event-level latencies and coherence activity.

It serves two purposes:

* a *cross-check* of the phase-level analytic model -- at low load, the
  replayed average latency must agree with the analytic unloaded AMAT
  (asserted in tests/test_replay); and
* a substrate for studying block-level effects the aggregate model
  cannot see (LLC filtering, row-buffer locality, per-block MESI state).
"""

from repro.replay.engine import DetailedReplay, ReplayStats

__all__ = ["DetailedReplay", "ReplayStats"]
