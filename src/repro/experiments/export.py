"""Export experiment results to machine-readable files.

``starnuma export --out results/`` writes every table/figure as JSON and
CSV for downstream plotting, plus a manifest recording the run
parameters. Results are plain rows, so no plotting stack is required
here.

Exports run through :class:`~repro.runner.SweepRunner`: each experiment
is isolated (one crash doesn't kill the sweep), transient errors retry
with backoff, and a ``checkpoint.json`` in the output directory records
completed experiments so an interrupted export resumes with
``--resume DIR`` instead of recomputing everything.
"""

from __future__ import annotations

import csv
import json
import os
import time
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.experiments import EXPERIMENTS
from repro.experiments.context import ExperimentContext, ExperimentResult
from repro.obs import OBS
from repro.runner import RunFailure, SweepCheckpoint, SweepError, SweepRunner

#: Version of the ``manifest.json`` layout written next to every export.
MANIFEST_SCHEMA_VERSION = 2

#: Environment variables consulted (in order) for the source revision;
#: the harness never shells out to git itself, CI injects the answer.
_GIT_ENV_VARS = ("STARNUMA_GIT_DESCRIBE", "GITHUB_SHA")

#: Experiments whose (system, workload) grids overlap the standard
#: default-scale grid: with ``--batch-lanes`` > 1 they are scheduled as
#: one lane group sharing a single batched prefetch of that grid.
#: Experiments off the standard grid (scale sweeps, stretched phases,
#: fault schedules) run per scenario, as always.
BATCHABLE_EXPERIMENTS = ("fig2", "fig8", "fig9", "fig10", "fig11",
                         "table3", "table4")


def _git_describe() -> Optional[str]:
    for variable in _GIT_ENV_VARS:
        value = os.environ.get(variable)
        if value:
            return value
    return None


def _coerce(value):
    """Make one cell JSON-serializable."""
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    return value


def result_to_dict(result: ExperimentResult) -> Dict:
    return {
        "experiment": result.experiment,
        "notes": result.notes,
        "headers": list(result.headers),
        "rows": [[_coerce(cell) for cell in row] for row in result.rows],
    }


def write_result(result: ExperimentResult, out_dir: Path) -> None:
    """Write one experiment as <id>.json and <id>.csv."""
    stem = result.experiment.replace(":", "_")
    json_path = out_dir / f"{stem}.json"
    json_path.write_text(json.dumps(result_to_dict(result), indent=2))
    with open(out_dir / f"{stem}.csv", "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(result.headers)
        for row in result.rows:
            writer.writerow([_coerce(cell) for cell in row])


def _flatten(result) -> Iterable[ExperimentResult]:
    """Fig. 8 returns a composite; everything else a single result."""
    if isinstance(result, ExperimentResult):
        yield result
        return
    for attribute in ("speedup", "amat", "breakdown"):
        part = getattr(result, attribute, None)
        if isinstance(part, ExperimentResult):
            yield part


def sweep_params(context: ExperimentContext,
                 selected: List[str]) -> Dict[str, object]:
    """The checkpoint fingerprint of one export sweep."""
    return {
        "seed": context.seed,
        "n_phases": context.n_phases,
        "warmup_phases": context.warmup_phases,
        "workloads": context.workload_names,
        "experiments": selected,
    }


def export_all(out_dir: str, context: Optional[ExperimentContext] = None,
               experiments: Optional[Iterable[str]] = None, *,
               resume: bool = False,
               max_retries: int = 2,
               backoff_s: float = 0.5,
               timeout_s: Optional[float] = None,
               strict: bool = True,
               on_event: Optional[Callable[[str], None]] = None,
               jobs: int = 1,
               ) -> Dict[str, str]:
    """Run and export experiments; return {experiment id: file stem}.

    ``resume=True`` adopts an existing ``checkpoint.json`` in ``out_dir``
    (written by every export) and skips experiments it records as
    completed; the final outputs are identical to an uninterrupted run.
    With ``strict`` (the default) a :class:`~repro.runner.SweepError` is
    raised at the end if any experiment failed after retries; the
    completed ones are exported either way. ``jobs`` > 1 fans the
    experiments out over a process pool (each worker computes and writes
    its own result files; checkpoint and manifest writes stay in this
    process), producing byte-identical outputs to a sequential export.
    """
    context = context or ExperimentContext()
    started_monotonic = time.monotonic()
    out_path = Path(out_dir)
    out_path.mkdir(parents=True, exist_ok=True)

    selected = list(experiments) if experiments else sorted(EXPERIMENTS)
    for name in selected:
        if name not in EXPERIMENTS:
            raise KeyError(f"unknown experiment {name!r}")

    checkpoint = SweepCheckpoint(out_path / "checkpoint.json",
                                 sweep_params(context, selected))
    if resume:
        checkpoint.load()
        if checkpoint.corrupt_quarantined is not None and on_event:
            on_event(f"checkpoint was corrupt; quarantined it to "
                     f"{checkpoint.corrupt_quarantined} and starting "
                     f"fresh")
    else:
        checkpoint.reset()

    def run_one(name: str) -> Dict[str, object]:
        outcome = EXPERIMENTS[name](context)
        stems: Dict[str, str] = {}
        for result in _flatten(outcome):
            write_result(result, out_path)
            stems[result.experiment] = result.experiment.replace(":", "_")
        return {"stems": stems}

    plan_groups: Optional[
        Callable[[Sequence[str]], List[List[str]]]] = None
    run_group: Optional[
        Callable[[List[str]], Dict[str, Optional[Dict[str, object]]]]] = None
    if context.batch_lanes > 1:
        def _plan_groups(pending: Sequence[str]) -> List[List[str]]:
            batchable = [name for name in pending
                         if name in BATCHABLE_EXPERIMENTS]
            groups = [batchable] if len(batchable) > 1 else [
                [name] for name in batchable]
            groups.extend([name] for name in pending
                          if name not in BATCHABLE_EXPERIMENTS)
            return groups

        def _run_group(members: List[str]
                       ) -> Dict[str, Optional[Dict[str, object]]]:
            # One stacked prefetch of the shared grid, then every
            # member reads the warm cache; results are bit-identical
            # to solo runs, so the exported files match byte for byte.
            context.prefetch(context.standard_pairs())
            return {name: run_one(name) for name in members}

        plan_groups, run_group = _plan_groups, _run_group

    runner = SweepRunner(run_one, max_retries=max_retries,
                         backoff_s=backoff_s, timeout_s=timeout_s,
                         checkpoint=checkpoint, on_event=on_event,
                         jobs=jobs, plan_groups=plan_groups,
                         run_group=run_group)
    outcomes = runner.run(selected)

    written: Dict[str, str] = {}
    failures: List[RunFailure] = []
    for outcome in outcomes:
        if outcome.succeeded and outcome.payload:
            written.update(outcome.payload["stems"])
        elif outcome.failure is not None:
            failures.append(outcome.failure)

    from repro.config import baseline_config, starnuma_config

    manifest = {
        "schema": MANIFEST_SCHEMA_VERSION,
        "seed": context.seed,
        "n_phases": context.n_phases,
        "warmup_phases": context.warmup_phases,
        "workloads": context.workload_names,
        "experiments": written,
        "presets": [baseline_config().name, starnuma_config().name],
        "git": _git_describe(),
        "wall_time_s": round(time.monotonic() - started_monotonic, 3),
        "obs_trace": OBS.trace_path,
    }
    (out_path / "manifest.json").write_text(json.dumps(manifest, indent=2))
    if failures and strict:
        raise SweepError(failures)
    return written
