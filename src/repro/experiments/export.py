"""Export experiment results to machine-readable files.

``starnuma export --out results/`` writes every table/figure as JSON and
CSV for downstream plotting, plus a manifest recording the run
parameters. Results are plain rows, so no plotting stack is required
here.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, Iterable, Optional

from repro.experiments import EXPERIMENTS
from repro.experiments.context import ExperimentContext, ExperimentResult


def _coerce(value):
    """Make one cell JSON-serializable."""
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    return value


def result_to_dict(result: ExperimentResult) -> Dict:
    return {
        "experiment": result.experiment,
        "notes": result.notes,
        "headers": list(result.headers),
        "rows": [[_coerce(cell) for cell in row] for row in result.rows],
    }


def write_result(result: ExperimentResult, out_dir: Path) -> None:
    """Write one experiment as <id>.json and <id>.csv."""
    stem = result.experiment.replace(":", "_")
    json_path = out_dir / f"{stem}.json"
    json_path.write_text(json.dumps(result_to_dict(result), indent=2))
    with open(out_dir / f"{stem}.csv", "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(result.headers)
        for row in result.rows:
            writer.writerow([_coerce(cell) for cell in row])


def _flatten(result) -> Iterable[ExperimentResult]:
    """Fig. 8 returns a composite; everything else a single result."""
    if isinstance(result, ExperimentResult):
        yield result
        return
    for attribute in ("speedup", "amat", "breakdown"):
        part = getattr(result, attribute, None)
        if isinstance(part, ExperimentResult):
            yield part


def export_all(out_dir: str, context: Optional[ExperimentContext] = None,
               experiments: Optional[Iterable[str]] = None) -> Dict[str, str]:
    """Run and export experiments; return {experiment id: file stem}."""
    context = context or ExperimentContext()
    out_path = Path(out_dir)
    out_path.mkdir(parents=True, exist_ok=True)

    selected = list(experiments) if experiments else sorted(EXPERIMENTS)
    written: Dict[str, str] = {}
    for name in selected:
        if name not in EXPERIMENTS:
            raise KeyError(f"unknown experiment {name!r}")
        outcome = EXPERIMENTS[name](context)
        for result in _flatten(outcome):
            write_result(result, out_path)
            written[result.experiment] = result.experiment.replace(":", "_")

    manifest = {
        "seed": context.seed,
        "n_phases": context.n_phases,
        "warmup_phases": context.warmup_phases,
        "workloads": context.workload_names,
        "experiments": written,
    }
    (out_path / "manifest.json").write_text(json.dumps(manifest, indent=2))
    return written
