"""Fig. 12: impact of memory pool capacity.

Pool capacity of 1/5 of the footprint (chassis-equivalent, the default)
versus 1/17 (socket-equivalent). Paper: the 4x capacity reduction barely
dents the mean (1.54x -> 1.48x); FMI is the workload that suffers
(1.22x -> 1.05x) because its pool-worthy set no longer fits, while most
workloads' hottest shared pages still fit even the small pool.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.config import with_pool_capacity_fraction
from repro.experiments.context import ExperimentContext, ExperimentResult

DEFAULT_FRACTIONS = (0.20, 1.0 / 17.0)


def run(context: Optional[ExperimentContext] = None,
        fractions: Sequence[float] = DEFAULT_FRACTIONS) -> ExperimentResult:
    context = context or ExperimentContext()
    systems = [
        with_pool_capacity_fraction(context.starnuma_system(), fraction)
        for fraction in fractions
    ]

    rows = []
    sums = [0.0] * len(systems)
    for name in context.workload_names:
        speedups = [context.speedup(system, name) for system in systems]
        rows.append((name, *speedups))
        for index, value in enumerate(speedups):
            sums[index] += value
    n = len(context.workload_names)
    means = [total / n for total in sums]

    return ExperimentResult(
        experiment="fig12",
        headers=("workload",) + tuple(
            f"speedup@{fraction:.3f}" for fraction in fractions
        ),
        rows=rows,
        notes=("means " + ", ".join(f"{mean:.2f}x" for mean in means)
               + " (paper: 1.54x at 1/5, 1.48x at 1/17)"),
    )
